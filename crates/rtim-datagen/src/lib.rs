//! # rtim-datagen
//!
//! Workload generators reproducing the four datasets of §6.1:
//!
//! * [`synthetic`] — the SYN-O / SYN-N streams: an R-MAT power-law "follow"
//!   graph plus post/follow actions whose response distance follows an
//!   exponential distribution (`λ = 2·10⁻⁶` for SYN-O — "old posts get more
//!   followers" — and `λ = 2·10⁻⁴` for SYN-N — "recent posts get more
//!   followers").
//! * [`social_sim`] — Reddit-like and Twitter-like stream simulators.  The
//!   original traces (a Kaggle dump and a Twitter crawl) are not
//!   redistributable, so we generate streams matching their published
//!   statistics (user counts, average cascade depth, response distance);
//!   see DESIGN.md §2 for the substitution rationale.
//! * [`dataset`] — a single entry point ([`DatasetConfig`]) selecting any of
//!   the four datasets at paper scale or laptop scale.
//! * [`stats`] — Table-3 statistics computed from any generated stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod social_sim;
pub mod stats;
pub mod synthetic;

pub use dataset::{DatasetConfig, DatasetKind, Scale};
pub use social_sim::{SocialSimConfig, SocialSimKind};
pub use stats::{dataset_statistics, DatasetStatistics};
pub use synthetic::{SyntheticConfig, SyntheticKind};
