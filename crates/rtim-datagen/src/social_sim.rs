//! Reddit-like and Twitter-like stream simulators.
//!
//! The paper's two real-world traces are not redistributable (a Kaggle dump
//! of all May-2015 Reddit comments and a week-long Twitter crawl), so these
//! simulators generate streams that match the *published statistics* of the
//! traces (Table 3): user counts, average cascade depth and average response
//! distance.  The SIM/IC/SIC algorithms only observe the reply structure of
//! the stream, so matching these statistics exercises the same code paths
//! with the same per-action cost profile (see DESIGN.md §2).
//!
//! Generation model:
//!
//! 1. Each action's *cascade position* is drawn from a geometric
//!    distribution whose mean equals the target average depth (Reddit ≈ 4.6,
//!    Twitter ≈ 1.9).  Position 1 means a root action.
//! 2. A reply at position `p` attaches to a recent action at position
//!    `p − 1`; recency is controlled so the mean response distance matches
//!    the target (expressed as a fraction of the stream length so scaled
//!    runs keep the same window dynamics).
//! 3. Users are drawn from a power-law activity distribution (a few users
//!    produce most actions, as in both real platforms).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtim_stream::{Action, SocialStream, UserId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which real-world trace to imitate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SocialSimKind {
    /// Deep cascades (avg depth ≈ 4.6), long response distances — imitates
    /// the Reddit May-2015 comment trace.
    RedditLike,
    /// Shallow cascades (avg depth ≈ 1.9), shorter response distances —
    /// imitates the Twitter trending-topic crawl.
    TwitterLike,
}

impl SocialSimKind {
    /// Target average cascade depth (Table 3).
    pub fn target_depth(self) -> f64 {
        match self {
            SocialSimKind::RedditLike => 4.58,
            SocialSimKind::TwitterLike => 1.87,
        }
    }

    /// Target mean response distance as a fraction of the stream length
    /// (Table 3: 404 714 / 48.1 M ≈ 0.84 %, 294 609 / 9.72 M ≈ 3.0 %).
    pub fn target_distance_fraction(self) -> f64 {
        match self {
            SocialSimKind::RedditLike => 404_714.9 / 48_104_875.0,
            SocialSimKind::TwitterLike => 294_609.4 / 9_724_908.0,
        }
    }

    /// Dataset name used in figures and tables.
    pub fn name(self) -> &'static str {
        match self {
            SocialSimKind::RedditLike => "Reddit",
            SocialSimKind::TwitterLike => "Twitter",
        }
    }
}

/// Configuration of the social-trace simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocialSimConfig {
    /// Which platform to imitate.
    pub kind: SocialSimKind,
    /// Number of users.
    pub users: u32,
    /// Number of actions to generate.
    pub actions: u64,
    /// Power-law exponent of user activity (larger = more skewed).
    pub activity_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SocialSimConfig {
    /// Paper-scale configuration matching the original trace sizes.
    pub fn paper(kind: SocialSimKind) -> Self {
        match kind {
            SocialSimKind::RedditLike => SocialSimConfig {
                kind,
                users: 2_628_904,
                actions: 48_104_875,
                activity_skew: 3.0,
                seed: 0x5eed_0002,
            },
            SocialSimKind::TwitterLike => SocialSimConfig {
                kind,
                users: 2_881_154,
                actions: 9_724_908,
                activity_skew: 3.0,
                seed: 0x5eed_0003,
            },
        }
    }

    /// Laptop-scale configuration with `scale` ∈ (0, 1].
    pub fn scaled(kind: SocialSimKind, scale: f64) -> Self {
        let scale = scale.clamp(1e-5, 1.0);
        let mut cfg = Self::paper(kind);
        cfg.users = ((cfg.users as f64 * scale).ceil() as u32).max(100);
        cfg.actions = ((cfg.actions as f64 * scale).ceil() as u64).max(1_000);
        cfg
    }

    /// Generates the simulated trace.
    pub fn generate(&self) -> SocialStream {
        assert!(self.users > 0 && self.actions > 0);
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Geometric success probability so that the mean cascade position
        // equals the target depth.
        let p_stop = 1.0 / self.kind.target_depth();
        // Per-depth buffers of recent action ids; their retention span
        // controls the response-distance distribution (mean of a uniform
        // draw over the last `span` actions is span/2).
        let span =
            ((self.actions as f64 * self.kind.target_distance_fraction() * 2.0).ceil() as usize)
                .clamp(8, 4_000_000);
        let mut by_depth: Vec<VecDeque<u64>> = Vec::new(); // recent action ids per depth level

        let mut actions: Vec<Action> = Vec::with_capacity(self.actions as usize);
        for t in 1..=self.actions {
            // Desired cascade position (1 = root).
            let mut position = 1u32;
            while position < 64 && !rng.gen_bool(p_stop) {
                position += 1;
            }
            let user = self.sample_user(&mut rng);
            // Find a parent at position - 1 (or the deepest shallower level
            // available); fall back to a root if none exists.  The parent's
            // depth is known from the level it was drawn from.
            let parent: Option<(u64, u32)> = if position == 1 || by_depth.is_empty() {
                None
            } else {
                let want = (position - 2) as usize; // depth d is stored at index d-1
                (0..=want.min(by_depth.len() - 1))
                    .rev()
                    .find_map(|lvl| {
                        let buf = &by_depth[lvl];
                        if buf.is_empty() {
                            None
                        } else {
                            let i = rng.gen_range(0..buf.len());
                            Some((buf[i], (lvl + 1) as u32))
                        }
                    })
            };
            let (action, depth) = match parent {
                Some((pid, parent_depth)) => (Action::reply(t, user, pid), parent_depth + 1),
                None => (Action::root(t, user), 1u32),
            };
            let lvl = (depth - 1) as usize;
            if by_depth.len() <= lvl {
                by_depth.resize_with(lvl + 1, VecDeque::new);
            }
            let buf = &mut by_depth[lvl];
            buf.push_back(t);
            // Evict entries outside the recency span (bounded per level).
            let per_level_cap = (span / (lvl + 1)).max(4);
            while buf.len() > per_level_cap
                || buf.front().is_some_and(|&id| t.saturating_sub(id) > span as u64)
            {
                buf.pop_front();
            }
            actions.push(action);
        }
        SocialStream::new_unchecked(actions)
    }

    /// Power-law user sampling: user `⌊n · r^s⌋` for uniform `r` concentrates
    /// activity on low ids for `s > 1`.
    fn sample_user<R: Rng + ?Sized>(&self, rng: &mut R) -> UserId {
        let r: f64 = rng.gen();
        let id = (self.users as f64 * r.powf(self.activity_skew)).floor() as u32;
        UserId(id.min(self.users - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtim_stream::PropagationIndex;

    fn small(kind: SocialSimKind) -> SocialSimConfig {
        SocialSimConfig {
            kind,
            users: 2_000,
            actions: 30_000,
            activity_skew: 3.0,
            seed: 123,
        }
    }

    fn avg_depth(stream: &SocialStream) -> f64 {
        let mut idx = PropagationIndex::new();
        for a in stream.iter() {
            idx.insert(a);
        }
        idx.stats().avg_depth()
    }

    #[test]
    fn reddit_like_is_deeper_than_twitter_like() {
        let r = small(SocialSimKind::RedditLike).generate();
        let t = small(SocialSimKind::TwitterLike).generate();
        let dr = avg_depth(&r);
        let dt = avg_depth(&t);
        assert!(dr > dt + 0.5, "reddit depth {dr} vs twitter depth {dt}");
    }

    #[test]
    fn depths_are_near_targets() {
        let r = small(SocialSimKind::RedditLike).generate();
        let dr = avg_depth(&r);
        assert!((dr - 4.58).abs() < 1.6, "reddit-like avg depth {dr}");
        let t = small(SocialSimKind::TwitterLike).generate();
        let dt = avg_depth(&t);
        assert!((dt - 1.87).abs() < 0.7, "twitter-like avg depth {dt}");
    }

    #[test]
    fn streams_are_structurally_valid() {
        let s = small(SocialSimKind::RedditLike).generate();
        assert!(SocialStream::new(s.actions().to_vec()).is_ok());
        assert_eq!(s.len(), 30_000);
    }

    #[test]
    fn activity_is_skewed_toward_few_users() {
        let s = small(SocialSimKind::TwitterLike).generate();
        let mut counts = vec![0u32; 2_000];
        for a in s.iter() {
            counts[a.user.index()] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u32 = counts.iter().take(200).sum();
        assert!(
            top_decile as f64 > 0.4 * s.len() as f64,
            "top 10% of users only produced {top_decile} actions"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = small(SocialSimKind::RedditLike).generate();
        let b = small(SocialSimKind::RedditLike).generate();
        assert_eq!(a.actions()[..50], b.actions()[..50]);
    }

    #[test]
    fn scaled_paper_config_reduces_size() {
        let cfg = SocialSimConfig::scaled(SocialSimKind::RedditLike, 0.001);
        assert!(cfg.actions < 100_000);
        assert!(cfg.users < 10_000);
        assert_eq!(SocialSimKind::RedditLike.name(), "Reddit");
    }
}
