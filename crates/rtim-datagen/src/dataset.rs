//! Unified dataset selection: the four datasets of §6.1 behind one config.
//!
//! Every experiment binary takes a [`DatasetKind`] and a [`Scale`]; the
//! paper-scale sizes match Table 3, the laptop scales shrink the stream
//! while preserving the ratios that drive the algorithms' behaviour
//! (response distance vs. stream length, users vs. actions).

use crate::social_sim::{SocialSimConfig, SocialSimKind};
use crate::synthetic::{SyntheticConfig, SyntheticKind};
use rtim_stream::SocialStream;
use serde::{Deserialize, Serialize};

/// One of the paper's four evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Reddit-like simulated trace (deep cascades).
    Reddit,
    /// Twitter-like simulated trace (shallow cascades).
    Twitter,
    /// Synthetic stream, exponential response distance, λ = 2·10⁻⁶.
    SynO,
    /// Synthetic stream, exponential response distance, λ = 2·10⁻⁴.
    SynN,
}

impl DatasetKind {
    /// All four datasets in the order used by the paper's figures (a–d).
    pub fn all() -> [DatasetKind; 4] {
        [
            DatasetKind::Reddit,
            DatasetKind::Twitter,
            DatasetKind::SynO,
            DatasetKind::SynN,
        ]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Reddit => "Reddit",
            DatasetKind::Twitter => "Twitter",
            DatasetKind::SynO => "SYN-O",
            DatasetKind::SynN => "SYN-N",
        }
    }

    /// Parses a dataset name (case-insensitive, accepts `syn-o`/`syno`).
    pub fn parse(s: &str) -> Option<DatasetKind> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "reddit" => Some(DatasetKind::Reddit),
            "twitter" => Some(DatasetKind::Twitter),
            "syn-o" | "syno" => Some(DatasetKind::SynO),
            "syn-n" | "synn" => Some(DatasetKind::SynN),
            _ => None,
        }
    }
}

/// How large a stream to generate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scale {
    /// Full paper-scale sizes (tens of millions of actions) — hours of
    /// generation and processing; intended for offline reproduction runs.
    Paper,
    /// ~1% of paper scale: minutes per experiment.
    Medium,
    /// ~0.1–0.5% of paper scale: seconds per experiment (default for the
    /// bundled experiment binaries and benches).
    Small,
    /// Custom fraction of paper scale.
    Fraction(f64),
}

impl Scale {
    /// The fraction of paper scale this setting corresponds to.
    pub fn fraction(self) -> f64 {
        match self {
            Scale::Paper => 1.0,
            Scale::Medium => 0.01,
            Scale::Small => 0.002,
            Scale::Fraction(f) => f.clamp(1e-5, 1.0),
        }
    }

    /// Parses `paper`, `medium`, `small` or a numeric fraction.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "paper" | "full" => Some(Scale::Paper),
            "medium" => Some(Scale::Medium),
            "small" => Some(Scale::Small),
            other => other.parse::<f64>().ok().map(Scale::Fraction),
        }
    }
}

/// A fully specified dataset request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Which dataset to generate.
    pub kind: DatasetKind,
    /// Size of the generated stream.
    pub scale: Scale,
    /// RNG seed override (`None` keeps the per-dataset default so different
    /// datasets stay decorrelated).
    pub seed: Option<u64>,
    /// Override of the number of users (used by the |U|-scalability sweep).
    pub users: Option<u32>,
    /// Override of the number of actions.
    pub actions: Option<u64>,
}

impl DatasetConfig {
    /// A dataset at the given scale with default seed and sizes.
    pub fn new(kind: DatasetKind, scale: Scale) -> Self {
        DatasetConfig {
            kind,
            scale,
            seed: None,
            users: None,
            actions: None,
        }
    }

    /// Sets an explicit user count (for the Figure-12 sweep).
    pub fn with_users(mut self, users: u32) -> Self {
        self.users = Some(users);
        self
    }

    /// Sets an explicit action count.
    pub fn with_actions(mut self, actions: u64) -> Self {
        self.actions = Some(actions);
        self
    }

    /// Sets an explicit RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Generates the action stream.
    pub fn generate(&self) -> SocialStream {
        let f = self.scale.fraction();
        match self.kind {
            DatasetKind::Reddit | DatasetKind::Twitter => {
                let kind = if self.kind == DatasetKind::Reddit {
                    SocialSimKind::RedditLike
                } else {
                    SocialSimKind::TwitterLike
                };
                let mut cfg = SocialSimConfig::scaled(kind, f);
                if let Some(u) = self.users {
                    cfg.users = u;
                }
                if let Some(a) = self.actions {
                    cfg.actions = a;
                }
                if let Some(s) = self.seed {
                    cfg.seed = s;
                }
                cfg.generate()
            }
            DatasetKind::SynO | DatasetKind::SynN => {
                let kind = if self.kind == DatasetKind::SynO {
                    SyntheticKind::SynO
                } else {
                    SyntheticKind::SynN
                };
                let mut cfg = SyntheticConfig::scaled(kind, f);
                if let Some(u) = self.users {
                    cfg.users = u;
                }
                if let Some(a) = self.actions {
                    cfg.actions = a;
                }
                if let Some(s) = self.seed {
                    cfg.seed = s;
                }
                cfg.generate()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_datasets_generate_at_tiny_scale() {
        for kind in DatasetKind::all() {
            let stream = DatasetConfig::new(kind, Scale::Fraction(0.0002))
                .with_actions(5_000)
                .with_users(1_000)
                .generate();
            assert_eq!(stream.len(), 5_000, "{}", kind.name());
            assert!(SocialStream::new(stream.actions().to_vec()).is_ok());
        }
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(DatasetKind::parse("reddit"), Some(DatasetKind::Reddit));
        assert_eq!(DatasetKind::parse("SYN-O"), Some(DatasetKind::SynO));
        assert_eq!(DatasetKind::parse("syn_n"), Some(DatasetKind::SynN));
        assert_eq!(DatasetKind::parse("bogus"), None);
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert!(matches!(Scale::parse("0.05"), Some(Scale::Fraction(f)) if (f - 0.05).abs() < 1e-12));
        assert_eq!(Scale::parse("wat"), None);
    }

    #[test]
    fn overrides_apply() {
        let cfg = DatasetConfig::new(DatasetKind::SynN, Scale::Small)
            .with_users(123)
            .with_actions(2_000)
            .with_seed(7);
        let s = cfg.generate();
        assert_eq!(s.len(), 2_000);
        assert!(s.stats().user_id_bound <= 123);
    }

    #[test]
    fn scales_shrink_fraction() {
        assert!(Scale::Small.fraction() < Scale::Medium.fraction());
        assert_eq!(Scale::Paper.fraction(), 1.0);
    }
}
