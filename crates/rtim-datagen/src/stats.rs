//! Dataset statistics — the columns of Table 3.
//!
//! For any generated (or externally loaded) stream this module computes the
//! statistics the paper reports per dataset: number of users, number of
//! actions, average response distance and average cascade depth.

use rtim_stream::{PropagationIndex, SocialStream};
use serde::{Deserialize, Serialize};

/// One row of Table 3.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct DatasetStatistics {
    /// Dataset display name.
    pub name: String,
    /// Number of distinct users appearing in the stream.
    pub users: u64,
    /// Number of actions.
    pub actions: u64,
    /// Mean response distance `t - t'` over reply actions.
    pub avg_response_distance: f64,
    /// Mean cascade depth (position of an action in its cascade, roots = 1).
    pub avg_depth: f64,
    /// Fraction of root actions (not in Table 3 but useful for sanity
    /// checks of the generators).
    pub root_fraction: f64,
}

/// Computes Table-3 statistics of a stream.
pub fn dataset_statistics(name: &str, stream: &SocialStream) -> DatasetStatistics {
    let mut index = PropagationIndex::new();
    for a in stream.iter() {
        index.insert(a);
    }
    let pstats = index.stats();
    let sstats = stream.stats();
    DatasetStatistics {
        name: name.to_string(),
        users: sstats.distinct_users,
        actions: sstats.actions,
        avg_response_distance: sstats.avg_response_distance,
        avg_depth: pstats.avg_depth(),
        root_fraction: if sstats.actions == 0 {
            0.0
        } else {
            sstats.roots as f64 / sstats.actions as f64
        },
    }
}

impl DatasetStatistics {
    /// Formats the row like Table 3 (name, users, actions, resp. dist., depth).
    pub fn table_row(&self) -> String {
        format!(
            "{:<10} {:>10} {:>12} {:>14.1} {:>10.2}",
            self.name, self.users, self.actions, self.avg_response_distance, self.avg_depth
        )
    }

    /// The table header matching [`DatasetStatistics::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<10} {:>10} {:>12} {:>14} {:>10}",
            "Dataset", "Users", "Actions", "Resp. dist.", "Avg. depth"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtim_stream::Action;

    #[test]
    fn statistics_of_a_small_trace() {
        let actions = vec![
            Action::root(1u64, 1u32),
            Action::reply(2u64, 2u32, 1u64),
            Action::reply(3u64, 3u32, 2u64),
            Action::root(4u64, 1u32),
        ];
        let stream = SocialStream::new(actions).unwrap();
        let s = dataset_statistics("tiny", &stream);
        assert_eq!(s.users, 3);
        assert_eq!(s.actions, 4);
        assert_eq!(s.root_fraction, 0.5);
        // depths: 1, 2, 3, 1 -> avg 1.75
        assert!((s.avg_depth - 1.75).abs() < 1e-9);
        // distances: 1, 1 -> avg 1
        assert!((s.avg_response_distance - 1.0).abs() < 1e-9);
        assert!(s.table_row().contains("tiny"));
        assert!(DatasetStatistics::table_header().contains("Users"));
    }

    #[test]
    fn empty_stream_statistics() {
        let stream = SocialStream::new_unchecked(Vec::new());
        let s = dataset_statistics("empty", &stream);
        assert_eq!(s.users, 0);
        assert_eq!(s.actions, 0);
        assert_eq!(s.root_fraction, 0.0);
    }
}
