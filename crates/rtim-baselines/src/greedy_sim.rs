//! The Greedy baseline: (1 − 1/e)-approximate SIM answers recomputed from
//! scratch for every window (§4's "naïve scheme", used as a quality anchor
//! in §6).
//!
//! Greedy does not keep any state between windows: at query time it takes
//! the exact influence sets of the current window and runs lazy greedy
//! (CELF) over all active users.  Its per-query cost is `O(k · |U|)`
//! influence-function evaluations, which is what makes it unable to keep up
//! with realistic stream rates (Figure 9/10) — but its answers are the best
//! polynomial-time achievable guarantee and serve as the quality reference.

use rtim_stream::{InfluenceSets, UserId};
use rtim_submodular::{lazy_greedy_max_coverage, ElementWeight, GreedyResult, UnitWeight};

/// The Greedy baseline.
#[derive(Debug, Clone)]
pub struct GreedySim<W: ElementWeight = UnitWeight> {
    k: usize,
    weight: W,
}

impl GreedySim<UnitWeight> {
    /// A greedy selector for the cardinality influence function.
    pub fn new(k: usize) -> Self {
        GreedySim {
            k,
            weight: UnitWeight,
        }
    }
}

impl<W: ElementWeight> GreedySim<W> {
    /// A greedy selector for a custom influence function.
    pub fn with_weight(k: usize, weight: W) -> Self {
        GreedySim { k, weight }
    }

    /// The cardinality constraint.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Selects up to `k` seeds for the given window influence sets.
    pub fn select(&self, influence: &InfluenceSets) -> GreedyResult {
        lazy_greedy_max_coverage(influence, self.k, &self.weight)
    }

    /// Convenience: selects seeds and returns only the users.
    pub fn select_seeds(&self, influence: &InfluenceSets) -> Vec<UserId> {
        self.select(influence).seeds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1b_sets() -> InfluenceSets {
        let mut s = InfluenceSets::new();
        for (u, covered) in [
            (1u32, vec![1u32, 2, 3]),
            (2, vec![2]),
            (3, vec![1, 3, 4, 5]),
            (4, vec![4]),
            (5, vec![4, 5]),
        ] {
            for v in covered {
                s.insert(UserId(u), UserId(v));
            }
        }
        s
    }

    #[test]
    fn selects_the_papers_optimal_pair() {
        let greedy = GreedySim::new(2);
        let result = greedy.select(&figure1b_sets());
        // Both {u1,u3} (the paper's Example 2) and {u2,u3} cover all five
        // active users; greedy reaches the optimum value of 5 either way.
        assert_eq!(result.value, 5.0);
        assert_eq!(result.seeds.len(), 2);
        assert!(result.seeds.contains(&UserId(3)));
        assert_eq!(greedy.k(), 2);
    }

    #[test]
    fn seed_count_respects_k() {
        let greedy = GreedySim::new(1);
        let seeds = greedy.select_seeds(&figure1b_sets());
        assert_eq!(seeds, vec![UserId(3)]);
    }

    #[test]
    fn weighted_selection_prefers_heavy_targets() {
        use rtim_submodular::MapWeight;
        use std::collections::HashMap;
        let mut w = HashMap::new();
        w.insert(UserId(2), 50.0);
        let greedy = GreedySim::with_weight(1, MapWeight::new(w, 1.0));
        // u1 covers the heavy user 2; u3 covers four unit-weight users.
        let seeds = greedy.select_seeds(&figure1b_sets());
        assert_eq!(seeds, vec![UserId(1)]);
    }

    #[test]
    fn empty_window_returns_empty() {
        let greedy = GreedySim::new(3);
        let r = greedy.select(&InfluenceSets::new());
        assert!(r.seeds.is_empty());
        assert_eq!(r.value, 0.0);
    }
}
