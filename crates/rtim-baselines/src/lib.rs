//! # rtim-baselines
//!
//! The three baselines the paper compares IC/SIC against (§6.1):
//!
//! * [`greedy_sim`] — **Greedy**: the classic (1 − 1/e) greedy of Nemhauser
//!   et al. applied directly to the SIM objective of the current window,
//!   recomputed from scratch at every query (no intermediate state).
//! * [`imm`] — **IMM** (Tang, Shi, Xiao — SIGMOD 2015): the state-of-the-art
//!   static influence-maximization algorithm, re-run on the influence graph
//!   of every window under the Weighted Cascade model.  Martingale-based
//!   reverse-reachable-set sampling plus greedy max-coverage selection,
//!   `(1 − 1/e − ε)`-approximate.
//! * [`ubi`] — **UBI** (Chen et al. — SDM 2015): dynamic influence
//!   maximization by upper-bound interchange: a seed set is maintained
//!   across windows and locally improved by swapping users in when the
//!   spread gain exceeds an interchange threshold `γ·σ(S)`.
//!
//! All baselines consume the same substrate as the streaming frameworks
//! (window influence sets / window influence graphs), so quality and
//! throughput comparisons are apples-to-apples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod greedy_sim;
pub mod imm;
pub mod ubi;

pub use greedy_sim::GreedySim;
pub use imm::{Imm, ImmResult};
pub use ubi::{Ubi, UbiConfig};
