//! IMM — Influence Maximization via Martingales (Tang, Shi, Xiao 2015).
//!
//! IMM is the state-of-the-art *static* influence-maximization algorithm the
//! paper uses as its quality/throughput baseline (§6.1, `ε = 0.5`, `l = 1`).
//! It consists of two phases over a fixed influence graph:
//!
//! 1. **Sampling** — estimate a lower bound `LB` on the optimal spread
//!    `OPT_k` by iteratively halving a guess `x` and checking whether the
//!    greedy solution over the current reverse-reachable (RR) sets covers
//!    enough of them; then sample `θ = λ* / LB` RR sets in total, where `λ*`
//!    is the martingale-derived constant of Theorem 4 of the IMM paper.
//! 2. **Node selection** — run greedy maximum coverage over the sampled RR
//!    sets and return the `k` chosen nodes.
//!
//! The result is a `(1 − 1/e − ε)`-approximation with probability
//! `1 − 1/n^l`.  The implementation caps the total number of RR sets
//! (`max_rr_sets`) so that degenerate windows (tiny optima) cannot stall an
//! experiment sweep; the cap is far above what the paper-scale sweeps need.

use rand::Rng;
use rtim_graph::{greedy_over_rr_sets, InfluenceGraph, RrCollection};
use rtim_stream::UserId;

/// Result of one IMM invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ImmResult {
    /// The selected seed users (at most `k`).
    pub seeds: Vec<UserId>,
    /// Estimated spread `n · F(S)` of the selected seeds.
    pub estimated_spread: f64,
    /// Number of RR sets sampled in total.
    pub rr_sets: usize,
}

/// The IMM algorithm with the paper's parameterization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Imm {
    /// Seed-set size `k`.
    pub k: usize,
    /// Accuracy parameter `ε` (the paper's experiments use 0.5).
    pub epsilon: f64,
    /// Confidence parameter `l` (the paper's experiments use 1).
    pub ell: f64,
    /// Hard cap on the number of RR sets (resource guard).
    pub max_rr_sets: usize,
}

impl Imm {
    /// IMM with the paper's experiment parameters (`ε = 0.5`, `l = 1`).
    pub fn new(k: usize) -> Self {
        Imm {
            k,
            epsilon: 0.5,
            ell: 1.0,
            max_rr_sets: 2_000_000,
        }
    }

    /// Overrides the accuracy parameter `ε`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon.clamp(0.05, 1.0);
        self
    }

    /// Overrides the RR-set cap.
    pub fn with_max_rr_sets(mut self, cap: usize) -> Self {
        self.max_rr_sets = cap.max(1);
        self
    }

    /// Runs IMM on the given influence graph.
    pub fn select<R: Rng + ?Sized>(&self, graph: &InfluenceGraph, rng: &mut R) -> ImmResult {
        let n = graph.node_count();
        if n == 0 || self.k == 0 {
            return ImmResult {
                seeds: Vec::new(),
                estimated_spread: 0.0,
                rr_sets: 0,
            };
        }
        let k = self.k.min(n);
        let nf = n as f64;
        // l is inflated so the overall failure probability stays 1/n^l after
        // the union bound over both phases (IMM paper, remark after Thm 2).
        let ell = self.ell * (1.0 + 2f64.ln() / nf.ln().max(1.0));
        let logcnk = log_binomial(n, k);
        let eps_prime = std::f64::consts::SQRT_2 * self.epsilon;

        let mut rr = RrCollection::new(n);
        let mut lb = 1.0;
        let max_rounds = (nf.log2().ceil() as usize).max(1);

        // Phase 1: estimate a lower bound on OPT_k.
        for i in 1..max_rounds {
            let x = nf / 2f64.powi(i as i32);
            let lambda_prime = (2.0 + 2.0 / 3.0 * eps_prime)
                * (logcnk + ell * nf.ln() + (nf.log2().max(1.0)).ln())
                * nf
                / (eps_prime * eps_prime);
            let theta_i = ((lambda_prime / x).ceil() as usize).min(self.max_rr_sets);
            rr.sample_to(graph, theta_i, rng);
            let (_, coverage) = greedy_over_rr_sets(graph, &rr, k);
            if nf * coverage >= (1.0 + eps_prime) * x {
                lb = nf * coverage / (1.0 + eps_prime);
                break;
            }
        }

        // Phase 1b: the final RR-set count θ = λ* / LB.
        let alpha = (ell * nf.ln() + 2f64.ln()).sqrt();
        let beta = ((1.0 - 1.0 / std::f64::consts::E) * (logcnk + ell * nf.ln() + 2f64.ln())).sqrt();
        let lambda_star = 2.0
            * nf
            * ((1.0 - 1.0 / std::f64::consts::E) * alpha + beta).powi(2)
            / (self.epsilon * self.epsilon);
        let theta = ((lambda_star / lb.max(1.0)).ceil() as usize).min(self.max_rr_sets);
        rr.sample_to(graph, theta, rng);

        // Phase 2: node selection.
        let (seeds, coverage) = greedy_over_rr_sets(graph, &rr, k);
        ImmResult {
            estimated_spread: nf * coverage,
            rr_sets: rr.len(),
            seeds,
        }
    }
}

/// `ln C(n, k)` computed stably.
fn log_binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k.min(n));
    (0..k)
        .map(|i| ((n - i) as f64).ln() - ((i + 1) as f64).ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rtim_graph::monte_carlo_spread;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    /// Two independent stars: hubs 0 and 100 with 10 / 6 leaves.
    fn two_stars() -> InfluenceGraph {
        let mut g = InfluenceGraph::new();
        for l in 1..=10u32 {
            g.add_edge(UserId(0), UserId(l), 1.0);
        }
        for l in 101..=106u32 {
            g.add_edge(UserId(100), UserId(l), 1.0);
        }
        g
    }

    #[test]
    fn picks_both_hubs_with_k2() {
        let g = two_stars();
        let result = Imm::new(2).with_max_rr_sets(50_000).select(&g, &mut rng());
        let mut seeds = result.seeds.clone();
        seeds.sort();
        assert_eq!(seeds, vec![UserId(0), UserId(100)]);
        assert!(result.rr_sets > 0);
        // Spread of both hubs is the whole graph (18 nodes).
        assert!((result.estimated_spread - 18.0).abs() < 1.5);
    }

    #[test]
    fn spread_estimate_agrees_with_monte_carlo() {
        let g = two_stars();
        let result = Imm::new(1).with_max_rr_sets(50_000).select(&g, &mut rng());
        let mc = monte_carlo_spread(&g, &result.seeds, 2_000, &mut rng());
        assert!((result.estimated_spread - mc).abs() < 1.5);
    }

    #[test]
    fn log_binomial_matches_known_values() {
        // C(10, 3) = 120.
        assert!((log_binomial(10, 3) - 120f64.ln()).abs() < 1e-9);
        // C(5, 5) = 1.
        assert!(log_binomial(5, 5).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_and_zero_k_are_safe() {
        let g = InfluenceGraph::new();
        let r = Imm::new(3).select(&g, &mut rng());
        assert!(r.seeds.is_empty());
        let g = two_stars();
        let r = Imm { k: 0, ..Imm::new(1) }.select(&g, &mut rng());
        assert!(r.seeds.is_empty());
    }

    #[test]
    fn k_larger_than_graph_is_clamped() {
        let mut g = InfluenceGraph::new();
        g.add_edge(UserId(1), UserId(2), 0.5);
        let r = Imm::new(10).with_max_rr_sets(10_000).select(&g, &mut rng());
        assert!(r.seeds.len() <= 2);
        assert!(!r.seeds.is_empty());
    }

    #[test]
    fn respects_rr_set_cap() {
        let g = two_stars();
        let r = Imm::new(2).with_max_rr_sets(500).select(&g, &mut rng());
        assert!(r.rr_sets <= 500);
        assert_eq!(r.seeds.len(), 2);
    }
}
