//! UBI — Upper Bound Interchange (Chen, Song, He, Xie — SDM 2015).
//!
//! UBI is the dynamic-IM baseline of §6.1: instead of recomputing seeds from
//! scratch when the influence graph changes, it *maintains* a seed set `S`
//! and applies local interchange steps: a non-seed `u` replaces a seed `v`
//! only when the estimated spread gain exceeds an interchange threshold
//! `γ · σ(S)` (the paper keeps `γ = 0.01`).  Upper bounds on marginal gains
//! are used to prune candidate swaps.
//!
//! The original implementation estimates spreads with snapshot sketches; the
//! authors' code is not available, so this reproduction estimates spreads
//! with reverse-reachable (RR) sets sampled per window (the same substrate
//! IMM uses), which preserves the two behaviours the paper's experiments
//! rely on:
//!
//! * quality close to IMM for small `k` but degrading as `k` grows (the
//!   interchange threshold `γ·σ(S)` grows with the total spread, so useful
//!   swaps are increasingly rejected — §6.3's explanation), and
//! * per-update cost far above the streaming frameworks (every window
//!   requires fresh sketches plus candidate evaluation).
//!
//! See DESIGN.md §2 for the substitution note.

use rand::Rng;
use rtim_graph::{greedy_over_rr_sets, InfluenceGraph, RrCollection};
use rtim_stream::UserId;
use std::collections::HashSet;

/// Configuration of the UBI baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UbiConfig {
    /// Seed-set size `k`.
    pub k: usize,
    /// Interchange threshold factor `γ` (the paper uses 0.01).
    pub gamma: f64,
    /// Number of RR sets sampled per window to estimate spreads.
    pub rr_sets_per_update: usize,
    /// Maximum number of interchange passes per update.
    pub max_passes: usize,
}

impl UbiConfig {
    /// The paper's parameterization (`γ = 0.01`).
    pub fn new(k: usize) -> Self {
        UbiConfig {
            k,
            gamma: 0.01,
            rr_sets_per_update: 10_000,
            max_passes: 4,
        }
    }

    /// Overrides the per-update RR-set budget.
    pub fn with_rr_sets(mut self, rr: usize) -> Self {
        self.rr_sets_per_update = rr.max(100);
        self
    }
}

/// The UBI dynamic-IM baseline.  Keeps its seed set across windows.
#[derive(Debug, Clone)]
pub struct Ubi {
    config: UbiConfig,
    seeds: Vec<UserId>,
    /// Spread estimate of the current seed set on the last processed window.
    last_spread: f64,
    /// Total number of interchange swaps applied (instrumentation).
    swaps: u64,
}

impl Ubi {
    /// Creates an empty UBI tracker.
    pub fn new(config: UbiConfig) -> Self {
        Ubi {
            config,
            seeds: Vec::new(),
            last_spread: 0.0,
            swaps: 0,
        }
    }

    /// The current seed set.
    pub fn seeds(&self) -> &[UserId] {
        &self.seeds
    }

    /// The spread estimate of the current seed set on the last window.
    pub fn last_spread(&self) -> f64 {
        self.last_spread
    }

    /// Total number of interchange swaps applied so far.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Updates the seed set against the influence graph of the new window.
    /// Returns the spread estimate of the (possibly modified) seed set.
    pub fn update<R: Rng + ?Sized>(&mut self, graph: &InfluenceGraph, rng: &mut R) -> f64 {
        let n = graph.node_count();
        if n == 0 || self.config.k == 0 {
            self.last_spread = self.seeds.len() as f64;
            return self.last_spread;
        }
        // Fresh sketches for this window.
        let mut rr = RrCollection::new(n);
        rr.sample_to(graph, self.config.rr_sets_per_update, rng);

        // Drop seeds that vanished from the graph (no actions in window)
        // and (re)fill up to k greedily — this is also the cold-start path.
        self.seeds.retain(|s| graph.node_of(*s).is_some());
        if self.seeds.len() < self.config.k.min(n) {
            self.refill(graph, &rr);
        }

        // Interchange passes.
        for _ in 0..self.config.max_passes {
            if !self.interchange_pass(graph, &rr) {
                break;
            }
        }
        self.last_spread = rr.estimate_spread(graph, &self.seeds);
        self.last_spread
    }

    /// Greedily completes the seed set to `k` members using RR coverage.
    fn refill(&mut self, graph: &InfluenceGraph, rr: &RrCollection) {
        let k = self.config.k.min(graph.node_count());
        let (greedy_seeds, _) = greedy_over_rr_sets(graph, rr, k);
        let existing: HashSet<UserId> = self.seeds.iter().copied().collect();
        for s in greedy_seeds {
            if self.seeds.len() >= k {
                break;
            }
            if !existing.contains(&s) {
                self.seeds.push(s);
            }
        }
    }

    /// One interchange pass: tries the best swap; applies it when the gain
    /// exceeds `γ · σ(S)`.  Returns `true` if a swap was applied.
    fn interchange_pass(&mut self, graph: &InfluenceGraph, rr: &RrCollection) -> bool {
        let n = graph.node_count();
        let seed_nodes: Vec<usize> = self
            .seeds
            .iter()
            .filter_map(|s| graph.node_of(*s))
            .collect();
        if seed_nodes.is_empty() {
            return false;
        }
        // Which RR sets are covered, and by how many seeds.
        let mut cover_count = vec![0u32; rr.len()];
        let mut covered_by_seed: Vec<Vec<u32>> = vec![Vec::new(); seed_nodes.len()];
        let seed_lookup: std::collections::HashMap<usize, usize> = seed_nodes
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        for (ri, set) in rr.sets().iter().enumerate() {
            for v in set {
                if let Some(&si) = seed_lookup.get(v) {
                    cover_count[ri] += 1;
                    covered_by_seed[si].push(ri as u32);
                }
            }
        }
        let covered_total = cover_count.iter().filter(|&&c| c > 0).count();
        let current_spread = n as f64 * covered_total as f64 / rr.len().max(1) as f64;

        // Exclusive coverage of each seed: RR sets only it covers (the upper
        // bound on what a swap-out loses).
        let exclusive: Vec<usize> = covered_by_seed
            .iter()
            .map(|sets| {
                sets.iter()
                    .filter(|&&ri| cover_count[ri as usize] == 1)
                    .count()
            })
            .collect();
        // The cheapest seed to give up.
        let Some((worst_idx, &worst_loss)) = exclusive
            .iter()
            .enumerate()
            .min_by_key(|&(_, loss)| *loss)
        else {
            return false;
        };

        // Candidate gain: RR sets not covered by any seed that the candidate
        // covers (upper bound on its marginal), evaluated for every
        // non-seed node.
        let mut best: Option<(usize, i64)> = None;
        let seed_node_set: HashSet<usize> = seed_nodes.iter().copied().collect();
        let mut candidate_gain = vec![0i64; n];
        for (ri, set) in rr.sets().iter().enumerate() {
            if cover_count[ri] > 0 {
                continue;
            }
            for &v in set {
                if !seed_node_set.contains(&v) {
                    candidate_gain[v] += 1;
                }
            }
        }
        for (v, &gain) in candidate_gain.iter().enumerate() {
            if gain > 0 {
                match best {
                    Some((_, g)) if g >= gain => {}
                    _ => best = Some((v, gain)),
                }
            }
        }
        let Some((candidate, gain)) = best else {
            return false;
        };
        let net_gain = (gain - worst_loss as i64) as f64 * n as f64 / rr.len().max(1) as f64;
        if net_gain > self.config.gamma * current_spread && net_gain > 0.0 {
            let out_user = graph.user(seed_nodes[worst_idx]);
            let in_user = graph.user(candidate);
            if let Some(pos) = self.seeds.iter().position(|&s| s == out_user) {
                self.seeds[pos] = in_user;
                self.swaps += 1;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    fn star(hub: u32, leaves: std::ops::Range<u32>, g: &mut InfluenceGraph) {
        for l in leaves {
            g.add_edge(UserId(hub), UserId(l), 1.0);
        }
    }

    #[test]
    fn cold_start_fills_with_greedy_seeds() {
        let mut g = InfluenceGraph::new();
        star(0, 1..10, &mut g);
        star(100, 101..106, &mut g);
        let mut ubi = Ubi::new(UbiConfig::new(2).with_rr_sets(5_000));
        let spread = ubi.update(&g, &mut rng());
        let mut seeds = ubi.seeds().to_vec();
        seeds.sort();
        assert_eq!(seeds, vec![UserId(0), UserId(100)]);
        assert!(spread > 10.0);
    }

    #[test]
    fn interchange_replaces_obsolete_seed() {
        // Window 1: hub 0 dominates.  Window 2: hub 0 disappears and hub 200
        // dominates; UBI must swap it in.
        let mut g1 = InfluenceGraph::new();
        star(0, 1..12, &mut g1);
        star(50, 51..54, &mut g1);
        let mut ubi = Ubi::new(UbiConfig::new(2).with_rr_sets(5_000));
        ubi.update(&g1, &mut rng());
        assert!(ubi.seeds().contains(&UserId(0)));

        let mut g2 = InfluenceGraph::new();
        star(50, 51..54, &mut g2);
        star(200, 201..220, &mut g2);
        ubi.update(&g2, &mut rng());
        assert!(
            ubi.seeds().contains(&UserId(200)),
            "seeds after shift: {:?}",
            ubi.seeds()
        );
    }

    #[test]
    fn seed_set_never_exceeds_k() {
        let mut g = InfluenceGraph::new();
        star(0, 1..30, &mut g);
        star(40, 41..60, &mut g);
        star(70, 71..90, &mut g);
        let mut ubi = Ubi::new(UbiConfig::new(2).with_rr_sets(3_000));
        for _ in 0..3 {
            ubi.update(&g, &mut rng());
            assert!(ubi.seeds().len() <= 2);
        }
    }

    #[test]
    fn empty_graph_is_safe() {
        let g = InfluenceGraph::new();
        let mut ubi = Ubi::new(UbiConfig::new(3));
        let spread = ubi.update(&g, &mut rng());
        assert_eq!(spread, 0.0);
        assert!(ubi.seeds().is_empty());
        assert_eq!(ubi.swaps(), 0);
    }

    #[test]
    fn last_spread_tracks_latest_window() {
        let mut g = InfluenceGraph::new();
        star(0, 1..5, &mut g);
        let mut ubi = Ubi::new(UbiConfig::new(1).with_rr_sets(3_000));
        let s1 = ubi.update(&g, &mut rng());
        assert!((ubi.last_spread() - s1).abs() < 1e-12);
        assert!(s1 >= 4.0);
    }
}
