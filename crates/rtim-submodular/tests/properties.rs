//! Property-based tests of the submodular-maximization building blocks:
//! objective properties (monotonicity, submodularity), the greedy
//! guarantee, and the streaming oracles' guarantees against brute force.

use proptest::prelude::*;
use rtim_stream::{InfluenceSet, InfluenceSets, UserId};
use rtim_submodular::{
    brute_force_best, greedy_max_coverage, lazy_greedy_max_coverage, CoverageState, DenseWeights,
    OracleConfig, OracleKind, UnitWeight,
};

/// A random small coverage instance: up to `max_candidates` candidate users,
/// each covering a subset of a universe of `universe` items.
fn arb_instance(
    max_candidates: usize,
    universe: u32,
) -> impl Strategy<Value = Vec<(u32, Vec<u32>)>> {
    prop::collection::vec(
        (
            0u32..1000,
            prop::collection::vec(0u32..universe, 1..(universe as usize).min(12)),
        ),
        1..max_candidates,
    )
}

fn to_sets(instance: &[(u32, Vec<u32>)]) -> InfluenceSets {
    let mut sets = InfluenceSets::new();
    for (u, covered) in instance {
        for &v in covered {
            sets.insert(UserId(*u), UserId(v));
        }
    }
    sets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weighted coverage is monotone: absorbing any set never decreases the
    /// value, and the marginal gain is never negative.
    #[test]
    fn coverage_is_monotone(instance in arb_instance(10, 20)) {
        let w = UnitWeight;
        let mut cov = CoverageState::new();
        let mut last = 0.0;
        for (_, covered) in &instance {
            let set: InfluenceSet = covered.iter().map(|&v| UserId(v)).collect();
            prop_assert!(cov.marginal_gain(&w, &set) >= 0.0);
            cov.absorb(&w, &set);
            prop_assert!(cov.value() + 1e-9 >= last);
            last = cov.value();
        }
    }

    /// Submodularity (diminishing returns): the marginal gain of a fixed set
    /// never increases as the base coverage grows.
    #[test]
    fn coverage_has_diminishing_returns(
        instance in arb_instance(8, 20),
        extra in prop::collection::vec(0u32..20, 1..10),
    ) {
        let w = UnitWeight;
        let x: InfluenceSet = extra.into_iter().map(UserId).collect();
        let mut cov = CoverageState::new();
        let mut last_gain = cov.marginal_gain(&w, &x);
        for (_, covered) in &instance {
            cov.absorb(&w, &covered.iter().map(|&v| UserId(v)).collect::<InfluenceSet>());
            let gain = cov.marginal_gain(&w, &x);
            prop_assert!(gain <= last_gain + 1e-9);
            last_gain = gain;
        }
    }

    /// Greedy and lazy greedy both achieve at least (1 − 1/e) of the
    /// brute-force optimum.  (They may break ties between equal marginal
    /// gains differently and therefore report different — but equally
    /// guaranteed — values.)
    #[test]
    fn greedy_meets_its_guarantee(instance in arb_instance(10, 16), k in 1usize..5) {
        let sets = to_sets(&instance);
        prop_assume!(sets.len() <= 12);
        let opt = brute_force_best(&sets, k, &UnitWeight).value;
        let g = greedy_max_coverage(&sets, k, &UnitWeight).value;
        let lg = lazy_greedy_max_coverage(&sets, k, &UnitWeight).value;
        let ratio = 1.0 - 1.0 / std::f64::consts::E;
        prop_assert!(g >= ratio * opt - 1e-9, "greedy {g} vs opt {opt}");
        prop_assert!(lg >= ratio * opt - 1e-9, "lazy greedy {lg} vs opt {opt}");
        prop_assert!(g <= opt + 1e-9);
        prop_assert!(lg <= opt + 1e-9);
    }

    /// Every streaming oracle respects its approximation guarantee on the
    /// set-stream model (each candidate's full set arrives exactly once).
    #[test]
    fn streaming_oracles_meet_their_guarantees(instance in arb_instance(12, 16), k in 1usize..4) {
        let sets = to_sets(&instance);
        prop_assume!(sets.len() <= 12);
        let opt = brute_force_best(&sets, k, &UnitWeight).value;
        for kind in OracleKind::all() {
            let config = OracleConfig::new(k, 0.1);
            let mut oracle = kind.build(config);
            for (u, covered) in sets.iter() {
                oracle.process(u, covered, &DenseWeights::Unit);
            }
            let ratio = kind.approximation_ratio(config);
            prop_assert!(
                oracle.value() >= ratio * opt - 1e-9,
                "{} value {} below {} * opt {}", kind.name(), oracle.value(), ratio, opt
            );
            prop_assert!(oracle.value() <= opt + 1e-9, "{} exceeded opt", kind.name());
            prop_assert!(oracle.seeds().len() <= k);
        }
    }

    /// Oracle values are monotone in the stream even when the same candidate
    /// re-arrives with a grown set (the SSM re-feeding pattern).
    #[test]
    fn oracle_values_are_monotone_under_refeeding(
        instance in arb_instance(10, 14),
        k in 1usize..4,
    ) {
        for kind in OracleKind::all() {
            let mut oracle = kind.build(OracleConfig::new(k, 0.2));
            let mut cumulative: std::collections::HashMap<u32, InfluenceSet> = Default::default();
            let mut last = 0.0;
            for (u, covered) in &instance {
                let entry = cumulative.entry(*u).or_default();
                entry.extend(covered.iter().map(|&v| UserId(v)));
                oracle.process(UserId(*u), entry, &DenseWeights::Unit);
                prop_assert!(oracle.value() + 1e-9 >= last, "{} value decreased", kind.name());
                last = oracle.value();
            }
        }
    }
}
