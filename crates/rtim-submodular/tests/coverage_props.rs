//! Property tests of the bitmap [`CoverageState`] against the retained
//! [`HashCoverageState`] reference model, under both the cardinality and a
//! weighted objective, with arriving sets that cross the small-vec↔bitmap
//! promotion boundary.

use proptest::prelude::*;
use rtim_stream::{InfluenceSet, UserId};
use rtim_submodular::{CoverageState, HashCoverageState, MapWeight, UnitWeight};
use std::collections::HashMap;

/// A random sequence of influence sets (the op stream), sized to exercise
/// both representations of the arriving set.
fn arb_sets(max_sets: usize, universe: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(
        prop::collection::vec(0u32..universe, 1..90),
        1..max_sets,
    )
}

/// Integer-valued weights so float accumulation is exact regardless of the
/// summation order (the bitmap sums in ascending id order, the hash set in
/// hash order — only exactness makes them comparable with `==`).
fn weight_for(universe: u32) -> MapWeight {
    let mut table = HashMap::new();
    for u in 0..universe {
        table.insert(UserId(u), f64::from(u % 5));
    }
    MapWeight::new(table, 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unit-weight equivalence: marginal_gain, absorb, value, covered count,
    /// and membership all match the reference model at every step.
    #[test]
    fn bitmap_matches_reference_unit(sets in arb_sets(30, 600)) {
        let w = UnitWeight;
        let mut bitmap = CoverageState::new();
        let mut model = HashCoverageState::new();
        for ids in &sets {
            let set: InfluenceSet = ids.iter().map(|&v| UserId(v)).collect();
            prop_assert_eq!(bitmap.marginal_gain(&w, &set), model.marginal_gain(&w, &set));
            prop_assert_eq!(bitmap.absorb(&w, &set), model.absorb(&w, &set));
            prop_assert_eq!(bitmap.value(), model.value());
            prop_assert_eq!(bitmap.covered_count(), model.covered_count());
            for &v in ids {
                prop_assert_eq!(bitmap.covers(UserId(v)), model.covers(UserId(v)));
            }
        }
    }

    /// Weighted equivalence (integer weights keep sums exact).
    #[test]
    fn bitmap_matches_reference_weighted(sets in arb_sets(25, 400)) {
        let w = weight_for(400);
        let mut bitmap = CoverageState::new();
        let mut model = HashCoverageState::new();
        for ids in &sets {
            let set: InfluenceSet = ids.iter().map(|&v| UserId(v)).collect();
            prop_assert_eq!(bitmap.marginal_gain(&w, &set), model.marginal_gain(&w, &set));
            prop_assert_eq!(bitmap.absorb(&w, &set), model.absorb(&w, &set));
            prop_assert_eq!(bitmap.value(), model.value());
        }
    }

    /// absorb_one (the delta path) is equivalent to absorbing a singleton
    /// set, and to the reference model's single-user insert.
    #[test]
    fn absorb_one_matches_model(
        sets in arb_sets(10, 300),
        singles in prop::collection::vec(0u32..300, 1..40),
    ) {
        let w = weight_for(300);
        let mut bitmap = CoverageState::new();
        let mut model = HashCoverageState::new();
        for ids in &sets {
            let set: InfluenceSet = ids.iter().map(|&v| UserId(v)).collect();
            bitmap.absorb(&w, &set);
            model.absorb(&w, &set);
        }
        for &v in &singles {
            prop_assert_eq!(
                bitmap.absorb_one(&w, UserId(v)),
                model.absorb_one(&w, UserId(v))
            );
        }
        prop_assert_eq!(bitmap.value(), model.value());
        prop_assert_eq!(bitmap.covered_count(), model.covered_count());
    }

    /// The early-exit marginal gain truncates consistently: it reaches the
    /// target iff the exact marginal gain does, and never exceeds it.
    #[test]
    fn marginal_gain_at_least_is_consistent(
        base in arb_sets(6, 300),
        probe in prop::collection::vec(0u32..300, 1..90),
        target_tenths in 0u32..200,
    ) {
        let w = UnitWeight;
        let target = f64::from(target_tenths) / 10.0;
        let mut cov = CoverageState::new();
        for ids in &base {
            cov.absorb(&w, &ids.iter().map(|&v| UserId(v)).collect());
        }
        let set: InfluenceSet = probe.iter().map(|&v| UserId(v)).collect();
        let exact = cov.marginal_gain(&w, &set);
        let truncated = cov.marginal_gain_at_least(&w, &set, target);
        prop_assert!(truncated <= exact + 1e-9);
        prop_assert_eq!(truncated >= target, exact >= target,
            "exact {} truncated {} target {}", exact, truncated, target);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arena-backed coverage is bit-identical to heap-backed coverage:
    /// routing bitmap growth through a `WordArena` — including buffers
    /// recycled across slides — changes backing-store provenance only,
    /// never a gain, value, or membership answer.
    #[test]
    fn arena_backed_coverage_matches_heap_backed(
        rounds in prop::collection::vec(arb_sets(12, 600), 1..4),
        unit in 0u32..2,
    ) {
        use rtim_stream::WordArena;
        let weighted = weight_for(600);
        let mut arena = WordArena::new();
        for sets in &rounds {
            let mut heap = CoverageState::new();
            let mut pooled = CoverageState::new();
            for ids in sets {
                let set: InfluenceSet = ids.iter().map(|&v| UserId(v)).collect();
                let (a, b) = if unit == 0 {
                    (heap.absorb(&UnitWeight, &set),
                     pooled.absorb_in(&UnitWeight, &set, &mut arena))
                } else {
                    (heap.absorb(&weighted, &set),
                     pooled.absorb_in(&weighted, &set, &mut arena))
                };
                prop_assert_eq!(a.to_bits(), b.to_bits());
                prop_assert_eq!(heap.value().to_bits(), pooled.value().to_bits());
                prop_assert_eq!(heap.covered_count(), pooled.covered_count());
                for &v in ids {
                    prop_assert_eq!(heap.covers(UserId(v)), pooled.covers(UserId(v)));
                }
            }
            arena.end_slide();
        }
    }
}
