//! ThresholdStream (Kumar, Moseley, Vassilvitskii, Vattani — TOPC 2015).
//!
//! Like SieveStreaming, ThresholdStream guesses the optimum on a geometric
//! grid `(1+β)^j ∈ [m, 2km]`, but each guess `v` uses a *fixed* admission
//! threshold `τ = v / (2k)`: an arriving element is admitted while fewer
//! than `k` seeds are held and its marginal gain is at least `τ`.  For the
//! guess closest to `OPT` the admitted solution is a `(1/2 − β)`
//! approximation.  The fixed threshold makes each admission test slightly
//! cheaper than SieveStreaming's adaptive rule at the cost of somewhat
//! weaker empirical values — exactly the trade-off the Table-2 ablation
//! bench measures.
//!
//! The delta path ([`SsoOracle::process_grow`]) mirrors SieveStreaming's:
//! existing seeds absorb the single new user in O(1), and singleton values
//! are maintained incrementally for weighted objectives.

use crate::coverage::CoverageState;
use crate::oracle::{OracleConfig, SsoOracle};
use crate::singles::SingletonValues;
use crate::weights::DenseWeights;
use rtim_stream::{InfluenceSet, UserId};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Instance {
    /// Fixed admission threshold `v / (2k)` for this guess `v`.
    threshold: f64,
    seeds: Vec<UserId>,
    /// Membership index over `seeds` (O(1) seed test instead of a linear
    /// scan; see the same field on the SieveStreaming instance).
    seed_set: InfluenceSet,
    coverage: CoverageState,
}

impl Instance {
    fn new(opt_guess: f64, k: usize) -> Self {
        Instance {
            threshold: opt_guess / (2.0 * k as f64),
            seeds: Vec::new(),
            seed_set: InfluenceSet::new(),
            coverage: CoverageState::new(),
        }
    }
}

/// The ThresholdStream oracle.
#[derive(Debug, Clone)]
pub struct ThresholdStream {
    config: OracleConfig,
    max_single: f64,
    best_single: Option<(UserId, f64)>,
    instances: BTreeMap<i64, Instance>,
    /// Incrementally maintained singleton values `f({e})` per key (see
    /// [`crate::singles`]).
    singles: SingletonValues,
    elements: u64,
}

impl ThresholdStream {
    /// Creates an empty oracle.
    pub fn new(config: OracleConfig) -> Self {
        ThresholdStream {
            config,
            max_single: 0.0,
            best_single: None,
            instances: BTreeMap::new(),
            singles: SingletonValues::new(),
            elements: 0,
        }
    }

    /// Number of live guess instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Rebuilds an oracle from persisted state (see [`crate::state`]).
    pub(crate) fn from_state(config: OracleConfig, state: crate::state::ThresholdState) -> Self {
        ThresholdStream {
            config,
            max_single: state.max_single,
            best_single: state.best_single,
            instances: state
                .instances
                .into_iter()
                .map(|inst| {
                    (
                        inst.exponent,
                        Instance {
                            threshold: inst.parameter,
                            seed_set: inst.seeds.iter().copied().collect(),
                            seeds: inst.seeds,
                            coverage: inst.coverage.restore(),
                        },
                    )
                })
                .collect(),
            singles: SingletonValues::from_entries(state.singles),
            elements: state.elements,
        }
    }

    fn refresh_instances(&mut self) {
        if self.max_single <= 0.0 {
            return;
        }
        let base = (1.0 + self.config.beta).ln();
        let lo = (self.max_single.ln() / base).ceil() as i64;
        let hi = ((2.0 * self.config.k as f64 * self.max_single).ln() / base).floor() as i64;
        self.instances.retain(|&j, _| j >= lo);
        for j in lo..=hi {
            let guess = (1.0 + self.config.beta).powi(j as i32);
            self.instances
                .entry(j)
                .or_insert_with(|| Instance::new(guess, self.config.k));
        }
    }

    fn best_instance(&self) -> Option<&Instance> {
        self.instances
            .values()
            .max_by(|a, b| a.coverage.value().total_cmp(&b.coverage.value()))
    }

    fn process_inner(
        &mut self,
        key: UserId,
        set: &InfluenceSet,
        weights: &DenseWeights,
        added: Option<UserId>,
    ) {
        self.elements += 1;
        let single = self.singles.value(key, set, weights, added);
        if single > self.max_single {
            self.max_single = single;
            self.refresh_instances();
        }
        match &self.best_single {
            Some((_, v)) if *v >= single => {}
            _ => self.best_single = Some((key, single)),
        }

        let k = self.config.k;
        for inst in self.instances.values_mut() {
            if inst.seed_set.contains(key) {
                match added {
                    Some(a) => {
                        inst.coverage.absorb_one(weights, a);
                    }
                    None => {
                        inst.coverage.absorb(weights, set);
                    }
                }
                continue;
            }
            if inst.seeds.len() >= k || inst.threshold > single {
                continue;
            }
            let gain = inst
                .coverage
                .marginal_gain_at_least(weights, set, inst.threshold);
            if gain >= inst.threshold && gain > 0.0 {
                inst.coverage.absorb(weights, set);
                inst.seeds.push(key);
                inst.seed_set.insert(key);
            }
        }
    }
}

impl SsoOracle for ThresholdStream {
    fn process(&mut self, key: UserId, set: &InfluenceSet, weights: &DenseWeights) {
        self.process_inner(key, set, weights, None);
    }

    fn process_grow(
        &mut self,
        key: UserId,
        added: UserId,
        set: &InfluenceSet,
        weights: &DenseWeights,
    ) {
        self.process_inner(key, set, weights, Some(added));
    }

    fn value(&self) -> f64 {
        let best_inst = self.best_instance().map_or(0.0, |i| i.coverage.value());
        let best_single = self.best_single.map_or(0.0, |(_, v)| v);
        best_inst.max(best_single)
    }

    fn seeds(&self) -> Vec<UserId> {
        let best_single = self.best_single.map_or(0.0, |(_, v)| v);
        match self.best_instance() {
            Some(inst) if inst.coverage.value() >= best_single => inst.seeds.clone(),
            _ => self.best_single.iter().map(|(u, _)| *u).collect(),
        }
    }

    fn k(&self) -> usize {
        self.config.k
    }

    fn elements_processed(&self) -> u64 {
        self.elements
    }

    fn retained_facts(&self) -> usize {
        self.instances
            .values()
            .map(|i| i.coverage.covered_count())
            .sum()
    }

    fn snapshot_state(&self) -> Option<crate::state::OracleState> {
        use crate::state::{CoverageSnapshot, InstanceState, OracleState, ThresholdState};
        Some(OracleState::Threshold(ThresholdState {
            max_single: self.max_single,
            best_single: self.best_single,
            instances: self
                .instances
                .iter()
                .map(|(&exponent, inst)| InstanceState {
                    exponent,
                    parameter: inst.threshold,
                    seeds: inst.seeds.clone(),
                    coverage: CoverageSnapshot::of(&inst.coverage),
                })
                .collect(),
            singles: self.singles.entries(),
            elements: self.elements,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIT: DenseWeights<'static> = DenseWeights::Unit;

    fn set(ids: &[u32]) -> InfluenceSet {
        ids.iter().map(|&i| UserId(i)).collect()
    }

    #[test]
    fn admits_elements_above_threshold() {
        let mut t = ThresholdStream::new(OracleConfig::new(2, 0.2));
        t.process(UserId(1), &set(&[1, 2, 3]), &UNIT);
        t.process(UserId(2), &set(&[4, 5, 6]), &UNIT);
        assert!(t.value() >= 5.0);
        assert!(t.seeds().len() <= 2);
    }

    #[test]
    fn value_monotone_and_bounded_by_universe() {
        let mut t = ThresholdStream::new(OracleConfig::new(3, 0.1));
        let mut last = 0.0;
        for i in 0..20u32 {
            t.process(UserId(i), &set(&[i % 7, (i + 1) % 7]), &UNIT);
            assert!(t.value() + 1e-9 >= last);
            last = t.value();
        }
        assert!(t.value() <= 7.0);
    }

    #[test]
    fn reprocessed_seed_grows() {
        let mut t = ThresholdStream::new(OracleConfig::new(1, 0.1));
        t.process(UserId(3), &set(&[1]), &UNIT);
        t.process(UserId(3), &set(&[1, 2, 3]), &UNIT);
        assert!(t.value() >= 3.0);
    }

    #[test]
    fn grow_delta_matches_full_reprocess() {
        let mut full = ThresholdStream::new(OracleConfig::new(2, 0.2));
        let mut delta = ThresholdStream::new(OracleConfig::new(2, 0.2));
        let grown: &[&[u32]] = &[&[1], &[1, 5], &[1, 5, 9]];
        for (i, cover) in grown.iter().enumerate() {
            let s = set(cover);
            full.process(UserId(1), &s, &UNIT);
            if i == 0 {
                delta.process(UserId(1), &s, &UNIT);
            } else {
                delta.process_grow(UserId(1), UserId(cover[i]), &s, &UNIT);
            }
            assert_eq!(full.value(), delta.value());
            assert_eq!(full.seeds(), delta.seeds());
        }
    }

    #[test]
    fn empty_is_zero() {
        let t = ThresholdStream::new(OracleConfig::default());
        assert_eq!(t.value(), 0.0);
        assert!(t.seeds().is_empty());
    }
}
