//! # rtim-submodular
//!
//! Monotone submodular maximization building blocks for Stream Influence
//! Maximization:
//!
//! * [`weights`] — element-weight functions turning coverage into the
//!   monotone submodular influence functions of the paper (`f(I(·))`):
//!   plain cardinality ([`UnitWeight`]) and weighted coverage
//!   ([`MapWeight`], used e.g. by conformity-aware SIM, Appendix A).
//! * [`coverage`] — incremental weighted-coverage state (`f(S)`, marginal
//!   gains) shared by all algorithms.
//! * [`greedy`] — the classic greedy of Nemhauser et al. (1 − 1/e), its lazy
//!   (CELF) variant, and a brute-force optimum for small test instances.
//! * [`oracle`] — the [`SsoOracle`] trait: streaming submodular optimization
//!   over an append-only set-stream, the abstraction a checkpoint wraps.
//! * [`sieve`] — **SieveStreaming** (Badanidiyuru et al. 2014), `1/2 − β`.
//! * [`threshold_stream`] — **ThresholdStream** (Kumar et al. 2015), `1/2 − β`.
//! * [`swap`] — swap-based streaming max-k-coverage (Saha & Getoor 2009 /
//!   Ausiello et al. 2012), `1/4`.
//!
//! These oracles implement the set-stream model of §4.2: elements arrive one
//! by one, each element is a *set of covered users* keyed by the candidate
//! seed user, and the same key may re-arrive later with a grown set (which
//! is how the Set-Stream Mapping feeds updated influence sets).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage;
pub mod greedy;
pub mod oracle;
pub mod sieve;
mod singles;
pub mod state;
pub mod swap;
pub mod threshold_stream;
pub mod weights;

pub use coverage::{reference::HashCoverageState, CoverageState};
pub use greedy::{brute_force_best, greedy_max_coverage, lazy_greedy_max_coverage, GreedyResult};
pub use oracle::{OracleConfig, OracleKind, SsoOracle};
pub use state::OracleState;
pub use sieve::SieveStreaming;
pub use swap::SwapStreaming;
pub use threshold_stream::ThresholdStream;
pub use weights::{DenseWeights, ElementWeight, MapWeight, UnitWeight};
