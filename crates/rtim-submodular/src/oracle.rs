//! The streaming submodular optimization (SSO) oracle abstraction.
//!
//! A checkpoint (§4.1) wraps an SSO oracle operating in the *set-stream*
//! model: elements arrive one at a time, each element is the influence set
//! of a candidate seed user, and the oracle maintains a candidate solution
//! of at most `k` seeds maximizing the weighted coverage of the union of
//! their sets.  The Set-Stream Mapping of §4.2 may feed the *same* user
//! again later with a strictly larger set (its updated influence set);
//! oracles must treat this as a fresh element (Theorem 2 shows the
//! approximation ratio is preserved, and keeping only the newest copy per
//! user can only increase the value).
//!
//! ## The delta-aware path
//!
//! Inside a checkpoint an influence set grows by **exactly one user** per
//! action (the actor).  [`SsoOracle::process_grow`] hands the oracle that
//! single-user delta alongside the full set, letting implementations absorb
//! the one new user in O(1) on the existing-seed branch and maintain the
//! element's singleton value incrementally instead of rescanning the whole
//! set.  The default implementation falls back to [`SsoOracle::process`],
//! so delta-awareness is an optimization, never a correctness requirement.
//!
//! ## Weights
//!
//! Oracles receive their element weights per call as a [`DenseWeights`]
//! view — `Unit` for the cardinality objective (pure popcount coverage) or
//! a borrowed dense `f64` table indexed by interned user id.  The weights
//! passed to an oracle must be consistent across its lifetime (same
//! objective, append-only table).

use crate::weights::DenseWeights;
use crate::{SieveStreaming, SwapStreaming, ThresholdStream};
use rtim_stream::{InfluenceSet, UserId, WordArena};
use serde::{Deserialize, Serialize};

/// Configuration shared by all SSO oracles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Cardinality constraint `k` (maximum number of seeds).
    pub k: usize,
    /// Accuracy/efficiency trade-off parameter `β ∈ (0, 1)` used by the
    /// threshold-guessing oracles; ignored by the swap oracle.
    pub beta: f64,
}

impl OracleConfig {
    /// Creates a configuration, clamping `beta` into `(0, 1)`.
    pub fn new(k: usize, beta: f64) -> Self {
        assert!(k > 0, "k must be positive");
        OracleConfig {
            k,
            beta: beta.clamp(1e-6, 0.999_999),
        }
    }
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig { k: 50, beta: 0.1 }
    }
}

/// A streaming submodular optimization oracle over an append-only set-stream.
pub trait SsoOracle: Send {
    /// Processes one element: candidate seed `key` together with its current
    /// (possibly updated/grown) influence set, under the given weights.
    fn process(&mut self, key: UserId, set: &InfluenceSet, weights: &DenseWeights);

    /// Processes the re-arrival of `key` whose set grew by **exactly one**
    /// user, `added` (already present in `set`).
    ///
    /// Callers must guarantee that `set` is the previously fed set of `key`
    /// plus `added`; under that contract implementations may update cached
    /// per-element values incrementally.  The default falls back to the
    /// non-delta [`Self::process`].
    fn process_grow(
        &mut self,
        key: UserId,
        added: UserId,
        set: &InfluenceSet,
        weights: &DenseWeights,
    ) {
        let _ = added;
        self.process(key, set, weights);
    }

    /// [`Self::process`] with slide-time bitmap growth routed through a
    /// per-worker [`WordArena`] (see `rtim_stream::arena`).  The default
    /// ignores the arena and delegates, so arena awareness — like
    /// delta awareness — is an optimization, never a correctness
    /// requirement for external oracle implementations.
    fn process_in(
        &mut self,
        key: UserId,
        set: &InfluenceSet,
        weights: &DenseWeights,
        arena: &mut WordArena,
    ) {
        let _ = arena;
        self.process(key, set, weights);
    }

    /// [`Self::process_grow`] with arena-routed bitmap growth; same
    /// delegation contract as [`Self::process_in`].
    fn process_grow_in(
        &mut self,
        key: UserId,
        added: UserId,
        set: &InfluenceSet,
        weights: &DenseWeights,
        arena: &mut WordArena,
    ) {
        let _ = arena;
        self.process_grow(key, added, set, weights);
    }

    /// The objective value `f(I(S))` of the current candidate solution.
    fn value(&self) -> f64;

    /// The current candidate seeds (at most `k` distinct users).
    fn seeds(&self) -> Vec<UserId>;

    /// The cardinality constraint `k`.
    fn k(&self) -> usize;

    /// Number of `process`/`process_grow` calls served so far
    /// (instrumentation).
    fn elements_processed(&self) -> u64;

    /// Approximate memory footprint: number of `(user, covered-user)` facts
    /// retained across all internal instances (instrumentation for the
    /// checkpoint-count/space experiments).
    fn retained_facts(&self) -> usize;

    /// The oracle's serializable state, if it supports durable snapshots.
    ///
    /// Every oracle shipped by this crate returns `Some`; the default is
    /// `None` so external implementations keep compiling — an engine whose
    /// checkpoints hold such an oracle reports snapshotting as unsupported
    /// instead of failing at decode time.  Restore with
    /// [`OracleState::restore`](crate::state::OracleState::restore).
    fn snapshot_state(&self) -> Option<crate::state::OracleState> {
        None
    }
}

/// Selector for the checkpoint-oracle implementation (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OracleKind {
    /// SieveStreaming (Badanidiyuru et al. 2014): `1/2 − β`, `O(log k / β)`
    /// instances.  The paper's default checkpoint oracle.
    SieveStreaming,
    /// ThresholdStream (Kumar et al. 2015): `1/2 − β`.
    ThresholdStream,
    /// Swap-based streaming max-k-coverage (Saha & Getoor 2009, Ausiello et
    /// al. 2012): `1/4`, `O(k)` per element.
    Swap,
}

impl OracleKind {
    /// Instantiates the selected oracle.
    pub fn build(self, config: OracleConfig) -> Box<dyn SsoOracle> {
        match self {
            OracleKind::SieveStreaming => Box::new(SieveStreaming::new(config)),
            OracleKind::ThresholdStream => Box::new(ThresholdStream::new(config)),
            OracleKind::Swap => Box::new(SwapStreaming::new(config)),
        }
    }

    /// Worst-case approximation ratio of the oracle (for β from `config`),
    /// as listed in Table 2.
    pub fn approximation_ratio(self, config: OracleConfig) -> f64 {
        match self {
            OracleKind::SieveStreaming | OracleKind::ThresholdStream => 0.5 - config.beta,
            OracleKind::Swap => 0.25,
        }
    }

    /// All supported oracle kinds (used by the Table-2 ablation bench).
    pub fn all() -> [OracleKind; 3] {
        [
            OracleKind::SieveStreaming,
            OracleKind::ThresholdStream,
            OracleKind::Swap,
        ]
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::SieveStreaming => "SieveStreaming",
            OracleKind::ThresholdStream => "ThresholdStream",
            OracleKind::Swap => "Swap",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> InfluenceSet {
        ids.iter().map(|&i| UserId(i)).collect()
    }

    #[test]
    fn factory_builds_all_kinds() {
        for kind in OracleKind::all() {
            let mut oracle = kind.build(OracleConfig::new(2, 0.2));
            oracle.process(UserId(1), &set(&[1, 2, 3]), &DenseWeights::Unit);
            oracle.process(UserId(2), &set(&[4]), &DenseWeights::Unit);
            assert!(oracle.value() >= 3.0, "{}", kind.name());
            assert!(oracle.seeds().len() <= 2);
            assert_eq!(oracle.k(), 2);
            assert_eq!(oracle.elements_processed(), 2);
        }
    }

    #[test]
    fn grow_path_matches_full_reprocessing() {
        // Feed the same grown-by-one sequence through process() and
        // process_grow(): values must agree for every oracle kind.
        let streams: Vec<(u32, Vec<u32>)> = vec![
            (1, vec![1]),
            (1, vec![1, 2]),
            (2, vec![3]),
            (1, vec![1, 2, 4]),
            (2, vec![3, 4]),
            (3, vec![5]),
        ];
        for kind in OracleKind::all() {
            let mut full = kind.build(OracleConfig::new(2, 0.2));
            let mut delta = kind.build(OracleConfig::new(2, 0.2));
            let mut last_len: std::collections::HashMap<u32, usize> = Default::default();
            for (u, cover) in &streams {
                let s = set(cover);
                full.process(UserId(*u), &s, &DenseWeights::Unit);
                let prev = last_len.insert(*u, cover.len()).unwrap_or(0);
                if prev + 1 == cover.len() {
                    let added = UserId(*cover.last().unwrap());
                    delta.process_grow(UserId(*u), added, &s, &DenseWeights::Unit);
                } else {
                    delta.process(UserId(*u), &s, &DenseWeights::Unit);
                }
                assert_eq!(full.value(), delta.value(), "{}", kind.name());
            }
        }
    }

    #[test]
    fn config_clamps_beta() {
        let c = OracleConfig::new(5, 7.0);
        assert!(c.beta < 1.0);
        let c = OracleConfig::new(5, -1.0);
        assert!(c.beta > 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        let _ = OracleConfig::new(0, 0.1);
    }

    #[test]
    fn ratios_match_table2() {
        let c = OracleConfig::new(10, 0.1);
        assert!((OracleKind::SieveStreaming.approximation_ratio(c) - 0.4).abs() < 1e-9);
        assert!((OracleKind::Swap.approximation_ratio(c) - 0.25).abs() < 1e-9);
    }
}
