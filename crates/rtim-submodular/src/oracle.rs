//! The streaming submodular optimization (SSO) oracle abstraction.
//!
//! A checkpoint (§4.1) wraps an SSO oracle operating in the *set-stream*
//! model: elements arrive one at a time, each element is the influence set
//! of a candidate seed user, and the oracle maintains a candidate solution
//! of at most `k` seeds maximizing the weighted coverage of the union of
//! their sets.  The Set-Stream Mapping of §4.2 may feed the *same* user
//! again later with a strictly larger set (its updated influence set);
//! oracles must treat this as a fresh element (Theorem 2 shows the
//! approximation ratio is preserved, and keeping only the newest copy per
//! user can only increase the value).

use crate::weights::ElementWeight;
use crate::{SieveStreaming, SwapStreaming, ThresholdStream};
use rtim_stream::UserId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Configuration shared by all SSO oracles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Cardinality constraint `k` (maximum number of seeds).
    pub k: usize,
    /// Accuracy/efficiency trade-off parameter `β ∈ (0, 1)` used by the
    /// threshold-guessing oracles; ignored by the swap oracle.
    pub beta: f64,
}

impl OracleConfig {
    /// Creates a configuration, clamping `beta` into `(0, 1)`.
    pub fn new(k: usize, beta: f64) -> Self {
        assert!(k > 0, "k must be positive");
        OracleConfig {
            k,
            beta: beta.clamp(1e-6, 0.999_999),
        }
    }
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig { k: 50, beta: 0.1 }
    }
}

/// A streaming submodular optimization oracle over an append-only set-stream.
pub trait SsoOracle: Send {
    /// Processes one element: candidate seed `key` together with its current
    /// (possibly updated/grown) influence set.
    fn process(&mut self, key: UserId, set: &HashSet<UserId>);

    /// The objective value `f(I(S))` of the current candidate solution.
    fn value(&self) -> f64;

    /// The current candidate seeds (at most `k` distinct users).
    fn seeds(&self) -> Vec<UserId>;

    /// The cardinality constraint `k`.
    fn k(&self) -> usize;

    /// Number of `process` calls served so far (instrumentation).
    fn elements_processed(&self) -> u64;

    /// Approximate memory footprint: number of `(user, covered-user)` facts
    /// retained across all internal instances (instrumentation for the
    /// checkpoint-count/space experiments).
    fn retained_facts(&self) -> usize;
}

/// Selector for the checkpoint-oracle implementation (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OracleKind {
    /// SieveStreaming (Badanidiyuru et al. 2014): `1/2 − β`, `O(log k / β)`
    /// instances.  The paper's default checkpoint oracle.
    SieveStreaming,
    /// ThresholdStream (Kumar et al. 2015): `1/2 − β`.
    ThresholdStream,
    /// Swap-based streaming max-k-coverage (Saha & Getoor 2009, Ausiello et
    /// al. 2012): `1/4`, `O(k)` per element.
    Swap,
}

impl OracleKind {
    /// Instantiates the selected oracle with the given weight function.
    pub fn build<W>(self, config: OracleConfig, weight: W) -> Box<dyn SsoOracle>
    where
        W: ElementWeight + Send + 'static,
    {
        match self {
            OracleKind::SieveStreaming => Box::new(SieveStreaming::new(config, weight)),
            OracleKind::ThresholdStream => Box::new(ThresholdStream::new(config, weight)),
            OracleKind::Swap => Box::new(SwapStreaming::new(config, weight)),
        }
    }

    /// Worst-case approximation ratio of the oracle (for β from `config`),
    /// as listed in Table 2.
    pub fn approximation_ratio(self, config: OracleConfig) -> f64 {
        match self {
            OracleKind::SieveStreaming | OracleKind::ThresholdStream => 0.5 - config.beta,
            OracleKind::Swap => 0.25,
        }
    }

    /// All supported oracle kinds (used by the Table-2 ablation bench).
    pub fn all() -> [OracleKind; 3] {
        [
            OracleKind::SieveStreaming,
            OracleKind::ThresholdStream,
            OracleKind::Swap,
        ]
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::SieveStreaming => "SieveStreaming",
            OracleKind::ThresholdStream => "ThresholdStream",
            OracleKind::Swap => "Swap",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::UnitWeight;

    fn set(ids: &[u32]) -> HashSet<UserId> {
        ids.iter().map(|&i| UserId(i)).collect()
    }

    #[test]
    fn factory_builds_all_kinds() {
        for kind in OracleKind::all() {
            let mut oracle = kind.build(OracleConfig::new(2, 0.2), UnitWeight);
            oracle.process(UserId(1), &set(&[1, 2, 3]));
            oracle.process(UserId(2), &set(&[4]));
            assert!(oracle.value() >= 3.0, "{}", kind.name());
            assert!(oracle.seeds().len() <= 2);
            assert_eq!(oracle.k(), 2);
            assert_eq!(oracle.elements_processed(), 2);
        }
    }

    #[test]
    fn config_clamps_beta() {
        let c = OracleConfig::new(5, 7.0);
        assert!(c.beta < 1.0);
        let c = OracleConfig::new(5, -1.0);
        assert!(c.beta > 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        let _ = OracleConfig::new(0, 0.1);
    }

    #[test]
    fn ratios_match_table2() {
        let c = OracleConfig::new(10, 0.1);
        assert!((OracleKind::SieveStreaming.approximation_ratio(c) - 0.4).abs() < 1e-9);
        assert!((OracleKind::Swap.approximation_ratio(c) - 0.25).abs() < 1e-9);
    }
}
