//! Offline greedy algorithms for (weighted) maximum k-coverage.
//!
//! * [`greedy_max_coverage`] — the classic greedy of Nemhauser, Wolsey &
//!   Fisher (1978): `(1 − 1/e)`-approximate, `O(k·|U|)` marginal evaluations.
//!   This is the paper's "Greedy" baseline (§4, §6.1) which recomputes its
//!   answer from the current window on every query.
//! * [`lazy_greedy_max_coverage`] — the CELF acceleration: identical output
//!   guarantee, usually far fewer marginal evaluations thanks to lazily
//!   re-evaluated upper bounds (valid because the objective is submodular).
//! * [`brute_force_best`] — exact optimum by exhaustive search, only for
//!   small instances (tests and approximation-ratio property checks).

use crate::coverage::CoverageState;
use crate::weights::ElementWeight;
use rtim_stream::{InfluenceSets, UserId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a seed-selection algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyResult {
    /// Selected seeds, in selection order.
    pub seeds: Vec<UserId>,
    /// Objective value `f(I(S))` achieved by the seeds.
    pub value: f64,
}

impl GreedyResult {
    /// An empty result (no candidates, value 0).
    pub fn empty() -> Self {
        GreedyResult {
            seeds: Vec::new(),
            value: 0.0,
        }
    }
}

/// Classic greedy: repeatedly add the candidate with the largest marginal
/// gain until `k` seeds are chosen or no candidate improves the objective.
pub fn greedy_max_coverage<W: ElementWeight>(
    candidates: &InfluenceSets,
    k: usize,
    weight: &W,
) -> GreedyResult {
    let mut cov = CoverageState::new();
    let mut seeds: Vec<UserId> = Vec::with_capacity(k);
    let users: Vec<UserId> = candidates.users().collect();

    for _ in 0..k {
        let mut best: Option<(UserId, f64)> = None;
        for &u in &users {
            if seeds.contains(&u) {
                continue;
            }
            let Some(set) = candidates.get(u) else { continue };
            let gain = cov.marginal_gain(weight, set);
            match best {
                Some((_, g)) if g >= gain => {}
                _ => best = Some((u, gain)),
            }
        }
        match best {
            Some((u, gain)) if gain > 0.0 => {
                cov.absorb(weight, candidates.get(u).expect("candidate present"));
                seeds.push(u);
            }
            _ => break,
        }
    }
    GreedyResult {
        value: cov.value(),
        seeds,
    }
}

/// Entry in the CELF lazy-evaluation priority queue.
struct LazyEntry {
    user: UserId,
    /// Upper bound on the user's marginal gain (stale but valid by
    /// submodularity).
    bound: f64,
    /// Number of seeds selected when `bound` was last computed.
    round: usize,
}

impl PartialEq for LazyEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for LazyEntry {}
impl PartialOrd for LazyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LazyEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.user.0.cmp(&other.user.0))
    }
}

/// CELF / lazy greedy: same `(1 − 1/e)` guarantee as [`greedy_max_coverage`]
/// but skips most marginal-gain evaluations by keeping stale upper bounds in
/// a max-heap (submodularity makes stale bounds valid upper bounds).
pub fn lazy_greedy_max_coverage<W: ElementWeight>(
    candidates: &InfluenceSets,
    k: usize,
    weight: &W,
) -> GreedyResult {
    let mut cov = CoverageState::new();
    let mut seeds: Vec<UserId> = Vec::with_capacity(k);

    let mut heap: BinaryHeap<LazyEntry> = candidates
        .iter()
        .map(|(u, set)| LazyEntry {
            user: u,
            bound: CoverageState::set_value(weight, set),
            round: 0,
        })
        .collect();

    while seeds.len() < k {
        let Some(top) = heap.pop() else { break };
        if top.bound <= 0.0 {
            break;
        }
        if top.round == seeds.len() {
            // Bound is fresh for the current round: it is the exact gain.
            let set = candidates.get(top.user).expect("candidate present");
            cov.absorb(weight, set);
            seeds.push(top.user);
        } else {
            // Re-evaluate lazily and push back.
            let set = candidates.get(top.user).expect("candidate present");
            let gain = cov.marginal_gain(weight, set);
            heap.push(LazyEntry {
                user: top.user,
                bound: gain,
                round: seeds.len(),
            });
        }
    }
    GreedyResult {
        value: cov.value(),
        seeds,
    }
}

/// Exhaustive optimum over all subsets of size ≤ `k`.
///
/// Exponential in the number of candidates; intended only for tests
/// (approximation-ratio property checks) and tiny instances.
pub fn brute_force_best<W: ElementWeight>(
    candidates: &InfluenceSets,
    k: usize,
    weight: &W,
) -> GreedyResult {
    let users: Vec<UserId> = candidates.users().collect();
    let n = users.len();
    assert!(n <= 24, "brute force limited to 24 candidates, got {n}");
    let mut best = GreedyResult::empty();
    // Iterate all bitmasks with ≤ k bits set.
    for mask in 0u32..(1u32 << n) {
        if (mask.count_ones() as usize) > k {
            continue;
        }
        let mut cov = CoverageState::new();
        let mut seeds = Vec::new();
        for (i, &u) in users.iter().enumerate() {
            if mask & (1 << i) != 0 {
                cov.absorb(weight, candidates.get(u).expect("present"));
                seeds.push(u);
            }
        }
        if cov.value() > best.value {
            best = GreedyResult {
                value: cov.value(),
                seeds,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::UnitWeight;

    fn instance(pairs: &[(u32, &[u32])]) -> InfluenceSets {
        let mut s = InfluenceSets::new();
        for (u, covered) in pairs {
            for &v in *covered {
                s.insert(UserId(*u), UserId(v));
            }
        }
        s
    }

    #[test]
    fn greedy_solves_figure1_window8() {
        // Influence sets at time 8 (Figure 1b).
        let inf = instance(&[
            (1, &[1, 2, 3]),
            (2, &[2]),
            (3, &[1, 3, 4, 5]),
            (4, &[4]),
            (5, &[4, 5]),
        ]);
        let r = greedy_max_coverage(&inf, 2, &UnitWeight);
        // u3 (gain 4) is always picked first; the second pick is a tie
        // between u1 and u2 (both add u2's action), and either choice
        // reaches the optimum value of 5.
        assert_eq!(r.value, 5.0);
        assert!(r.seeds.contains(&UserId(3)));
        assert_eq!(r.seeds.len(), 2);
    }

    #[test]
    fn lazy_greedy_matches_greedy_guarantee() {
        // Greedy and CELF may break ties between equal marginal gains
        // differently (candidate iteration order is not specified), so we
        // compare both against the brute-force optimum rather than against
        // each other.
        let inf = instance(&[
            (1, &[1, 2, 3, 10]),
            (2, &[2, 4]),
            (3, &[1, 3, 4, 5]),
            (4, &[4, 6, 7]),
            (5, &[4, 5, 8]),
            (6, &[9]),
        ]);
        let ratio = 1.0 - 1.0 / std::f64::consts::E;
        for k in 1..=4 {
            let opt = brute_force_best(&inf, k, &UnitWeight).value;
            let g = greedy_max_coverage(&inf, k, &UnitWeight);
            let l = lazy_greedy_max_coverage(&inf, k, &UnitWeight);
            assert!(g.value >= ratio * opt - 1e-9, "k={k}: greedy {}", g.value);
            assert!(l.value >= ratio * opt - 1e-9, "k={k}: lazy {}", l.value);
            assert!(g.value <= opt + 1e-9 && l.value <= opt + 1e-9, "k={k}");
        }
    }

    #[test]
    fn greedy_stops_when_no_gain() {
        let inf = instance(&[(1, &[1, 2]), (2, &[1, 2]), (3, &[2])]);
        let r = greedy_max_coverage(&inf, 3, &UnitWeight);
        assert_eq!(r.value, 2.0);
        assert_eq!(r.seeds.len(), 1);
    }

    #[test]
    fn brute_force_finds_optimum_greedy_misses() {
        // Classic instance where greedy is suboptimal for k=2:
        // s1 covers {1..4}, s2 covers {1,2,5}, s3 covers {3,4,6}.
        // Greedy picks s1 first (4), then gains 2 -> 6; OPT is s2+s3 = 6... make
        // it strictly better: s2 covers {1,2,5,7}, s3 covers {3,4,6,8} -> OPT 8.
        let inf = instance(&[(1, &[1, 2, 3, 4, 5]), (2, &[1, 2, 5, 7]), (3, &[3, 4, 6, 8])]);
        let opt = brute_force_best(&inf, 2, &UnitWeight);
        let grd = greedy_max_coverage(&inf, 2, &UnitWeight);
        assert_eq!(opt.value, 8.0);
        assert!(grd.value >= (1.0 - 1.0 / std::f64::consts::E) * opt.value);
        assert!(grd.value <= opt.value);
    }

    #[test]
    fn empty_candidates_yield_empty_result() {
        let inf = InfluenceSets::new();
        let r = greedy_max_coverage(&inf, 3, &UnitWeight);
        assert!(r.seeds.is_empty());
        assert_eq!(r.value, 0.0);
        let r = lazy_greedy_max_coverage(&inf, 3, &UnitWeight);
        assert!(r.seeds.is_empty());
    }

    #[test]
    fn k_zero_selects_nothing() {
        let inf = instance(&[(1, &[1, 2])]);
        assert!(greedy_max_coverage(&inf, 0, &UnitWeight).seeds.is_empty());
        assert!(lazy_greedy_max_coverage(&inf, 0, &UnitWeight).seeds.is_empty());
    }
}
