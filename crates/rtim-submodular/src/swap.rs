//! Swap-based streaming maximum k-coverage.
//!
//! Follows the swapping approaches of Saha & Getoor (SDM 2009, "Blog-Watch")
//! and Ausiello et al. (2012, online maximum k-coverage), which keep exactly
//! one candidate solution of at most `k` sets and, once full, replace an
//! existing set by the arriving one whenever the swap improves the objective
//! the most.  Both cited policies achieve a `1/4` approximation for the
//! cardinality objective; the swap oracle exists here as the `O(k)`-update
//! alternative in the Table-2 ablation (cheaper threshold bookkeeping than
//! the guess-grid oracles, weaker guarantee).
//!
//! Unlike the threshold oracles this one must remember the individual set of
//! every held seed (to re-evaluate the union after a swap).  To keep updates
//! cheap it maintains a multiset of covered items (`counts`) so that
//!
//! * the gain of an arriving set is computed in `O(|X|)`, and
//! * the loss of evicting each held seed (the weight of the items only it
//!   covers and the new set does not re-cover) is computed in a single pass
//!   over the held sets, instead of rebuilding `k` candidate unions.
//!
//! The delta path ([`SsoOracle::process_grow`]) turns the held-seed update
//! into a single count increment instead of a full set difference.

use crate::coverage::CoverageState;
use crate::oracle::{OracleConfig, SsoOracle};
use crate::weights::{DenseWeights, ElementWeight};
use rtim_stream::{InfluenceSet, UserId};
use std::collections::HashMap;

/// The swap-based streaming oracle.
#[derive(Debug, Clone)]
pub struct SwapStreaming {
    config: OracleConfig,
    /// Stored influence set per held seed.
    held: HashMap<UserId, InfluenceSet>,
    /// How many held sets cover each item.
    counts: HashMap<UserId, u32>,
    /// Cached union value of `held`.
    cached_value: f64,
    elements: u64,
}

impl SwapStreaming {
    /// Creates an empty oracle.
    pub fn new(config: OracleConfig) -> Self {
        SwapStreaming {
            config,
            held: HashMap::new(),
            counts: HashMap::new(),
            cached_value: 0.0,
            elements: 0,
        }
    }

    /// Rebuilds an oracle from persisted state (see [`crate::state`]).  The
    /// covered-item multiset is not persisted — it is derived from the held
    /// sets here, so the two can never disagree.
    pub(crate) fn from_state(config: OracleConfig, state: crate::state::SwapState) -> Self {
        let mut counts: HashMap<UserId, u32> = HashMap::new();
        for (_, set) in &state.held {
            for v in set.iter() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        SwapStreaming {
            config,
            held: state.held.into_iter().collect(),
            counts,
            cached_value: state.cached_value,
            elements: state.elements,
        }
    }

    /// Registers a single item into the coverage multiset, returning the
    /// value gained (its weight if previously uncovered).
    fn count_insert_one(&mut self, v: UserId, weights: &DenseWeights) -> f64 {
        let c = self.counts.entry(v).or_insert(0);
        let gain = if *c == 0 { weights.weight(v) } else { 0.0 };
        *c += 1;
        gain
    }

    /// Registers `set` into the coverage multiset, returning the value gained
    /// (weight of items that were previously uncovered).
    fn count_insert(&mut self, set: &InfluenceSet, weights: &DenseWeights) -> f64 {
        let mut gain = 0.0;
        for v in set.iter() {
            gain += self.count_insert_one(v, weights);
        }
        gain
    }

    /// Removes `set` from the coverage multiset, returning the value lost
    /// (weight of items that become uncovered).
    fn count_remove(&mut self, set: &InfluenceSet, weights: &DenseWeights) -> f64 {
        let mut loss = 0.0;
        for v in set.iter() {
            if let Some(c) = self.counts.get_mut(&v) {
                *c -= 1;
                if *c == 0 {
                    self.counts.remove(&v);
                    loss += weights.weight(v);
                }
            }
        }
        loss
    }
}

impl SsoOracle for SwapStreaming {
    fn process(&mut self, key: UserId, set: &InfluenceSet, weights: &DenseWeights) {
        self.elements += 1;
        if let Some(existing) = self.held.get(&key) {
            // Updated influence set of a held seed: keep the union of the old
            // and new copies (the value can only grow).
            let new_items: Vec<UserId> = set.iter().filter(|v| !existing.contains(*v)).collect();
            if new_items.is_empty() {
                return;
            }
            for &v in &new_items {
                self.cached_value += self.count_insert_one(v, weights);
            }
            self.held.get_mut(&key).expect("held").extend(new_items);
            return;
        }
        if self.held.len() < self.config.k {
            self.cached_value += self.count_insert(set, weights);
            self.held.insert(key, set.clone());
            return;
        }
        // Full: find the best single swap using the coverage multiset.
        // Gain of X = weight of X's items nobody covers yet.
        let gain_x: f64 = set
            .iter()
            .filter(|v| !self.counts.contains_key(v))
            .map(|v| weights.weight(v))
            .sum();
        // Loss of evicting y = weight of items only y covers and X does not
        // re-cover.  Ties break toward the smallest y, so the chosen victim
        // never depends on hash-map iteration order — a restored oracle
        // must evict exactly like the one that never stopped.
        let mut best: Option<(UserId, f64)> = None;
        for (&y, y_set) in &self.held {
            let loss_y: f64 = y_set
                .iter()
                .filter(|v| self.counts.get(v) == Some(&1) && !set.contains(*v))
                .map(|v| weights.weight(v))
                .sum();
            let delta = gain_x - loss_y;
            let better = match best {
                None => true,
                Some((by, bd)) => delta > bd || (delta == bd && y < by),
            };
            if better {
                best = Some((y, delta));
            }
        }
        if let Some((y, delta)) = best {
            if delta > 0.0 {
                let y_set = self.held.remove(&y).expect("held seed");
                self.cached_value -= self.count_remove(&y_set, weights);
                self.cached_value += self.count_insert(set, weights);
                self.held.insert(key, set.clone());
                debug_assert!({
                    // The incremental value matches a from-scratch recount.
                    let mut cov = CoverageState::new();
                    for s in self.held.values() {
                        cov.absorb(weights, s);
                    }
                    (cov.value() - self.cached_value).abs() < 1e-6
                });
            }
        }
    }

    fn process_grow(
        &mut self,
        key: UserId,
        added: UserId,
        set: &InfluenceSet,
        weights: &DenseWeights,
    ) {
        if let Some(existing) = self.held.get_mut(&key) {
            // Held seed grew by exactly one item: O(1) update.
            self.elements += 1;
            if existing.insert(added) {
                self.cached_value += self.count_insert_one(added, weights);
            }
            return;
        }
        self.process(key, set, weights);
    }

    fn value(&self) -> f64 {
        self.cached_value
    }

    fn seeds(&self) -> Vec<UserId> {
        // Ascending order: the held set has no meaningful order of its own,
        // and hash-map iteration order must not leak into answers (a
        // restored oracle has to report identical seeds).
        let mut seeds: Vec<UserId> = self.held.keys().copied().collect();
        seeds.sort_unstable();
        seeds
    }

    fn k(&self) -> usize {
        self.config.k
    }

    fn elements_processed(&self) -> u64 {
        self.elements
    }

    fn retained_facts(&self) -> usize {
        self.held.values().map(|s| s.len()).sum()
    }

    fn snapshot_state(&self) -> Option<crate::state::OracleState> {
        use crate::state::{OracleState, SwapState};
        let mut held: Vec<(UserId, InfluenceSet)> = self
            .held
            .iter()
            .map(|(&u, set)| (u, set.clone()))
            .collect();
        held.sort_unstable_by_key(|(u, _)| *u);
        Some(OracleState::Swap(SwapState {
            held,
            cached_value: self.cached_value,
            elements: self.elements,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::UnitWeight;

    const UNIT: DenseWeights<'static> = DenseWeights::Unit;

    fn set(ids: &[u32]) -> InfluenceSet {
        ids.iter().map(|&i| UserId(i)).collect()
    }

    #[test]
    fn fills_then_swaps_for_improvement() {
        let mut s = SwapStreaming::new(OracleConfig::new(2, 0.1));
        s.process(UserId(1), &set(&[1]), &UNIT);
        s.process(UserId(2), &set(&[2]), &UNIT);
        assert_eq!(s.value(), 2.0);
        // A much better set should displace one of the held singletons.
        s.process(UserId(3), &set(&[3, 4, 5, 6]), &UNIT);
        assert!(s.value() >= 5.0);
        assert!(s.seeds().contains(&UserId(3)));
        assert_eq!(s.seeds().len(), 2);
    }

    #[test]
    fn does_not_swap_when_no_improvement() {
        let mut s = SwapStreaming::new(OracleConfig::new(2, 0.1));
        s.process(UserId(1), &set(&[1, 2, 3]), &UNIT);
        s.process(UserId(2), &set(&[4, 5, 6]), &UNIT);
        let before = s.value();
        s.process(UserId(3), &set(&[1, 4]), &UNIT);
        assert_eq!(s.value(), before);
        assert!(!s.seeds().contains(&UserId(3)));
    }

    #[test]
    fn updated_seed_keeps_growing() {
        let mut s = SwapStreaming::new(OracleConfig::new(1, 0.1));
        s.process(UserId(9), &set(&[1]), &UNIT);
        s.process(UserId(9), &set(&[1, 2, 3]), &UNIT);
        assert_eq!(s.value(), 3.0);
        assert_eq!(s.seeds(), vec![UserId(9)]);
        assert_eq!(s.retained_facts(), 3);
    }

    /// Equal-delta swaps evict the smallest held seed — never whichever
    /// seed a hash map happens to iterate first (a restored oracle must
    /// evict exactly like the original).
    #[test]
    fn tied_swaps_evict_the_smallest_seed_deterministically() {
        let mut s = SwapStreaming::new(OracleConfig::new(2, 0.1));
        s.process(UserId(9), &set(&[1]), &UNIT);
        s.process(UserId(4), &set(&[2]), &UNIT);
        // Gain 2, loss 1 for either victim: a tie. u4 must be evicted.
        s.process(UserId(7), &set(&[3, 4]), &UNIT);
        assert_eq!(s.seeds(), vec![UserId(7), UserId(9)]);
        assert_eq!(s.value(), 3.0);
    }

    #[test]
    fn grow_updates_held_seed_in_place() {
        let mut s = SwapStreaming::new(OracleConfig::new(1, 0.1));
        s.process(UserId(9), &set(&[1]), &UNIT);
        s.process_grow(UserId(9), UserId(2), &set(&[1, 2]), &UNIT);
        assert_eq!(s.value(), 2.0);
        assert_eq!(s.retained_facts(), 2);
        // Growing an unheld key falls back to the swap logic.
        s.process_grow(UserId(5), UserId(7), &set(&[6, 7, 8]), &UNIT);
        assert_eq!(s.value(), 3.0);
        assert_eq!(s.seeds(), vec![UserId(5)]);
    }

    #[test]
    fn value_never_decreases() {
        let mut s = SwapStreaming::new(OracleConfig::new(2, 0.1));
        let mut last = 0.0;
        for i in 0..30u32 {
            s.process(UserId(i % 6), &set(&[i % 11, (i * 3) % 11]), &UNIT);
            assert!(s.value() + 1e-9 >= last, "value decreased at step {i}");
            last = s.value();
        }
    }

    #[test]
    fn swap_considers_recovered_items() {
        // Held: y1 = {1,2}, y2 = {3}.  Arriving X = {1,2,4}: evicting y1
        // loses nothing that X does not re-cover, so the swap is applied and
        // the value rises from 3 to 4.
        let mut s = SwapStreaming::new(OracleConfig::new(2, 0.1));
        s.process(UserId(1), &set(&[1, 2]), &UNIT);
        s.process(UserId(2), &set(&[3]), &UNIT);
        s.process(UserId(3), &set(&[1, 2, 4]), &UNIT);
        assert_eq!(s.value(), 4.0);
        assert!(s.seeds().contains(&UserId(3)));
        assert!(s.seeds().contains(&UserId(2)));
    }

    #[test]
    fn cached_value_matches_recount_after_many_swaps() {
        let mut s = SwapStreaming::new(OracleConfig::new(3, 0.1));
        for i in 0..100u32 {
            let items: Vec<u32> = (0..(1 + i % 7)).map(|j| (i * 5 + j * 3) % 40).collect();
            s.process(
                UserId(i % 15),
                &items.iter().map(|&v| UserId(v)).collect(),
                &UNIT,
            );
        }
        let mut cov = CoverageState::new();
        for held in s.held.values() {
            cov.absorb(&UnitWeight, held);
        }
        assert!((cov.value() - s.value()).abs() < 1e-9);
        assert!(s.seeds().len() <= 3);
    }
}
