//! Durable snapshots of the streaming oracles.
//!
//! A checkpoint's oracle is the deepest state in the engine: guess-grid
//! instances with their coverage bitmaps, incrementally accumulated float
//! values, frozen fallback solutions.  [`OracleState`] is the serializable
//! form of any [`SsoOracle`](crate::SsoOracle) shipped by this crate,
//! extracted with [`SsoOracle::snapshot_state`](crate::SsoOracle::snapshot_state)
//! and rebuilt with [`OracleState::restore`].
//!
//! Two properties matter more than compactness:
//!
//! * **Bit-exact floats.**  Cached values (`max_single`, coverage values,
//!   the swap oracle's `cached_value`) were accumulated incrementally in
//!   arrival order; recomputing them from the restored sets could differ in
//!   the last ulp and break the restored-equals-uninterrupted guarantee.
//!   They are persisted as IEEE-754 bit patterns instead.
//! * **Typed, panic-free decoding.**  The byte layer is
//!   [`rtim_stream::persist::state`]: every length is validated against the
//!   input before allocation, every violation is a [`StateError`].
//!
//! Derived state is *not* persisted: the swap oracle's covered-item
//! multiset is recomputed from the held sets on restore, so the two can
//! never disagree.

use crate::coverage::CoverageState;
use crate::oracle::{OracleConfig, SsoOracle};
use crate::sieve::SieveStreaming;
use crate::swap::SwapStreaming;
use crate::threshold_stream::ThresholdStream;
use rtim_stream::persist::state::{
    decode_influence_set, encode_influence_set, ByteReader, StateError,
};
use rtim_stream::{InfluenceSet, UserId};

/// Serialized form of a coverage state: the union bitmap plus the cached
/// (incrementally accumulated) objective value.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageSnapshot {
    /// The union bitmap (bit `i` ⇔ dense user `i` covered).
    pub words: Vec<u64>,
    /// The cached objective value `f(I(S))`, preserved bit-exactly.
    pub value: f64,
}

impl CoverageSnapshot {
    /// Captures a coverage state.
    pub fn of(coverage: &CoverageState) -> Self {
        CoverageSnapshot {
            words: coverage.words().to_vec(),
            value: coverage.value(),
        }
    }

    /// Rebuilds the coverage state (the covered count is recomputed by
    /// popcount; the value is restored verbatim).
    pub fn restore(self) -> CoverageState {
        CoverageState::from_snapshot(self.words, self.value)
    }
}

/// One persisted guess-grid instance (SieveStreaming / ThresholdStream).
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceState {
    /// Exponent `j` of the guess `(1+β)^j` (the grid key).
    pub exponent: i64,
    /// The instance parameter: SieveStreaming's guess `v`, or
    /// ThresholdStream's fixed admission threshold `v / 2k` — whichever the
    /// owning oracle derived from the guess, preserved bit-exactly.
    pub parameter: f64,
    /// Selected seeds in admission order.
    pub seeds: Vec<UserId>,
    /// The instance's union coverage.
    pub coverage: CoverageSnapshot,
}

/// Serialized [`SieveStreaming`] state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SieveState {
    /// Largest single-element value `m` observed so far.
    pub max_single: f64,
    /// Best single element (fallback solution).
    pub best_single: Option<(UserId, f64)>,
    /// Best solution frozen from instances discarded by grid refreshes —
    /// the monotonicity fallback the SIC analysis relies on.
    pub frozen: Option<(Vec<UserId>, f64)>,
    /// Live instances, ascending by exponent.
    pub instances: Vec<InstanceState>,
    /// Incrementally maintained singleton values, ascending by user
    /// (empty under the cardinality objective).
    pub singles: Vec<(UserId, f64)>,
    /// Elements processed (instrumentation).
    pub elements: u64,
}

/// Serialized [`ThresholdStream`] state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ThresholdState {
    /// Largest single-element value `m` observed so far.
    pub max_single: f64,
    /// Best single element (fallback solution).
    pub best_single: Option<(UserId, f64)>,
    /// Live instances, ascending by exponent.
    pub instances: Vec<InstanceState>,
    /// Incrementally maintained singleton values, ascending by user.
    pub singles: Vec<(UserId, f64)>,
    /// Elements processed (instrumentation).
    pub elements: u64,
}

/// Serialized [`SwapStreaming`] state.
///
/// The covered-item multiset is deliberately absent: it is derivable from
/// `held` and recomputed on restore.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SwapState {
    /// Held seeds with their stored influence sets, ascending by user.
    pub held: Vec<(UserId, InfluenceSet)>,
    /// The cached union value, preserved bit-exactly.
    pub cached_value: f64,
    /// Elements processed (instrumentation).
    pub elements: u64,
}

/// Serializable state of any oracle shipped by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleState {
    /// A [`SieveStreaming`] oracle.
    Sieve(SieveState),
    /// A [`ThresholdStream`] oracle.
    Threshold(ThresholdState),
    /// A [`SwapStreaming`] oracle.
    Swap(SwapState),
}

/// Wire tags of the [`OracleState`] variants.
const TAG_SIEVE: u8 = 0;
const TAG_THRESHOLD: u8 = 1;
const TAG_SWAP: u8 = 2;

impl OracleState {
    /// Rebuilds a live oracle from this state under the given configuration
    /// (the same `k`/`β` the snapshotted oracle ran with — the checkpoint
    /// layer passes the engine's [`OracleConfig`] through).
    pub fn restore(self, config: OracleConfig) -> Box<dyn SsoOracle> {
        match self {
            OracleState::Sieve(s) => Box::new(SieveStreaming::from_state(config, s)),
            OracleState::Threshold(s) => Box::new(ThresholdStream::from_state(config, s)),
            OracleState::Swap(s) => Box::new(SwapStreaming::from_state(config, s)),
        }
    }

    /// Appends the binary encoding of this state to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            OracleState::Sieve(s) => {
                out.push(TAG_SIEVE);
                put_f64(out, s.max_single);
                put_opt_single(out, &s.best_single);
                match &s.frozen {
                    None => out.push(0),
                    Some((seeds, value)) => {
                        out.push(1);
                        put_users(out, seeds);
                        put_f64(out, *value);
                    }
                }
                put_instances(out, &s.instances);
                put_singles(out, &s.singles);
                put_u64(out, s.elements);
            }
            OracleState::Threshold(s) => {
                out.push(TAG_THRESHOLD);
                put_f64(out, s.max_single);
                put_opt_single(out, &s.best_single);
                put_instances(out, &s.instances);
                put_singles(out, &s.singles);
                put_u64(out, s.elements);
            }
            OracleState::Swap(s) => {
                out.push(TAG_SWAP);
                put_u32(out, s.held.len() as u32);
                for (user, set) in &s.held {
                    put_u32(out, user.0);
                    encode_influence_set(set, out);
                }
                put_f64(out, s.cached_value);
                put_u64(out, s.elements);
            }
        }
    }

    /// Decodes one oracle state.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<OracleState, StateError> {
        match r.u8()? {
            TAG_SIEVE => {
                let max_single = r.f64()?;
                let best_single = read_opt_single(r)?;
                let frozen = match r.u8()? {
                    0 => None,
                    1 => {
                        let seeds = read_users(r)?;
                        let value = r.f64()?;
                        Some((seeds, value))
                    }
                    other => {
                        return Err(StateError::Corrupt(format!(
                            "bad frozen-solution flag {other}"
                        )))
                    }
                };
                let instances = read_instances(r)?;
                let singles = read_singles(r)?;
                let elements = r.u64()?;
                Ok(OracleState::Sieve(SieveState {
                    max_single,
                    best_single,
                    frozen,
                    instances,
                    singles,
                    elements,
                }))
            }
            TAG_THRESHOLD => {
                let max_single = r.f64()?;
                let best_single = read_opt_single(r)?;
                let instances = read_instances(r)?;
                let singles = read_singles(r)?;
                let elements = r.u64()?;
                Ok(OracleState::Threshold(ThresholdState {
                    max_single,
                    best_single,
                    instances,
                    singles,
                    elements,
                }))
            }
            TAG_SWAP => {
                let declared = r.u32()? as u64;
                // A held entry costs at least 4 (user) + 5 (empty set) bytes.
                let count = r.array_len(declared, 9)?;
                let mut held = Vec::with_capacity(count);
                let mut last: Option<UserId> = None;
                for _ in 0..count {
                    let user = r.user()?;
                    if let Some(prev) = last {
                        if user <= prev {
                            return Err(StateError::Corrupt(format!(
                                "held seeds must be strictly ascending: {user} after {prev}"
                            )));
                        }
                    }
                    last = Some(user);
                    held.push((user, decode_influence_set(r)?));
                }
                let cached_value = r.f64()?;
                let elements = r.u64()?;
                Ok(OracleState::Swap(SwapState {
                    held,
                    cached_value,
                    elements,
                }))
            }
            other => Err(StateError::Corrupt(format!(
                "unknown oracle-state tag {other}"
            ))),
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_users(out: &mut Vec<u8>, users: &[UserId]) {
    put_u32(out, users.len() as u32);
    for u in users {
        put_u32(out, u.0);
    }
}

fn put_opt_single(out: &mut Vec<u8>, single: &Option<(UserId, f64)>) {
    match single {
        None => out.push(0),
        Some((u, v)) => {
            out.push(1);
            put_u32(out, u.0);
            put_f64(out, *v);
        }
    }
}

fn put_instances(out: &mut Vec<u8>, instances: &[InstanceState]) {
    put_u32(out, instances.len() as u32);
    for inst in instances {
        put_u64(out, inst.exponent as u64);
        put_f64(out, inst.parameter);
        put_users(out, &inst.seeds);
        put_u32(out, inst.coverage.words.len() as u32);
        for w in &inst.coverage.words {
            put_u64(out, *w);
        }
        put_f64(out, inst.coverage.value);
    }
}

fn put_singles(out: &mut Vec<u8>, singles: &[(UserId, f64)]) {
    put_u32(out, singles.len() as u32);
    for (u, v) in singles {
        put_u32(out, u.0);
        put_f64(out, *v);
    }
}

fn read_users(r: &mut ByteReader<'_>) -> Result<Vec<UserId>, StateError> {
    let declared = r.u32()? as u64;
    let count = r.array_len(declared, 4)?;
    let mut users = Vec::with_capacity(count);
    for _ in 0..count {
        users.push(r.user()?);
    }
    Ok(users)
}

fn read_opt_single(r: &mut ByteReader<'_>) -> Result<Option<(UserId, f64)>, StateError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let u = r.user()?;
            let v = r.f64()?;
            Ok(Some((u, v)))
        }
        other => Err(StateError::Corrupt(format!(
            "bad best-single flag {other}"
        ))),
    }
}

fn read_instances(r: &mut ByteReader<'_>) -> Result<Vec<InstanceState>, StateError> {
    let declared = r.u32()? as u64;
    // An instance costs at least 8 + 8 + 4 + 4 + 8 bytes.
    let count = r.array_len(declared, 32)?;
    let mut instances = Vec::with_capacity(count);
    let mut last: Option<i64> = None;
    for _ in 0..count {
        let exponent = r.i64()?;
        if let Some(prev) = last {
            if exponent <= prev {
                return Err(StateError::Corrupt(format!(
                    "instance exponents must be strictly ascending: {exponent} after {prev}"
                )));
            }
        }
        last = Some(exponent);
        let parameter = r.f64()?;
        let seeds = read_users(r)?;
        let word_declared = r.u32()? as u64;
        let word_count = r.array_len(word_declared, 8)?;
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            words.push(r.u64()?);
        }
        let value = r.f64()?;
        instances.push(InstanceState {
            exponent,
            parameter,
            seeds,
            coverage: CoverageSnapshot { words, value },
        });
    }
    Ok(instances)
}

fn read_singles(r: &mut ByteReader<'_>) -> Result<Vec<(UserId, f64)>, StateError> {
    let declared = r.u32()? as u64;
    let count = r.array_len(declared, 12)?;
    let mut singles = Vec::with_capacity(count);
    let mut last: Option<UserId> = None;
    for _ in 0..count {
        let u = r.user()?;
        if let Some(prev) = last {
            if u <= prev {
                return Err(StateError::Corrupt(format!(
                    "singleton entries must be strictly ascending: {u} after {prev}"
                )));
            }
        }
        last = Some(u);
        singles.push((u, r.f64()?));
    }
    Ok(singles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::DenseWeights;
    use crate::OracleKind;

    const UNIT: DenseWeights<'static> = DenseWeights::Unit;

    fn set(ids: &[u32]) -> InfluenceSet {
        ids.iter().map(|&i| UserId(i)).collect()
    }

    /// Feeds a stream that exercises grid refreshes, frozen fallbacks, seed
    /// growth and swaps, then snapshots, round-trips the bytes and verifies
    /// the restored oracle answers and keeps evolving bit-identically.
    #[test]
    fn every_oracle_kind_round_trips_and_keeps_evolving_identically() {
        let config = OracleConfig::new(2, 0.25);
        let stream: Vec<(u32, Vec<u32>)> = vec![
            (1, vec![1]),
            (2, vec![2, 3]),
            (1, vec![1, 4]),
            (3, vec![5, 6, 7, 8]),
            (4, vec![1, 2]),
            (1, vec![1, 4, 9]),
            (5, vec![10, 11, 12, 13, 14, 15]),
        ];
        let tail: Vec<(u32, Vec<u32>)> = vec![
            (6, vec![16, 17]),
            (3, vec![5, 6, 7, 8, 18]),
            (7, vec![1, 19, 20, 21, 22, 23, 24]),
        ];
        for kind in OracleKind::all() {
            let mut original = kind.build(config);
            for (u, cover) in &stream {
                original.process(UserId(*u), &set(cover), &UNIT);
            }
            let state = original.snapshot_state().expect("built-in oracles snapshot");
            let mut bytes = Vec::new();
            state.encode(&mut bytes);
            let mut r = ByteReader::new(&bytes);
            let decoded = OracleState::decode(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(decoded, state, "{}", kind.name());
            let mut restored = decoded.restore(config);
            assert_eq!(restored.value().to_bits(), original.value().to_bits());
            assert_eq!(restored.seeds(), original.seeds());
            assert_eq!(restored.elements_processed(), original.elements_processed());
            assert_eq!(restored.retained_facts(), original.retained_facts());
            // The restored oracle must keep evolving identically.
            for (u, cover) in &tail {
                original.process(UserId(*u), &set(cover), &UNIT);
                restored.process(UserId(*u), &set(cover), &UNIT);
                assert_eq!(
                    restored.value().to_bits(),
                    original.value().to_bits(),
                    "{} diverged after restore",
                    kind.name()
                );
                assert_eq!(restored.seeds(), original.seeds());
            }
        }
    }

    #[test]
    fn weighted_singles_survive_a_round_trip() {
        let table = [0.0, 2.0, 3.0, 5.0, 7.0];
        let w = DenseWeights::Table(&table);
        let config = OracleConfig::new(1, 0.2);
        let mut original = SieveStreaming::new(config);
        original.process(UserId(1), &set(&[1]), &w);
        original.process_grow(UserId(1), UserId(3), &set(&[1, 3]), &w);
        let state = original.snapshot_state().unwrap();
        let mut bytes = Vec::new();
        state.encode(&mut bytes);
        let mut r = ByteReader::new(&bytes);
        let mut restored = OracleState::decode(&mut r).unwrap().restore(config);
        assert_eq!(restored.value(), 7.0);
        // The incrementally maintained singleton cache came along: the next
        // delta advances by exactly w(4).
        restored.process_grow(UserId(1), UserId(4), &set(&[1, 3, 4]), &w);
        original.process_grow(UserId(1), UserId(4), &set(&[1, 3, 4]), &w);
        assert_eq!(restored.value().to_bits(), original.value().to_bits());
        assert_eq!(restored.value(), 14.0);
    }

    #[test]
    fn decode_rejects_structural_corruption() {
        // Unknown tag.
        assert!(matches!(
            OracleState::decode(&mut ByteReader::new(&[9])),
            Err(StateError::Corrupt(_))
        ));
        // Truncation anywhere inside a real encoding is a typed error.
        let mut oracle = SieveStreaming::new(OracleConfig::new(2, 0.2));
        for i in 0..20u32 {
            oracle.process(UserId(i % 5), &set(&[i, i + 1]), &UNIT);
        }
        let mut bytes = Vec::new();
        oracle.snapshot_state().unwrap().encode(&mut bytes);
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let result = OracleState::decode(&mut r);
            assert!(result.is_err(), "cut {cut} decoded");
        }
    }

    #[test]
    fn decode_rejects_unsorted_entries() {
        // A swap state with descending held users.
        let mut bytes = vec![TAG_SWAP];
        put_u32(&mut bytes, 2);
        put_u32(&mut bytes, 5);
        encode_influence_set(&set(&[1]), &mut bytes);
        put_u32(&mut bytes, 3);
        encode_influence_set(&set(&[2]), &mut bytes);
        put_f64(&mut bytes, 2.0);
        put_u64(&mut bytes, 2);
        assert!(matches!(
            OracleState::decode(&mut ByteReader::new(&bytes)),
            Err(StateError::Corrupt(_))
        ));
    }
}
