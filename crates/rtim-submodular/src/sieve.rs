//! SieveStreaming (Badanidiyuru, Mirzasoleiman, Karbasi, Krause — KDD 2014).
//!
//! The paper's default checkpoint oracle (§4.3).  SieveStreaming maintains a
//! geometric grid of guesses `Ω = {(1+β)^j : m ≤ (1+β)^j ≤ 2·k·m}` for the
//! unknown optimum `OPT`, where `m` is the largest single-element value seen
//! so far.  Each guess `v` runs an independent thresholding instance that
//! admits an arriving element when fewer than `k` seeds are held and the
//! marginal gain is at least `(v/2 − f(S)) / (k − |S|)`.  At query time the
//! best instance is returned; at least one guess is within a `(1+β)` factor
//! of `OPT`, giving a `(1/2 − β)` approximation.
//!
//! ## Handling re-arriving keys (Set-Stream Mapping)
//!
//! The SSM feeds the *updated* influence set of a user whenever it grows.
//! If the user is already a seed of an instance we union the new set into
//! that instance's coverage (equivalent to replacing the stored copy of the
//! element by its newest version — the value can only grow, preserving the
//! oracle monotonicity required by the SIC analysis, Lemma 2/3).  Otherwise
//! the standard admission rule applies.
//!
//! ## The delta path
//!
//! Inside a checkpoint every re-arrival grows the set by **exactly one**
//! user, so [`SsoOracle::process_grow`] turns the existing-seed branch into
//! a single `absorb_one` bit-set per instance (O(1) amortized instead of
//! O(|I(u)|)) and maintains the element's singleton value incrementally; the
//! admission branch keeps the word-level early-exit threshold test.

use crate::coverage::CoverageState;
use crate::oracle::{OracleConfig, SsoOracle};
use crate::singles::SingletonValues;
use crate::weights::DenseWeights;
use rtim_stream::{InfluenceSet, UserId};
use std::collections::BTreeMap;

/// One thresholding instance for a particular guess of `OPT`.
#[derive(Debug, Clone)]
struct Instance {
    /// The guess `v = (1+β)^j` of the optimum value.
    opt_guess: f64,
    /// Selected seeds, in admission order.
    seeds: Vec<UserId>,
    /// Membership index over `seeds`: every element's first touch per
    /// instance is a seed test, and a linear `seeds.contains` scan (up to
    /// `k` ids, across `O(log k / β)` instances) dominated the whole
    /// process loop before this index existed.
    seed_set: InfluenceSet,
    /// Union coverage of the seeds' sets with its value.
    coverage: CoverageState,
}

impl Instance {
    fn new(opt_guess: f64) -> Self {
        Instance {
            opt_guess,
            seeds: Vec::new(),
            seed_set: InfluenceSet::new(),
            coverage: CoverageState::new(),
        }
    }
}

/// The SieveStreaming oracle.
///
/// Element weights arrive per call as a [`DenseWeights`] view (`Unit`
/// cardinality or a dense table), so the same implementation serves both
/// objectives without a generic parameter.
#[derive(Debug, Clone)]
pub struct SieveStreaming {
    config: OracleConfig,
    /// Largest single-element value `m = max f({e})` observed so far.
    max_single: f64,
    /// Best single element observed (fallback solution).
    best_single: Option<(UserId, f64)>,
    /// Best solution among instances discarded by grid refreshes.  A guess
    /// that drops below `m` can still hold the currently best coverage, so
    /// its solution is frozen here instead of vanishing — keeping the
    /// reported value monotone (required by the SIC analysis, Lemma 2/3)
    /// without retaining the dead instance's coverage state.
    frozen: Option<(Vec<UserId>, f64)>,
    /// Instances keyed by the exponent `j` of their guess `(1+β)^j`.
    instances: BTreeMap<i64, Instance>,
    /// Incrementally maintained singleton values `f({e})` per key (see
    /// [`crate::singles`]).
    singles: SingletonValues,
    elements: u64,
}

impl SieveStreaming {
    /// Creates an empty oracle.
    pub fn new(config: OracleConfig) -> Self {
        SieveStreaming {
            config,
            max_single: 0.0,
            best_single: None,
            frozen: None,
            instances: BTreeMap::new(),
            singles: SingletonValues::new(),
            elements: 0,
        }
    }

    /// Number of live threshold instances `|Ω|` (instrumentation; the paper
    /// reports this is `O(log k / β)`).
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Rebuilds an oracle from persisted state (see [`crate::state`]).
    pub(crate) fn from_state(config: OracleConfig, state: crate::state::SieveState) -> Self {
        SieveStreaming {
            config,
            max_single: state.max_single,
            best_single: state.best_single,
            frozen: state.frozen,
            instances: state
                .instances
                .into_iter()
                .map(|inst| {
                    (
                        inst.exponent,
                        Instance {
                            opt_guess: inst.parameter,
                            seed_set: inst.seeds.iter().copied().collect(),
                            seeds: inst.seeds,
                            coverage: inst.coverage.restore(),
                        },
                    )
                })
                .collect(),
            singles: SingletonValues::from_entries(state.singles),
            elements: state.elements,
        }
    }

    fn log_base(&self) -> f64 {
        (1.0 + self.config.beta).ln()
    }

    /// Refreshes the instance grid after observing a new maximum single value.
    fn refresh_instances(&mut self) {
        if self.max_single <= 0.0 {
            return;
        }
        let base = self.log_base();
        let lo = (self.max_single.ln() / base).ceil() as i64;
        let hi = ((2.0 * self.config.k as f64 * self.max_single).ln() / base).floor() as i64;
        // Drop instances whose guess is now provably too small (< m),
        // freezing the best of their solutions so the oracle value cannot
        // regress across a refresh.
        let frozen_value = self.frozen.as_ref().map_or(0.0, |(_, v)| *v);
        let mut best_dropped: Option<(Vec<UserId>, f64)> = None;
        for (&j, inst) in &self.instances {
            if j >= lo {
                break;
            }
            let value = inst.coverage.value();
            if value > frozen_value
                && best_dropped.as_ref().is_none_or(|(_, v)| value > *v)
            {
                best_dropped = Some((inst.seeds.clone(), value));
            }
        }
        if best_dropped.is_some() {
            self.frozen = best_dropped;
        }
        self.instances.retain(|&j, _| j >= lo);
        // Lazily create instances for new guesses.
        for j in lo..=hi {
            self.instances
                .entry(j)
                .or_insert_with(|| Instance::new((1.0 + self.config.beta).powi(j as i32)));
        }
    }

    fn best_instance(&self) -> Option<&Instance> {
        self.instances
            .values()
            .max_by(|a, b| a.coverage.value().total_cmp(&b.coverage.value()))
    }

    /// The best feasible value among live instances, the frozen snapshot and
    /// the best single element — **without** cloning any seed vector.  This
    /// is the path `value()` takes; it runs once per checkpoint per slide in
    /// the IC/SIC policy code, so it must stay allocation-free.
    fn best_value(&self) -> f64 {
        let mut best = self.best_single.map_or(0.0, |(_, v)| v);
        if let Some((_, v)) = &self.frozen {
            best = best.max(*v);
        }
        if let Some(inst) = self.best_instance() {
            best = best.max(inst.coverage.value());
        }
        best
    }

    /// The best feasible solution (seeds + value), cloning exactly one seed
    /// vector.  Shared by `seeds()`; `value()` uses [`Self::best_value`]
    /// instead.  Ties prefer instance over frozen over single, matching
    /// `best_value`'s maximum.
    fn best_candidate(&self) -> (f64, Vec<UserId>) {
        let mut best = (0.0, Vec::new());
        if let Some((u, v)) = self.best_single {
            if v > best.0 {
                best = (v, vec![u]);
            }
        }
        if let Some((seeds, v)) = &self.frozen {
            if *v >= best.0 {
                best = (*v, seeds.clone());
            }
        }
        if let Some(inst) = self.best_instance() {
            if inst.coverage.value() >= best.0 {
                best = (inst.coverage.value(), inst.seeds.clone());
            }
        }
        best
    }

    /// Shared body of `process` / `process_grow` (and their `_in` arena
    /// variants).  `added` is `Some` when the set grew by exactly that one
    /// user since `key` was last fed; `arena` is `Some` on the slide-loop
    /// path, where coverage-bitmap growth recycles through the per-worker
    /// [`WordArena`](rtim_stream::WordArena).
    fn process_inner(
        &mut self,
        key: UserId,
        set: &InfluenceSet,
        weights: &DenseWeights,
        added: Option<UserId>,
        mut arena: Option<&mut rtim_stream::WordArena>,
    ) {
        self.elements += 1;
        let single = self.singles.value(key, set, weights, added);
        if single > self.max_single {
            self.max_single = single;
            self.refresh_instances();
        }
        match &self.best_single {
            Some((_, v)) if *v >= single => {}
            _ => self.best_single = Some((key, single)),
        }

        let k = self.config.k;
        for inst in self.instances.values_mut() {
            if inst.seed_set.contains(key) {
                // Updated influence set of an existing seed: refresh in
                // place — O(1) when the single-user delta is known.
                match (added, arena.as_deref_mut()) {
                    (Some(a), Some(arena)) => {
                        inst.coverage.absorb_one_in(weights, a, arena);
                    }
                    (Some(a), None) => {
                        inst.coverage.absorb_one(weights, a);
                    }
                    (None, Some(arena)) => {
                        inst.coverage.absorb_in(weights, set, arena);
                    }
                    (None, None) => {
                        inst.coverage.absorb(weights, set);
                    }
                }
                continue;
            }
            if inst.seeds.len() >= k {
                continue;
            }
            let remaining = (k - inst.seeds.len()) as f64;
            let threshold = (inst.opt_guess / 2.0 - inst.coverage.value()) / remaining;
            if threshold > single {
                // Even the whole element is below the threshold: skip the
                // (more expensive) marginal computation.
                continue;
            }
            let gain = if threshold <= 0.0 {
                inst.coverage.marginal_gain(weights, set)
            } else {
                inst.coverage
                    .marginal_gain_at_least(weights, set, threshold)
            };
            if gain >= threshold && gain > 0.0 {
                match arena.as_deref_mut() {
                    Some(arena) => {
                        inst.coverage.absorb_in(weights, set, arena);
                    }
                    None => {
                        inst.coverage.absorb(weights, set);
                    }
                }
                inst.seeds.push(key);
                inst.seed_set.insert(key);
            }
        }
    }
}

impl SsoOracle for SieveStreaming {
    fn process(&mut self, key: UserId, set: &InfluenceSet, weights: &DenseWeights) {
        self.process_inner(key, set, weights, None, None);
    }

    fn process_grow(
        &mut self,
        key: UserId,
        added: UserId,
        set: &InfluenceSet,
        weights: &DenseWeights,
    ) {
        self.process_inner(key, set, weights, Some(added), None);
    }

    fn process_in(
        &mut self,
        key: UserId,
        set: &InfluenceSet,
        weights: &DenseWeights,
        arena: &mut rtim_stream::WordArena,
    ) {
        self.process_inner(key, set, weights, None, Some(arena));
    }

    fn process_grow_in(
        &mut self,
        key: UserId,
        added: UserId,
        set: &InfluenceSet,
        weights: &DenseWeights,
        arena: &mut rtim_stream::WordArena,
    ) {
        self.process_inner(key, set, weights, Some(added), Some(arena));
    }

    fn value(&self) -> f64 {
        self.best_value()
    }

    fn seeds(&self) -> Vec<UserId> {
        self.best_candidate().1
    }

    fn k(&self) -> usize {
        self.config.k
    }

    fn elements_processed(&self) -> u64 {
        self.elements
    }

    fn retained_facts(&self) -> usize {
        self.instances
            .values()
            .map(|i| i.coverage.covered_count())
            .sum()
    }

    fn snapshot_state(&self) -> Option<crate::state::OracleState> {
        use crate::state::{CoverageSnapshot, InstanceState, OracleState, SieveState};
        Some(OracleState::Sieve(SieveState {
            max_single: self.max_single,
            best_single: self.best_single,
            frozen: self.frozen.clone(),
            instances: self
                .instances
                .iter()
                .map(|(&exponent, inst)| InstanceState {
                    exponent,
                    parameter: inst.opt_guess,
                    seeds: inst.seeds.clone(),
                    coverage: CoverageSnapshot::of(&inst.coverage),
                })
                .collect(),
            singles: self.singles.entries(),
            elements: self.elements,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::brute_force_best;
    use crate::weights::UnitWeight;
    use rtim_stream::InfluenceSets;

    const UNIT: DenseWeights<'static> = DenseWeights::Unit;

    fn set(ids: &[u32]) -> InfluenceSet {
        ids.iter().map(|&i| UserId(i)).collect()
    }

    #[test]
    fn admits_high_value_elements() {
        let mut s = SieveStreaming::new(OracleConfig::new(2, 0.1));
        s.process(UserId(1), &set(&[1, 2, 3]), &UNIT);
        s.process(UserId(2), &set(&[4, 5]), &UNIT);
        s.process(UserId(3), &set(&[1]), &UNIT); // dominated
        assert!(s.value() >= 4.0);
        assert!(s.seeds().len() <= 2);
        assert!(s.instance_count() > 0);
    }

    #[test]
    fn reprocessing_a_seed_grows_its_coverage() {
        let mut s = SieveStreaming::new(OracleConfig::new(1, 0.1));
        s.process(UserId(7), &set(&[1, 2]), &UNIT);
        let before = s.value();
        s.process(UserId(7), &set(&[1, 2, 3, 4]), &UNIT);
        assert!(s.value() >= before);
        assert!(s.value() >= 4.0);
        assert_eq!(s.seeds(), vec![UserId(7)]);
    }

    #[test]
    fn grow_delta_matches_full_reprocess() {
        let mut full = SieveStreaming::new(OracleConfig::new(2, 0.2));
        let mut delta = SieveStreaming::new(OracleConfig::new(2, 0.2));
        // u1's set grows one user at a time; u2 arrives in between.
        let grown: &[&[u32]] = &[&[1], &[1, 2], &[1, 2, 3], &[1, 2, 3, 4]];
        for (i, cover) in grown.iter().enumerate() {
            let s = set(cover);
            full.process(UserId(1), &s, &UNIT);
            if i == 0 {
                delta.process(UserId(1), &s, &UNIT);
            } else {
                delta.process_grow(UserId(1), UserId(cover[i]), &s, &UNIT);
            }
            if i == 1 {
                full.process(UserId(2), &set(&[9, 10]), &UNIT);
                delta.process(UserId(2), &set(&[9, 10]), &UNIT);
            }
            assert_eq!(full.value(), delta.value());
            assert_eq!(full.seeds(), delta.seeds());
        }
    }

    #[test]
    fn weighted_singles_are_maintained_incrementally() {
        let table = [0.0, 2.0, 3.0, 5.0, 7.0];
        let w = DenseWeights::Table(&table);
        let mut s = SieveStreaming::new(OracleConfig::new(1, 0.2));
        s.process(UserId(1), &set(&[1]), &w);
        s.process_grow(UserId(1), UserId(3), &set(&[1, 3]), &w);
        // Singleton value must be 2 + 5 = 7 exactly.
        assert_eq!(s.value(), 7.0);
        s.process_grow(UserId(1), UserId(4), &set(&[1, 3, 4]), &w);
        assert_eq!(s.value(), 14.0);
        assert_eq!(s.seeds(), vec![UserId(1)]);
    }

    #[test]
    fn value_is_monotone_over_the_stream() {
        let mut s = SieveStreaming::new(OracleConfig::new(3, 0.3));
        let mut last = 0.0;
        let elements: Vec<(u32, Vec<u32>)> = vec![
            (1, vec![1, 2]),
            (2, vec![3]),
            (3, vec![1, 4, 5]),
            (4, vec![6, 7, 8, 9]),
            (1, vec![1, 2, 10]),
            (5, vec![2]),
        ];
        for (u, cov) in elements {
            s.process(UserId(u), &cov.iter().map(|&c| UserId(c)).collect(), &UNIT);
            assert!(s.value() + 1e-9 >= last);
            last = s.value();
        }
    }

    #[test]
    fn approximation_ratio_on_figure1_instance() {
        // Influence sets at time 8 from the paper, k = 2, β = 0.3:
        // the paper's worked example (Figure 3) reports value 5 with {u1,u3}.
        let elems: Vec<(u32, Vec<u32>)> = vec![
            (1, vec![1, 2, 3]),
            (2, vec![2]),
            (3, vec![1, 3, 4, 5]),
            (4, vec![4]),
            (5, vec![4, 5]),
        ];
        let mut inf = InfluenceSets::new();
        for (u, cov) in &elems {
            for &v in cov {
                inf.insert(UserId(*u), UserId(v));
            }
        }
        let opt = brute_force_best(&inf, 2, &UnitWeight).value;
        assert_eq!(opt, 5.0);

        let mut s = SieveStreaming::new(OracleConfig::new(2, 0.3));
        for (u, cov) in &elems {
            s.process(UserId(*u), &cov.iter().map(|&c| UserId(c)).collect(), &UNIT);
        }
        assert!(s.value() >= (0.5 - 0.3) * opt);
        // On this easy instance SieveStreaming actually finds the optimum.
        assert_eq!(s.value(), 5.0);
    }

    #[test]
    fn instance_count_is_logarithmic_in_k() {
        let beta = 0.2;
        let mut s = SieveStreaming::new(OracleConfig::new(100, beta));
        for i in 0..200u32 {
            s.process(UserId(i), &set(&[i, i + 1000, i + 2000]), &UNIT);
        }
        let bound = ((2.0 * 100.0f64).ln() / (1.0 + beta).ln()).ceil() as usize + 2;
        assert!(
            s.instance_count() <= bound,
            "instances {} > bound {}",
            s.instance_count(),
            bound
        );
    }

    #[test]
    fn empty_oracle_reports_zero() {
        let s = SieveStreaming::new(OracleConfig::new(5, 0.1));
        assert_eq!(s.value(), 0.0);
        assert!(s.seeds().is_empty());
        assert_eq!(s.retained_facts(), 0);
    }
}
