//! Incremental weighted-coverage state.
//!
//! [`CoverageState`] maintains the union of the influence sets of the
//! currently selected seeds together with its weighted value
//! `f(I(S)) = Σ_{v ∈ ∪ I(u)} w(v)`.  It supports the two operations every
//! algorithm in this workspace needs:
//!
//! * `marginal_gain(set)` — `f(I(S) ∪ set) − f(I(S))` without mutating, and
//! * `absorb(set)` — extend the union with a new seed's influence set.
//!
//! Both are `O(|set|)`.

use crate::weights::ElementWeight;
use rtim_stream::UserId;
use std::collections::HashSet;

/// The union coverage of a seed set together with its weighted value.
#[derive(Debug, Clone, Default)]
pub struct CoverageState {
    covered: HashSet<UserId>,
    value: f64,
}

impl CoverageState {
    /// Empty coverage (no seed selected yet), `f(∅) = 0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current objective value `f(I(S))`.
    #[inline]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Number of covered users `|I(S)|`.
    #[inline]
    pub fn covered_count(&self) -> usize {
        self.covered.len()
    }

    /// `true` if `user` is already covered.
    #[inline]
    pub fn covers(&self, user: UserId) -> bool {
        self.covered.contains(&user)
    }

    /// The covered users.
    pub fn covered(&self) -> &HashSet<UserId> {
        &self.covered
    }

    /// Marginal gain of adding a seed whose influence set is `set`.
    pub fn marginal_gain<'a, W: ElementWeight>(
        &self,
        weight: &W,
        set: impl IntoIterator<Item = &'a UserId>,
    ) -> f64 {
        set.into_iter()
            .filter(|u| !self.covered.contains(u))
            .map(|u| weight.weight(*u))
            .sum()
    }

    /// Marginal gain with an early-exit upper bound: stops summing as soon as
    /// the accumulated gain reaches `target` (useful for threshold tests where
    /// only "≥ target" matters).  Returns the (possibly truncated) gain.
    pub fn marginal_gain_at_least<'a, W: ElementWeight>(
        &self,
        weight: &W,
        set: impl IntoIterator<Item = &'a UserId>,
        target: f64,
    ) -> f64 {
        let mut gain = 0.0;
        for u in set {
            if !self.covered.contains(u) {
                gain += weight.weight(*u);
                if gain >= target {
                    return gain;
                }
            }
        }
        gain
    }

    /// Adds a seed's influence set to the union, returning the realized gain.
    pub fn absorb<'a, W: ElementWeight>(
        &mut self,
        weight: &W,
        set: impl IntoIterator<Item = &'a UserId>,
    ) -> f64 {
        let mut gain = 0.0;
        for &u in set {
            if self.covered.insert(u) {
                gain += weight.weight(u);
            }
        }
        self.value += gain;
        gain
    }

    /// Weighted value of an arbitrary set of users (helper for `f({I(u)})`).
    pub fn set_value<'a, W: ElementWeight>(
        weight: &W,
        set: impl IntoIterator<Item = &'a UserId>,
    ) -> f64 {
        set.into_iter().map(|u| weight.weight(*u)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{MapWeight, UnitWeight};
    use std::collections::HashMap;

    fn users(ids: &[u32]) -> HashSet<UserId> {
        ids.iter().map(|&i| UserId(i)).collect()
    }

    #[test]
    fn absorb_accumulates_union_value() {
        let w = UnitWeight;
        let mut cov = CoverageState::new();
        assert_eq!(cov.absorb(&w, &users(&[1, 2, 3])), 3.0);
        assert_eq!(cov.absorb(&w, &users(&[3, 4])), 1.0);
        assert_eq!(cov.value(), 4.0);
        assert_eq!(cov.covered_count(), 4);
        assert!(cov.covers(UserId(4)));
        assert!(!cov.covers(UserId(9)));
    }

    #[test]
    fn marginal_gain_matches_absorb() {
        let w = UnitWeight;
        let mut cov = CoverageState::new();
        cov.absorb(&w, &users(&[1, 2]));
        let s = users(&[2, 3, 4]);
        let predicted = cov.marginal_gain(&w, &s);
        let realized = cov.absorb(&w, &s);
        assert_eq!(predicted, realized);
        assert_eq!(predicted, 2.0);
    }

    #[test]
    fn early_exit_gain_stops_at_target() {
        let w = UnitWeight;
        let cov = CoverageState::new();
        let s = users(&[1, 2, 3, 4, 5]);
        let g = cov.marginal_gain_at_least(&w, &s, 2.0);
        assert!(g >= 2.0);
    }

    #[test]
    fn weighted_coverage_uses_weights() {
        let mut table = HashMap::new();
        table.insert(UserId(1), 5.0);
        let w = MapWeight::new(table, 1.0);
        let mut cov = CoverageState::new();
        assert_eq!(cov.absorb(&w, &users(&[1, 2])), 6.0);
        assert_eq!(CoverageState::set_value(&w, &users(&[1])), 5.0);
    }

    #[test]
    fn submodularity_of_marginals() {
        // Marginal gain wrt. a superset is never larger (diminishing returns).
        let w = UnitWeight;
        let mut small = CoverageState::new();
        small.absorb(&w, &users(&[1]));
        let mut big = small.clone();
        big.absorb(&w, &users(&[2, 3]));
        let x = users(&[2, 5, 6]);
        assert!(big.marginal_gain(&w, &x) <= small.marginal_gain(&w, &x));
    }
}
