//! Incremental weighted-coverage state on a growable bitmap.
//!
//! [`CoverageState`] maintains the union of the influence sets of the
//! currently selected seeds together with its weighted value
//! `f(I(S)) = Σ_{v ∈ ∪ I(u)} w(v)`.  It supports the operations every
//! algorithm in this workspace needs:
//!
//! * `marginal_gain(set)` — `f(I(S) ∪ set) − f(I(S))` without mutating,
//! * `absorb(set)` — extend the union with a new seed's influence set, and
//! * `absorb_one(user)` — extend the union by a single user (the delta-aware
//!   SSM path, where an influence set grows by exactly one user per action).
//!
//! The union is a growable `Vec<u64>` bitmap indexed by (interned) user id.
//! When the arriving set is itself in bitmap form, gains and unions run
//! word-at-a-time: `new = set_word & !covered_word`, then `popcount(new)`
//! for the cardinality objective ([`ElementWeight::is_unit`]) or a per-bit
//! weight lookup otherwise.  Small sets (the common case — cascades are
//! shallow) take a per-element path over their sorted slice.
//!
//! Because iteration over both representations is ascending by id, weighted
//! accumulation order is deterministic — part of the bit-identical
//! sequential/sharded execution contract.
//!
//! The pre-bitmap `HashSet<UserId>` implementation is retained as
//! [`reference::HashCoverageState`]: it is the baseline the `coverage_ops`
//! microbench compares against and the reference model of the property
//! tests.

use crate::weights::ElementWeight;
use rtim_stream::{
    absorb_count, and_not_popcount, and_not_popcount_at_least, popcount_words, InfluenceSet,
    SetView, UserId, WordArena,
};

/// The union coverage of a seed set together with its weighted value.
#[derive(Debug, Clone, Default)]
pub struct CoverageState {
    /// Bit `i` set ⇔ `UserId(i)` covered.
    words: Vec<u64>,
    /// Population count of `words`.
    covered: usize,
    /// Cached objective value `f(I(S))`.
    value: f64,
}

impl CoverageState {
    /// Empty coverage (no seed selected yet), `f(∅) = 0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current objective value `f(I(S))`.
    #[inline]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Number of covered users `|I(S)|`.
    #[inline]
    pub fn covered_count(&self) -> usize {
        self.covered
    }

    /// `true` if `user` is already covered.
    #[inline]
    pub fn covers(&self, user: UserId) -> bool {
        let i = user.index();
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Iterates the covered users in ascending id order.
    pub fn covered(&self) -> impl Iterator<Item = UserId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(UserId((w * 64 + b) as u32))
            })
        })
    }

    /// Marginal gain of adding a seed whose influence set is `set`.
    ///
    /// The bitmap arm splits at the covered/set common prefix so both loops
    /// index directly (no per-word `get().unwrap_or(0)` bounds check); the
    /// unit-weight prefix runs the unrolled
    /// [`and_not_popcount`]/[`popcount_words`] kernels, summing integral
    /// popcounts and converting to `f64` once (bit-identical — unit gains
    /// are exact integers).  Weighted accumulation keeps the scalar
    /// per-word order, part of the bit-identity contract.
    pub fn marginal_gain<W: ElementWeight>(&self, weight: &W, set: &InfluenceSet) -> f64 {
        match set.view() {
            SetView::Small(users) => {
                let mut gain = 0.0;
                for &u in users {
                    if !self.covers(u) {
                        gain += weight.weight(u);
                    }
                }
                gain
            }
            SetView::Bits(words) => {
                let n = words.len().min(self.words.len());
                if weight.is_unit() {
                    let covered_prefix = and_not_popcount(&words[..n], &self.words[..n]);
                    (covered_prefix + popcount_words(&words[n..])) as f64
                } else {
                    let mut gain = 0.0;
                    for (i, (&w, &c)) in words[..n].iter().zip(&self.words[..n]).enumerate() {
                        let new = w & !c;
                        if new != 0 {
                            gain += weigh_bits(weight, i, new);
                        }
                    }
                    for (i, &new) in words.iter().enumerate().skip(n) {
                        if new != 0 {
                            gain += weigh_bits(weight, i, new);
                        }
                    }
                    gain
                }
            }
        }
    }

    /// Marginal gain with an early-exit upper bound: stops summing as soon as
    /// the accumulated gain reaches `target` (useful for threshold tests where
    /// only "≥ target" matters).  Returns the (possibly truncated) gain.
    ///
    /// The unit-weight bitmap arm exits at 4-word-block granularity (the
    /// unrolled [`and_not_popcount_at_least`] kernel), so the truncated
    /// return value may differ from a per-word exit — callers only use it
    /// in `gain >= target` / `gain > 0` predicates, both invariant under
    /// the exit point (see the kernel docs).  The weighted arm keeps the
    /// original per-word exit and accumulation order.
    pub fn marginal_gain_at_least<W: ElementWeight>(
        &self,
        weight: &W,
        set: &InfluenceSet,
        target: f64,
    ) -> f64 {
        let mut gain = 0.0;
        match set.view() {
            SetView::Small(users) => {
                for &u in users {
                    if !self.covers(u) {
                        gain += weight.weight(u);
                        if gain >= target {
                            return gain;
                        }
                    }
                }
            }
            SetView::Bits(words) => {
                let n = words.len().min(self.words.len());
                if weight.is_unit() {
                    gain = and_not_popcount_at_least(&words[..n], &self.words[..n], target) as f64;
                    if gain >= target {
                        return gain;
                    }
                    for &new in &words[n..] {
                        if new == 0 {
                            continue;
                        }
                        gain += new.count_ones() as f64;
                        if gain >= target {
                            return gain;
                        }
                    }
                } else {
                    for (i, (&w, &c)) in words[..n].iter().zip(&self.words[..n]).enumerate() {
                        let new = w & !c;
                        if new == 0 {
                            continue;
                        }
                        gain += weigh_bits(weight, i, new);
                        if gain >= target {
                            return gain;
                        }
                    }
                    for (i, &new) in words.iter().enumerate().skip(n) {
                        if new == 0 {
                            continue;
                        }
                        gain += weigh_bits(weight, i, new);
                        if gain >= target {
                            return gain;
                        }
                    }
                }
            }
        }
        gain
    }

    /// Adds a seed's influence set to the union, returning the realized gain.
    pub fn absorb<W: ElementWeight>(&mut self, weight: &W, set: &InfluenceSet) -> f64 {
        self.absorb_impl(weight, set, None)
    }

    /// [`Self::absorb`] with bitmap growth routed through a [`WordArena`]
    /// (the slide-loop path; content-identical, only the backing-store
    /// provenance differs).
    pub fn absorb_in<W: ElementWeight>(
        &mut self,
        weight: &W,
        set: &InfluenceSet,
        arena: &mut WordArena,
    ) -> f64 {
        self.absorb_impl(weight, set, Some(arena))
    }

    fn absorb_impl<W: ElementWeight>(
        &mut self,
        weight: &W,
        set: &InfluenceSet,
        mut arena: Option<&mut WordArena>,
    ) -> f64 {
        let mut gain = 0.0;
        match set.view() {
            SetView::Small(users) => {
                for &u in users {
                    gain += self.absorb_bit(weight, u, arena.as_deref_mut());
                }
            }
            SetView::Bits(words) => {
                self.grow_words(words.len(), arena);
                if weight.is_unit() {
                    let newly = absorb_count(words, &mut self.words[..words.len()]);
                    self.covered += newly;
                    gain = newly as f64;
                } else {
                    for (i, &sw) in words.iter().enumerate() {
                        let new = sw & !self.words[i];
                        if new == 0 {
                            continue;
                        }
                        self.words[i] |= new;
                        self.covered += new.count_ones() as usize;
                        gain += weigh_bits(weight, i, new);
                    }
                }
            }
        }
        self.value += gain;
        gain
    }

    /// Adds a single user to the union, returning the realized gain (`0` if
    /// already covered).  This is the O(1) path the delta-aware set-stream
    /// mapping uses when an existing seed's influence set grows by one user.
    pub fn absorb_one<W: ElementWeight>(&mut self, weight: &W, user: UserId) -> f64 {
        let gain = self.absorb_bit(weight, user, None);
        self.value += gain;
        gain
    }

    /// [`Self::absorb_one`] with bitmap growth routed through a
    /// [`WordArena`].
    pub fn absorb_one_in<W: ElementWeight>(
        &mut self,
        weight: &W,
        user: UserId,
        arena: &mut WordArena,
    ) -> f64 {
        let gain = self.absorb_bit(weight, user, Some(arena));
        self.value += gain;
        gain
    }

    /// Zero-extends the bitmap to at least `words` words, recycling the old
    /// backing store when an arena is available.
    #[inline]
    fn grow_words(&mut self, words: usize, arena: Option<&mut WordArena>) {
        if self.words.len() >= words {
            return;
        }
        match arena {
            Some(a) => a.grow_zeroed(&mut self.words, words),
            None => self.words.resize(words, 0),
        }
    }

    /// Sets the bit of `user`, updating the count, and returns the weight
    /// gained (without touching `value` — callers accumulate it).
    #[inline]
    fn absorb_bit<W: ElementWeight>(
        &mut self,
        weight: &W,
        user: UserId,
        arena: Option<&mut WordArena>,
    ) -> f64 {
        let i = user.index();
        let (w, bit) = (i / 64, 1u64 << (i % 64));
        if self.words.len() <= w {
            self.grow_words(w + 1, arena);
        }
        if self.words[w] & bit != 0 {
            0.0
        } else {
            self.words[w] |= bit;
            self.covered += 1;
            weight.weight(user)
        }
    }

    /// The union bitmap words (snapshot access for the state codec).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a coverage state from a persisted snapshot: the covered
    /// count is recomputed from the bitmap, while the objective value is
    /// restored verbatim — it was accumulated incrementally in arrival
    /// order, so recomputing it could differ in the last ulp and break the
    /// restored-equals-uninterrupted bit-identity guarantee.
    pub fn from_snapshot(words: Vec<u64>, value: f64) -> Self {
        let covered = popcount_words(&words);
        CoverageState {
            words,
            covered,
            value,
        }
    }

    /// Weighted value of an arbitrary set of users (helper for `f({I(u)})`).
    pub fn set_value<W: ElementWeight>(weight: &W, set: &InfluenceSet) -> f64 {
        if weight.is_unit() {
            return set.len() as f64;
        }
        set.iter().map(|u| weight.weight(u)).sum()
    }
}

/// Sum of weights over the set bits of `word` (word index `word_idx`).
#[inline]
fn weigh_bits<W: ElementWeight>(weight: &W, word_idx: usize, mut word: u64) -> f64 {
    let base = word_idx * 64;
    let mut sum = 0.0;
    while word != 0 {
        let b = word.trailing_zeros() as usize;
        word &= word - 1;
        sum += weight.weight(UserId((base + b) as u32));
    }
    sum
}

/// The retained pre-bitmap coverage implementation.
pub mod reference {
    use super::*;
    use std::collections::HashSet;

    /// Coverage state backed by a `HashSet<UserId>` — the implementation the
    /// bitmap [`CoverageState`](super::CoverageState) replaced.
    ///
    /// Retained for two purposes:
    ///
    /// * the `coverage_ops` microbench compares the bitmap layout against it
    ///   so the layout win stays measurable across PRs, and
    /// * the property tests use it as the trusted reference model for the
    ///   bitmap implementation (including the small-vec↔bitmap promotion
    ///   boundary of the arriving sets).
    ///
    /// Not used on any production path.
    #[derive(Debug, Clone, Default)]
    pub struct HashCoverageState {
        covered: HashSet<UserId>,
        value: f64,
    }

    impl HashCoverageState {
        /// Empty coverage, `f(∅) = 0`.
        pub fn new() -> Self {
            Self::default()
        }

        /// Current objective value.
        #[inline]
        pub fn value(&self) -> f64 {
            self.value
        }

        /// Number of covered users.
        pub fn covered_count(&self) -> usize {
            self.covered.len()
        }

        /// `true` if `user` is covered.
        pub fn covers(&self, user: UserId) -> bool {
            self.covered.contains(&user)
        }

        /// Marginal gain of adding `set` (no mutation).
        pub fn marginal_gain<W: ElementWeight>(&self, weight: &W, set: &InfluenceSet) -> f64 {
            set.iter()
                .filter(|u| !self.covered.contains(u))
                .map(|u| weight.weight(u))
                .sum()
        }

        /// Adds `set` to the union, returning the realized gain.
        pub fn absorb<W: ElementWeight>(&mut self, weight: &W, set: &InfluenceSet) -> f64 {
            let mut gain = 0.0;
            for u in set.iter() {
                if self.covered.insert(u) {
                    gain += weight.weight(u);
                }
            }
            self.value += gain;
            gain
        }

        /// Adds a single user, returning the realized gain.
        pub fn absorb_one<W: ElementWeight>(&mut self, weight: &W, user: UserId) -> f64 {
            if self.covered.insert(user) {
                let g = weight.weight(user);
                self.value += g;
                g
            } else {
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{MapWeight, UnitWeight};
    use std::collections::HashMap;

    fn users(ids: &[u32]) -> InfluenceSet {
        ids.iter().map(|&i| UserId(i)).collect()
    }

    /// Same ids, forced into the bitmap representation.
    fn users_bits(ids: &[u32]) -> InfluenceSet {
        let mut s = InfluenceSet::with_universe(64);
        s.extend(ids.iter().map(|&i| UserId(i)));
        s
    }

    #[test]
    fn absorb_accumulates_union_value() {
        let w = UnitWeight;
        let mut cov = CoverageState::new();
        assert_eq!(cov.absorb(&w, &users(&[1, 2, 3])), 3.0);
        assert_eq!(cov.absorb(&w, &users(&[3, 4])), 1.0);
        assert_eq!(cov.value(), 4.0);
        assert_eq!(cov.covered_count(), 4);
        assert!(cov.covers(UserId(4)));
        assert!(!cov.covers(UserId(9)));
        assert_eq!(
            cov.covered().collect::<Vec<_>>(),
            vec![UserId(1), UserId(2), UserId(3), UserId(4)]
        );
    }

    #[test]
    fn marginal_gain_matches_absorb() {
        let w = UnitWeight;
        let mut cov = CoverageState::new();
        cov.absorb(&w, &users(&[1, 2]));
        let s = users(&[2, 3, 4]);
        let predicted = cov.marginal_gain(&w, &s);
        let realized = cov.absorb(&w, &s);
        assert_eq!(predicted, realized);
        assert_eq!(predicted, 2.0);
    }

    #[test]
    fn bitmap_sets_take_the_word_level_path() {
        let w = UnitWeight;
        let mut cov = CoverageState::new();
        let a = users_bits(&[1, 2, 3, 64, 65]);
        assert!(a.is_bitmap());
        assert_eq!(cov.absorb(&w, &a), 5.0);
        let b = users_bits(&[2, 65, 130]);
        assert_eq!(cov.marginal_gain(&w, &b), 1.0);
        assert_eq!(cov.absorb(&w, &b), 1.0);
        assert_eq!(cov.value(), 6.0);
        assert_eq!(cov.covered_count(), 6);
    }

    #[test]
    fn absorb_one_is_the_single_user_delta() {
        let w = UnitWeight;
        let mut cov = CoverageState::new();
        assert_eq!(cov.absorb_one(&w, UserId(7)), 1.0);
        assert_eq!(cov.absorb_one(&w, UserId(7)), 0.0);
        assert_eq!(cov.value(), 1.0);
        assert!(cov.covers(UserId(7)));
    }

    #[test]
    fn early_exit_gain_stops_at_target() {
        let w = UnitWeight;
        let cov = CoverageState::new();
        let s = users(&[1, 2, 3, 4, 5]);
        let g = cov.marginal_gain_at_least(&w, &s, 2.0);
        assert!(g >= 2.0);
        let g = cov.marginal_gain_at_least(&w, &users_bits(&[1, 2, 3, 200]), 3.0);
        assert!(g >= 3.0);
    }

    #[test]
    fn weighted_coverage_uses_weights() {
        let mut table = HashMap::new();
        table.insert(UserId(1), 5.0);
        let w = MapWeight::new(table, 1.0);
        let mut cov = CoverageState::new();
        assert_eq!(cov.absorb(&w, &users(&[1, 2])), 6.0);
        assert_eq!(CoverageState::set_value(&w, &users(&[1])), 5.0);
        // Weighted gains also work on the word-level path.
        assert_eq!(cov.marginal_gain(&w, &users_bits(&[1, 2, 3])), 1.0);
    }

    #[test]
    fn submodularity_of_marginals() {
        // Marginal gain wrt. a superset is never larger (diminishing returns).
        let w = UnitWeight;
        let mut small = CoverageState::new();
        small.absorb(&w, &users(&[1]));
        let mut big = small.clone();
        big.absorb(&w, &users(&[2, 3]));
        let x = users(&[2, 5, 6]);
        assert!(big.marginal_gain(&w, &x) <= small.marginal_gain(&w, &x));
    }

    #[test]
    fn reference_model_agrees_with_bitmap() {
        let w = UnitWeight;
        let mut bitmap = CoverageState::new();
        let mut hash = reference::HashCoverageState::new();
        for set in [users(&[1, 2, 3]), users_bits(&[2, 3, 90]), users(&[5])] {
            assert_eq!(bitmap.marginal_gain(&w, &set), hash.marginal_gain(&w, &set));
            assert_eq!(bitmap.absorb(&w, &set), hash.absorb(&w, &set));
        }
        assert_eq!(bitmap.value(), hash.value());
        assert_eq!(bitmap.covered_count(), hash.covered_count());
        assert_eq!(bitmap.absorb_one(&w, UserId(42)), hash.absorb_one(&w, UserId(42)));
    }
}
