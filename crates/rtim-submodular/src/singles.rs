//! Incremental singleton values `f({e})` shared by the guess-grid oracles.
//!
//! SieveStreaming and ThresholdStream both need the singleton value of
//! every arriving element (to maintain `m = max f({e})` and the fallback
//! single-element solution).  Under the cardinality objective that is just
//! the set's size; under a weighted objective a full rescan per re-arrival
//! would cost O(|I(u)|), so [`SingletonValues`] maintains the value per key
//! incrementally from the single-user delta the set-stream mapping supplies
//! (`process_grow`), with a full scan as the non-delta fallback.
//!
//! Contract (same as [`crate::SsoOracle::process_grow`]): when `added` is
//! `Some(a)`, the caller guarantees `a` is the one user by which the key's
//! set grew since it was last fed — the cached value then advances by
//! exactly `w(a)`.

use crate::coverage::CoverageState;
use crate::weights::{DenseWeights, ElementWeight};
use rtim_stream::{InfluenceSet, UserId};
use std::collections::HashMap;

/// Per-key incremental singleton values (empty under the cardinality
/// objective, which reads `set.len()` instead).
#[derive(Debug, Clone, Default)]
pub(crate) struct SingletonValues {
    values: HashMap<UserId, f64>,
}

impl SingletonValues {
    /// Creates an empty cache.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// The cached entries, ascending by user (deterministic snapshot order).
    pub(crate) fn entries(&self) -> Vec<(UserId, f64)> {
        let mut entries: Vec<(UserId, f64)> = self.values.iter().map(|(&u, &v)| (u, v)).collect();
        entries.sort_unstable_by_key(|(u, _)| *u);
        entries
    }

    /// Rebuilds the cache from persisted entries (restore path).
    pub(crate) fn from_entries(entries: impl IntoIterator<Item = (UserId, f64)>) -> Self {
        SingletonValues {
            values: entries.into_iter().collect(),
        }
    }

    /// The singleton value `f({key})` of the arriving element.
    pub(crate) fn value(
        &mut self,
        key: UserId,
        set: &InfluenceSet,
        weights: &DenseWeights,
        added: Option<UserId>,
    ) -> f64 {
        if weights.is_unit() {
            return set.len() as f64;
        }
        match added {
            Some(a) => {
                let entry = self.values.entry(key).or_insert(0.0);
                *entry += weights.weight(a);
                *entry
            }
            None => {
                let v = CoverageState::set_value(weights, set);
                self.values.insert(key, v);
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> InfluenceSet {
        ids.iter().map(|&i| UserId(i)).collect()
    }

    #[test]
    fn unit_reads_len_without_caching() {
        let mut s = SingletonValues::new();
        assert_eq!(s.value(UserId(1), &set(&[4, 5]), &DenseWeights::Unit, None), 2.0);
        assert!(s.values.is_empty());
    }

    #[test]
    fn weighted_delta_accumulates_and_rescans_resync() {
        let table = [1.0, 2.0, 3.0, 4.0];
        let w = DenseWeights::Table(&table);
        let mut s = SingletonValues::new();
        // Delta path from scratch: entries accumulate one weight at a time.
        assert_eq!(s.value(UserId(9), &set(&[1]), &w, Some(UserId(1))), 2.0);
        assert_eq!(s.value(UserId(9), &set(&[1, 3]), &w, Some(UserId(3))), 6.0);
        // A full (non-delta) feed overwrites with the exact rescan...
        assert_eq!(s.value(UserId(9), &set(&[0, 1, 3]), &w, None), 7.0);
        // ...and the delta path continues from it.
        assert_eq!(s.value(UserId(9), &set(&[0, 1, 2, 3]), &w, Some(UserId(2))), 10.0);
    }
}
