//! Element weights: the `f` in `f(I(S))`.
//!
//! The paper evaluates influence with a nonnegative monotone submodular
//! function of the influence set.  Every such function used in the paper
//! (cardinality in the main text, conformity-aware weighted coverage in
//! Appendix A) is a *weighted coverage* function: each influenced user
//! contributes an independent nonnegative weight, and `f(I(S))` is the sum
//! of weights over the union `I(S)`.  Weighted coverage is monotone and
//! submodular for any nonnegative weights, so the frameworks' guarantees
//! apply unchanged.

use fxhash::FxHashMap;
use rtim_stream::UserId;
use std::collections::HashMap;
use std::sync::Arc;

/// A nonnegative weight per influenced user.
///
/// Implementations must be cheap to clone (they are shared by every
/// checkpoint instance); use [`MapWeight`]'s internal `Arc` or keep the
/// state small.
pub trait ElementWeight: Clone {
    /// The weight contributed by `user` when it appears in an influence set.
    fn weight(&self, user: UserId) -> f64;

    /// `true` if this weight is the constant `1.0` for **every** user.
    ///
    /// Coverage operations use this to take pure word-level `popcount`
    /// paths instead of per-element weight lookups.  The default is `false`
    /// (conservative: per-element lookups are always correct).
    #[inline]
    fn is_unit(&self) -> bool {
        false
    }
}

/// Cardinality: every influenced user counts 1.  This is the influence
/// function used throughout the main text of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitWeight;

impl ElementWeight for UnitWeight {
    #[inline]
    fn weight(&self, _user: UserId) -> f64 {
        1.0
    }

    #[inline]
    fn is_unit(&self) -> bool {
        true
    }
}

/// Borrowed dense weight table indexed by **interned** user id.
///
/// This is the weight view the checkpoint oracles run on: the engine interns
/// raw user ids into a dense `0..n` space at ancestry-resolution time, and
/// the checkpoint layer materializes the element weights of those users into
/// a flat `Vec<f64>` (one entry per interned user, appended in interning
/// order).  An oracle update then costs an array index per element — or
/// nothing at all for the cardinality objective, where coverage operations
/// reduce to word-level popcounts.
///
/// # Panics
/// `weight` panics if a `Table` lookup is out of range: every user reaching
/// an oracle must have been registered in the table first (the checkpoint
/// layer guarantees this by extending the table before each feed).
#[derive(Debug, Clone, Copy)]
pub enum DenseWeights<'a> {
    /// The cardinality objective: every user weighs `1.0`, no table needed.
    Unit,
    /// Weighted coverage: `table[dense_id]` is the user's weight.
    Table(&'a [f64]),
}

impl ElementWeight for DenseWeights<'_> {
    #[inline]
    fn weight(&self, user: UserId) -> f64 {
        match self {
            DenseWeights::Unit => 1.0,
            DenseWeights::Table(t) => t[user.index()],
        }
    }

    #[inline]
    fn is_unit(&self) -> bool {
        matches!(self, DenseWeights::Unit)
    }
}

/// Weighted coverage with per-user weights and a default for unknown users.
///
/// Used by conformity-aware SIM (Appendix A), where the weight of an
/// influenced user is derived from offline influence/conformity scores, and
/// by tests exercising non-uniform objectives.
#[derive(Debug, Clone)]
pub struct MapWeight {
    /// FxHash-keyed internally (the lookup runs per element on weighted
    /// feed paths); the constructor still takes a std `HashMap` so callers
    /// build tables with plain collections.
    weights: Arc<FxHashMap<UserId, f64>>,
    default: f64,
}

impl MapWeight {
    /// Builds a weight table with `default` for users not present.
    ///
    /// Negative weights are clamped to zero to preserve monotonicity.
    pub fn new(weights: HashMap<UserId, f64>, default: f64) -> Self {
        let cleaned = weights
            .into_iter()
            .map(|(u, w)| (u, w.max(0.0)))
            .collect::<FxHashMap<_, _>>();
        MapWeight {
            weights: Arc::new(cleaned),
            default: default.max(0.0),
        }
    }

    /// Number of users with an explicit weight.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if no explicit weights are stored.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

impl ElementWeight for MapWeight {
    #[inline]
    fn weight(&self, user: UserId) -> f64 {
        self.weights.get(&user).copied().unwrap_or(self.default)
    }
}

/// Convenience: total weight of an iterator of users (with repetition —
/// callers are responsible for deduplication when evaluating coverage).
pub fn total_weight<W: ElementWeight>(w: &W, users: impl IntoIterator<Item = UserId>) -> f64 {
    users.into_iter().map(|u| w.weight(u)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_weight_is_cardinality() {
        let w = UnitWeight;
        assert_eq!(w.weight(UserId(0)), 1.0);
        assert_eq!(total_weight(&w, (0..5).map(UserId)), 5.0);
    }

    #[test]
    fn map_weight_uses_table_and_default() {
        let mut m = HashMap::new();
        m.insert(UserId(1), 2.5);
        m.insert(UserId(2), -3.0); // clamped to 0
        let w = MapWeight::new(m, 0.5);
        assert_eq!(w.weight(UserId(1)), 2.5);
        assert_eq!(w.weight(UserId(2)), 0.0);
        assert_eq!(w.weight(UserId(9)), 0.5);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
    }

    #[test]
    fn negative_default_clamped() {
        let w = MapWeight::new(HashMap::new(), -1.0);
        assert_eq!(w.weight(UserId(3)), 0.0);
        assert!(w.is_empty());
    }

    #[test]
    fn unit_flags_are_consistent() {
        assert!(UnitWeight.is_unit());
        assert!(!MapWeight::new(HashMap::new(), 1.0).is_unit());
        assert!(DenseWeights::Unit.is_unit());
        let table = [2.0, 0.5];
        let w = DenseWeights::Table(&table);
        assert!(!w.is_unit());
        assert_eq!(w.weight(UserId(1)), 0.5);
        assert_eq!(DenseWeights::Unit.weight(UserId(9)), 1.0);
    }
}
