//! Property tests of the hybrid [`InfluenceSet`] against a `HashSet`
//! reference model, with id ranges and set sizes chosen to cross the
//! small-vec↔bitmap promotion boundary in both directions.

use proptest::prelude::*;
use rtim_stream::{InfluenceSet, UserId};
use std::collections::HashSet;

/// Insertion sequences around the promotion threshold: lengths from far
/// below to well above `SMALL_MAX`, ids both dense and sparse.
fn arb_inserts(max_len: usize, universe: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..universe, 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Insert/contains/len agree with the HashSet model across promotions.
    #[test]
    fn matches_hashset_model(ids in arb_inserts(3 * InfluenceSet::SMALL_MAX, 4_000)) {
        let mut set = InfluenceSet::new();
        let mut model: HashSet<u32> = HashSet::new();
        for &id in &ids {
            prop_assert_eq!(set.insert(UserId(id)), model.insert(id), "insert {}", id);
            prop_assert_eq!(set.len(), model.len());
            prop_assert!(set.contains(UserId(id)));
        }
        // Membership agrees over the whole universe sample.
        for &id in &ids {
            prop_assert_eq!(set.contains(UserId(id)), model.contains(&id));
        }
        prop_assert_eq!(set.is_empty(), model.is_empty());
        // Promotion happened iff the model outgrew the small capacity at
        // some prefix — at the very least, a set larger than SMALL_MAX
        // cannot still be small.
        if set.len() > InfluenceSet::SMALL_MAX {
            prop_assert!(set.is_bitmap());
        }
    }

    /// Iteration yields exactly the model's elements, in ascending order,
    /// in both representations.
    #[test]
    fn iteration_is_sorted_and_complete(ids in arb_inserts(120, 10_000)) {
        let set: InfluenceSet = ids.iter().map(|&i| UserId(i)).collect();
        let mut expect: Vec<u32> = ids.iter().copied().collect::<HashSet<_>>().into_iter().collect();
        expect.sort_unstable();
        let got: Vec<u32> = set.iter().map(|u| u.0).collect();
        prop_assert_eq!(got, expect);
    }

    /// Equality is representation-independent: the same elements forced into
    /// the small and the bitmap layout compare equal.
    #[test]
    fn equality_across_representations(ids in arb_inserts(InfluenceSet::SMALL_MAX, 500)) {
        let small: InfluenceSet = ids.iter().map(|&i| UserId(i)).collect();
        let mut bits = InfluenceSet::with_universe(512);
        bits.extend(ids.iter().map(|&i| UserId(i)));
        prop_assert!(bits.is_bitmap());
        prop_assert_eq!(&small, &bits);
        prop_assert_eq!(small.len(), bits.len());
    }

    /// Union via extend matches the model union.
    #[test]
    fn union_matches_model(a in arb_inserts(80, 3_000), b in arb_inserts(80, 3_000)) {
        let mut set: InfluenceSet = a.iter().map(|&i| UserId(i)).collect();
        set.extend(b.iter().map(|&i| UserId(i)));
        let model: HashSet<u32> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(set.len(), model.len());
        for id in model {
            prop_assert!(set.contains(UserId(id)));
        }
    }
}
