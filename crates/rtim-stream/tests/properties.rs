//! Property-based tests of the stream substrate: window semantics,
//! propagation-index consistency, and influence-set invariants.

use proptest::prelude::*;
use rtim_stream::{
    window_influence_sets, Action, InfluenceAccumulator, PropagationIndex, SlidingWindow,
    SocialStream,
};

/// Random valid action traces (parents always reference earlier actions).
fn arb_actions(max_len: usize, users: u32) -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec((0u32..users, prop::option::of(0.0f64..1.0)), 1..max_len).prop_map(
        |specs| {
            let mut actions = Vec::with_capacity(specs.len());
            for (i, (user, parent)) in specs.into_iter().enumerate() {
                let t = (i + 1) as u64;
                match parent {
                    Some(f) if i > 0 => {
                        let p = 1 + (f * i as f64).floor() as u64;
                        actions.push(Action::reply(t, user, p.min(t - 1)));
                    }
                    _ => actions.push(Action::root(t, user)),
                }
            }
            actions
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The window always holds the most recent min(t, N) actions in order.
    #[test]
    fn window_holds_latest_actions(actions in arb_actions(80, 10), n in 1usize..20) {
        let mut window = SlidingWindow::new(n);
        for (i, a) in actions.iter().enumerate() {
            window.push(*a);
            let expected_len = (i + 1).min(n);
            prop_assert_eq!(window.len(), expected_len);
            prop_assert_eq!(window.get(expected_len).unwrap().id, a.id);
            let oldest = window.oldest_id().unwrap().0;
            prop_assert_eq!(oldest, (i + 1).saturating_sub(n - 1).max(1) as u64);
        }
    }

    /// Active-user bookkeeping matches a from-scratch recount.
    #[test]
    fn active_users_match_recount(actions in arb_actions(60, 8), n in 2usize..16) {
        let mut window = SlidingWindow::new(n);
        for a in &actions {
            window.push(*a);
            let recount: std::collections::HashSet<_> = window.iter().map(|x| x.user).collect();
            prop_assert_eq!(window.active_user_count(), recount.len());
            for u in &recount {
                prop_assert!(window.is_active(*u));
            }
        }
    }

    /// Valid traces pass stream validation; every generated trace round-trips.
    #[test]
    fn generated_traces_validate(actions in arb_actions(60, 10)) {
        let stream = SocialStream::new(actions.clone());
        prop_assert!(stream.is_ok());
        prop_assert_eq!(stream.unwrap().len(), actions.len());
    }

    /// The propagation index's ancestor lists contain exactly the users on
    /// the reply chain (verified against a naive chain walk).
    #[test]
    fn ancestors_match_naive_chain_walk(actions in arb_actions(60, 8)) {
        let mut index = PropagationIndex::new();
        for a in &actions {
            index.insert(a);
        }
        let by_id: std::collections::HashMap<u64, &Action> =
            actions.iter().map(|a| (a.id.0, a)).collect();
        for a in &actions {
            // Naive walk up the parent chain.
            let mut expected = Vec::new();
            let mut cursor = a.parent;
            while let Some(p) = cursor {
                let parent = by_id[&p.0];
                if !expected.contains(&parent.user) {
                    expected.push(parent.user);
                }
                cursor = parent.parent;
            }
            let got = index.ancestor_users(a.id).unwrap();
            prop_assert_eq!(got, &expected[..], "action {}", a.id);
        }
    }

    /// Influence facts are consistent: u influences v in the window iff v
    /// performed a window action whose ancestor chain contains u (or v = u
    /// with an action in the window).
    #[test]
    fn window_influence_sets_match_definition(actions in arb_actions(50, 8), n in 4usize..20) {
        let mut index = PropagationIndex::new();
        let mut window = SlidingWindow::new(n);
        for a in &actions {
            index.insert(a);
            window.push(*a);
        }
        let inf = window_influence_sets(&window, &index);
        // Check every stored fact is witnessed by some window action.
        for (u, set) in inf.iter() {
            for v in set {
                let witnessed = window.iter().any(|a| {
                    a.user == v
                        && (v == u
                            || index.ancestor_users(a.id).unwrap_or(&[]).contains(&u))
                });
                prop_assert!(witnessed, "unwitnessed fact {u} -> {v}");
            }
        }
        // Every influenced user is active in the window.
        for (_, set) in inf.iter() {
            for v in set {
                prop_assert!(window.is_active(v));
            }
        }
    }

    /// Append-only accumulation is monotone: influence sets only grow, and
    /// the reported growth equals the actual delta.
    #[test]
    fn accumulator_growth_is_exact(actions in arb_actions(50, 8)) {
        let mut index = PropagationIndex::new();
        let mut acc = InfluenceAccumulator::new();
        for a in &actions {
            let updated = index.insert(a);
            let (actor, ancestors) = updated.split_first().unwrap();
            let before: std::collections::HashMap<_, usize> =
                updated.iter().map(|u| (*u, acc.value(*u))).collect();
            let grew = acc.apply(*actor, ancestors);
            for u in &updated {
                let after = acc.value(*u);
                prop_assert!(after >= before[u]);
                prop_assert_eq!(after > before[u], grew.contains(u));
            }
        }
    }
}
