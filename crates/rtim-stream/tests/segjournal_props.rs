//! Property tests for the segmented journal layer: rotation is invisible
//! to replay, truncation anywhere yields a typed outcome (never a panic,
//! never an invented record), and compaction only ever deletes segments
//! fully covered by the watermark.

use proptest::prelude::*;
use rtim_stream::{
    read_journal_dir, resume_plan, segment_file_name, Action, Fs, JournalWriter,
    SegmentedJournal,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "rtim-segjournal-props-{}-{name}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&p).ok();
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// Batches of consecutive-id root actions: `sizes[i]` actions per batch,
/// global ids 1..=total.
fn build_batches(sizes: &[usize]) -> Vec<Vec<Action>> {
    let mut id = 0u64;
    sizes
        .iter()
        .map(|&n| {
            (0..n)
                .map(|_| {
                    id += 1;
                    Action::root(id, (id % 61) as u32)
                })
                .collect()
        })
        .collect()
}

/// Writes `batches` split across `segments` files (`journal.000001.rtaj`
/// onward), splitting at batch granularity.
fn write_segments(dir: &Path, batches: &[Vec<Action>], segments: usize) {
    let per = batches.len().div_ceil(segments).max(1);
    for (seg, chunk) in batches.chunks(per).enumerate() {
        let mut w = JournalWriter::create(dir.join(segment_file_name(seg as u64 + 1))).unwrap();
        for batch in chunk {
            w.append_batch(batch).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The same batch sequence written as one segment or rotated across
    /// up to four reads back bit-identically: rotation is a storage
    /// detail, not a replay semantic.
    #[test]
    fn rotated_segments_replay_identically_to_a_single_file(
        sizes in prop::collection::vec(1usize..6, 1..20),
        segments in 1usize..5,
    ) {
        let batches = build_batches(&sizes);
        let single = temp_dir("single");
        let rotated = temp_dir("rotated");
        write_segments(&single, &batches, 1);
        write_segments(&rotated, &batches, segments);
        let a = read_journal_dir(&single, &Fs::real()).unwrap();
        let b = read_journal_dir(&rotated, &Fs::real()).unwrap();
        prop_assert!(a.rejected.is_empty());
        prop_assert!(b.rejected.is_empty());
        let flat_a: Vec<&Vec<Action>> = a.batches().collect();
        let flat_b: Vec<&Vec<Action>> = b.batches().collect();
        prop_assert_eq!(flat_a, flat_b);
        prop_assert_eq!(a.last_id(), b.last_id());
        std::fs::remove_dir_all(&single).ok();
        std::fs::remove_dir_all(&rotated).ok();
    }

    /// Truncating any segment at any byte offset never panics: the read
    /// comes back `Ok`, every surviving batch is one of the originals,
    /// ids stay strictly increasing, and the resume plan still yields a
    /// usable next sequence number.
    #[test]
    fn truncation_at_any_offset_keeps_a_typed_valid_prefix(
        sizes in prop::collection::vec(1usize..6, 1..20),
        segments in 1usize..5,
        cut_seg in 0usize..4,
        cut_frac in 0.0f64..1.0,
    ) {
        let batches = build_batches(&sizes);
        let dir = temp_dir("truncate");
        write_segments(&dir, &batches, segments);
        let victim = dir.join(segment_file_name((cut_seg % segments) as u64 + 1));
        if victim.exists() {
            let len = std::fs::metadata(&victim).unwrap().len();
            let keep = (len as f64 * cut_frac) as u64;
            let f = std::fs::OpenOptions::new().write(true).open(&victim).unwrap();
            f.set_len(keep).unwrap();
        }
        let contents = read_journal_dir(&dir, &Fs::real()).unwrap();
        let mut last = 0u64;
        for batch in contents.batches() {
            // Every surviving batch is an original, whole batch.
            let original = batches
                .iter()
                .find(|b| b.first().map(|a| a.id) == batch.first().map(|a| a.id));
            prop_assert_eq!(Some(batch), original);
            for a in batch {
                prop_assert!(a.id.0 > last, "ids must stay strictly increasing");
                last = a.id.0;
            }
        }
        let plan = resume_plan(&contents);
        prop_assert!(plan.next_seq >= 1);
        prop_assert!(plan.next_seq > contents.segments.iter().map(|s| s.seq).max().unwrap_or(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Compaction at any watermark never deletes a batch the watermark
    /// does not cover: every action with id past the watermark survives.
    #[test]
    fn compaction_never_deletes_a_needed_segment(
        sizes in prop::collection::vec(1usize..6, 1..20),
        rotate_every in 1usize..5,
        watermark in 0u64..120,
    ) {
        let batches = build_batches(&sizes);
        let total: u64 = sizes.iter().map(|&n| n as u64).sum();
        let dir = temp_dir("compact");
        let mut journal = SegmentedJournal::open_dir(&dir, &Fs::real(), 0).unwrap();
        for (i, batch) in batches.iter().enumerate() {
            journal.append_batch(batch).unwrap();
            if (i + 1) % rotate_every == 0 {
                journal.rotate().unwrap();
            }
        }
        journal.sync().unwrap();
        journal.compact(watermark).unwrap();
        drop(journal);
        let contents = read_journal_dir(&dir, &Fs::real()).unwrap();
        prop_assert!(contents.rejected.is_empty());
        let surviving: Vec<u64> = contents
            .batches()
            .flat_map(|b| b.iter().map(|a| a.id.0))
            .collect();
        for id in watermark + 1..=total {
            prop_assert!(
                surviving.contains(&id),
                "action {id} past watermark {watermark} was compacted away"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
