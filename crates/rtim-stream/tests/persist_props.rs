//! Property tests for the persisted trace codecs (`RTAS`, `RTAB`, text):
//! arbitrary streams round-trip bit-exactly, and corrupted inputs come
//! back as typed [`TraceError`]s — never panics.

use proptest::prelude::*;
use rtim_stream::{
    decode_batch, decode_binary, encode_batch, encode_binary, read_binary, read_text,
    write_binary, write_text, Action, SocialStream, TraceError,
};

/// Builds a structurally valid stream from free-form generator output:
/// ids grow by `gap`, and a reply picks its parent among the already
/// emitted actions via `pick` (so every parent exists and precedes it).
fn build_stream(spec: Vec<(u64, u32, Option<usize>)>) -> SocialStream {
    let mut actions: Vec<Action> = Vec::with_capacity(spec.len());
    let mut id = 0u64;
    for (gap, user, reply) in spec {
        id += gap;
        let parent = match reply {
            Some(pick) if !actions.is_empty() => Some(actions[pick % actions.len()].id),
            _ => None,
        };
        actions.push(match parent {
            Some(p) => Action::reply(id, user, p),
            None => Action::root(id, user),
        });
    }
    SocialStream::new(actions).expect("construction preserves invariants")
}

/// Strategy output feeding [`build_stream`].
fn spec_strategy() -> impl Strategy<Value = Vec<(u64, u32, Option<usize>)>> {
    prop::collection::vec(
        (1u64..5, 0u32..500, prop::option::of(0usize..64)),
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `write_binary` → `read_binary` is the identity on valid streams.
    #[test]
    fn binary_round_trips(spec in spec_strategy()) {
        let stream = build_stream(spec);
        let mut file = Vec::new();
        write_binary(&stream, &mut file).unwrap();
        let decoded = read_binary(file.as_slice()).unwrap();
        prop_assert_eq!(decoded.actions(), stream.actions());
    }

    /// The text format round-trips the same streams.
    #[test]
    fn text_round_trips(spec in spec_strategy()) {
        let stream = build_stream(spec);
        let mut file = Vec::new();
        write_text(&stream, &mut file).unwrap();
        let decoded = read_text(file.as_slice()).unwrap();
        prop_assert_eq!(decoded.actions(), stream.actions());
    }

    /// The batch (fragment) codec round-trips any slice of a stream —
    /// including slices whose parents fall outside the fragment.
    #[test]
    fn batch_round_trips_any_fragment(
        spec in spec_strategy(),
        cut in (0usize..100, 0usize..100),
    ) {
        let stream = build_stream(spec);
        let (a, b) = (cut.0 % stream.len(), cut.1 % stream.len());
        let fragment = &stream.actions()[a.min(b)..=a.max(b)];
        let decoded = decode_batch(&encode_batch(fragment)).unwrap();
        prop_assert_eq!(decoded.as_slice(), fragment);
    }

    /// Truncating an encoded trace at ANY byte offset yields a typed
    /// error (header, mid-record or count mismatch) — never a panic, and
    /// never a silently shortened stream.
    #[test]
    fn truncation_always_yields_typed_errors(spec in spec_strategy(), at in 0usize..10_000) {
        let stream = build_stream(spec);
        let bytes = encode_binary(&stream);
        let cut = at % bytes.len();
        let err = decode_binary(&bytes[..cut]).unwrap_err();
        prop_assert!(matches!(
            err,
            TraceError::BadHeader | TraceError::Truncated | TraceError::Invalid(_)
        ));
        let err = decode_batch(&encode_batch(stream.actions())[..cut]).unwrap_err();
        prop_assert!(matches!(
            err,
            TraceError::BadHeader | TraceError::Truncated | TraceError::Invalid(_)
        ));
    }

    /// Trailing bytes after the declared records are always rejected.
    #[test]
    fn trailing_bytes_always_rejected(spec in spec_strategy(), junk in 1usize..9) {
        let stream = build_stream(spec);
        let mut bytes = encode_binary(&stream).to_vec();
        bytes.extend(std::iter::repeat_n(0xAB, junk));
        prop_assert!(matches!(
            decode_binary(&bytes),
            Err(TraceError::Invalid(_))
        ));
        let mut bytes = encode_batch(stream.actions()).to_vec();
        bytes.extend(std::iter::repeat_n(0xAB, junk));
        prop_assert!(matches!(decode_batch(&bytes), Err(TraceError::Invalid(_))));
    }

    /// A corrupted declared count (the length-prefix analogue of the
    /// binary codecs) is rejected before any allocation is sized from it.
    #[test]
    fn corrupted_count_is_rejected(spec in spec_strategy(), count in 1u64..u64::MAX) {
        let stream = build_stream(spec);
        let mut bytes = encode_binary(&stream).to_vec();
        prop_assume!(count as usize > stream.len());
        bytes[5..13].copy_from_slice(&count.to_le_bytes());
        prop_assert!(matches!(decode_binary(&bytes), Err(TraceError::Truncated)));
    }

    /// Random bytes never panic the decoders.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(0u16..256, 0..200).prop_map(|v| v.into_iter().map(|b| b as u8).collect::<Vec<u8>>())) {
        let _ = decode_binary(&bytes);
        let _ = decode_batch(&bytes);
        let _ = read_text(bytes.as_slice());
    }
}
