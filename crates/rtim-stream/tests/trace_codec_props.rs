//! Property tests for the `RTTR` trace-dump codec: arbitrary dumps
//! round-trip bit-exactly, and truncation at *any* byte offset — or
//! header corruption — comes back as a typed [`TraceCodecError`], never
//! a panic and never a silently wrong dump (the same contract the
//! persist codecs pin in `persist_props.rs`).

use proptest::prelude::*;
use rtim_stream::trace::{SlowOp, TraceCodecError, TraceDump, TraceEvent, SLOW_STAGES, STAGE_COUNT};

fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    (
        0u64..u64::MAX,
        0u64..u64::MAX,
        0u64..u64::MAX,
        0u32..u32::MAX,
        0u8..255,
        0u8..255,
        0u16..u16::MAX,
    )
        .prop_map(
            |(nanos, duration_nanos, conn, corr, stage, lane, aux)| TraceEvent {
                nanos,
                duration_nanos,
                conn,
                corr,
                stage,
                lane,
                aux,
            },
        )
}

fn slow_strategy() -> impl Strategy<Value = SlowOp> {
    (
        0u64..u64::MAX,
        0u32..u32::MAX,
        0u8..255,
        0u64..u64::MAX,
        0u64..u64::MAX,
        prop::collection::vec(0u64..u64::MAX, SLOW_STAGES..SLOW_STAGES + 1),
    )
        .prop_map(|(conn, corr, kind, start_nanos, total_nanos, stages)| SlowOp {
            conn,
            corr,
            kind,
            start_nanos,
            total_nanos,
            stages: stages.try_into().expect("exactly SLOW_STAGES entries"),
        })
}

fn dump_strategy() -> impl Strategy<Value = TraceDump> {
    (
        prop::collection::vec(event_strategy(), 0..48),
        prop::collection::vec(slow_strategy(), 0..12),
        prop::collection::vec(
            (0u64..u64::MAX, 0u64..u64::MAX),
            STAGE_COUNT..STAGE_COUNT + 1,
        ),
    )
        .prop_map(|(events, slow_ops, stage_totals)| TraceDump {
            events,
            slow_ops,
            stage_totals: stage_totals.try_into().expect("exactly STAGE_COUNT entries"),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `encode` → `decode` is the identity on arbitrary dumps.
    #[test]
    fn dump_round_trips(dump in dump_strategy()) {
        let bytes = dump.encode();
        let decoded = TraceDump::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, dump);
    }

    /// Any strict prefix of an encoded dump decodes to a typed error —
    /// truncation can land mid-header, mid-event or mid-slow-op and must
    /// never panic or produce a silently short dump.
    #[test]
    fn truncation_at_any_offset_is_a_typed_error(
        dump in dump_strategy(),
        cut_seed in 0usize..usize::MAX,
    ) {
        let bytes = dump.encode();
        let cut = cut_seed % bytes.len(); // 0 ≤ cut < len
        match TraceDump::decode(&bytes[..cut]) {
            Err(
                TraceCodecError::Truncated
                | TraceCodecError::BadHeader
                | TraceCodecError::UnsupportedVersion(_),
            ) => {}
            Ok(_) => prop_assert!(false, "truncated dump decoded at cut {}", cut),
        }
    }

    /// A corrupted magic or version byte is rejected before any counts
    /// are trusted.
    #[test]
    fn corrupted_header_is_rejected(dump in dump_strategy(), byte in 0usize..5, bump in 1u8..255) {
        let mut bytes = dump.encode();
        bytes[byte] = bytes[byte].wrapping_add(bump);
        match TraceDump::decode(&bytes) {
            Err(TraceCodecError::BadHeader | TraceCodecError::UnsupportedVersion(_)) => {}
            other => prop_assert!(false, "corrupt header at byte {} gave {:?}", byte, other),
        }
    }

    /// Free-form garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(0u8..255, 0..512)) {
        let _ = TraceDump::decode(&bytes);
    }
}
