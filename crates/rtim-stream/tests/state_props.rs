//! Property tests for the `RTSS` state-codec substrate: the CRC-checked
//! section framework, the influence-set/collection codecs and the `RTAJ`
//! journal.  Hostile input — truncation at any offset, flipped bits,
//! corrupted counts — always comes back as a typed [`StateError`], never a
//! panic.

use proptest::prelude::*;
use rtim_stream::persist::journal::{read_journal, JournalWriter};
use rtim_stream::persist::state::{
    decode_influence_set, decode_influence_sets, encode_influence_set, encode_influence_sets,
    ByteReader, StateDocument, StateError, StateWriter,
};
use rtim_stream::{Action, InfluenceSet, InfluenceSets, UserId};

/// Builds an influence-sets collection from free-form generator output.
fn build_sets(spec: &[(u32, u32)]) -> InfluenceSets {
    let mut sets = InfluenceSets::new();
    for &(actor, influenced) in spec {
        // Bias some users toward large (bitmap-promoted) sets.
        sets.insert(UserId(actor % 40), UserId(influenced));
    }
    sets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sections round-trip through the document framework for arbitrary
    /// tags and payloads.
    #[test]
    fn documents_round_trip(sections in prop::collection::vec(
        (0u32..u32::MAX, prop::collection::vec(0u32..256, 0..64)),
        0..8,
    )) {
        let mut w = StateWriter::new();
        let expected: Vec<([u8; 4], Vec<u8>)> = sections
            .iter()
            .map(|(tag, payload)| {
                let tag = tag.to_le_bytes();
                let payload: Vec<u8> = payload.iter().map(|&b| b as u8).collect();
                w.section(tag).extend_from_slice(&payload);
                (tag, payload)
            })
            .collect();
        let bytes = w.finish();
        let doc = StateDocument::parse(&bytes).unwrap();
        prop_assert_eq!(doc.sections().len(), expected.len());
        for (section, (tag, payload)) in doc.sections().iter().zip(&expected) {
            prop_assert_eq!(&section.tag, tag);
            prop_assert_eq!(section.payload, payload.as_slice());
        }
    }

    /// Truncating a document at ANY offset is a typed error, never a panic
    /// and never a silently shortened document.
    #[test]
    fn document_truncation_is_typed(
        payload in prop::collection::vec(0u32..256, 0..200),
        at in 0usize..10_000,
    ) {
        let mut w = StateWriter::new();
        let bytes: Vec<u8> = payload.iter().map(|&b| b as u8).collect();
        w.section(*b"DATA").extend_from_slice(&bytes);
        w.section(*b"MORE").extend_from_slice(&bytes);
        let encoded = w.finish();
        let cut = at % encoded.len();
        let err = StateDocument::parse(&encoded[..cut]).unwrap_err();
        prop_assert!(matches!(
            err,
            StateError::BadHeader | StateError::Truncated | StateError::CrcMismatch { .. }
        ));
    }

    /// Flipping any single bit of a document is detected: parse fails with
    /// a typed error, or — when the flip lands in the section *count* and
    /// truncates the view — never yields the original payloads silently
    /// extended or reordered.
    #[test]
    fn single_bit_corruption_is_detected_or_safe(
        payload in prop::collection::vec(0u32..256, 1..120),
        bit in 0usize..100_000,
    ) {
        let mut w = StateWriter::new();
        let bytes: Vec<u8> = payload.iter().map(|&b| b as u8).collect();
        w.section(*b"DATA").extend_from_slice(&bytes);
        let mut encoded = w.finish();
        let target = bit % (encoded.len() * 8);
        encoded[target / 8] ^= 1 << (target % 8);
        match StateDocument::parse(&encoded) {
            Err(_) => {} // typed, expected for almost every flip
            Ok(doc) => {
                // The only undetectable flips are inside the header's
                // section count (CRCs do not cover it): the parse may then
                // see fewer sections, but any section it does return must
                // still carry a payload whose CRC matched.
                for section in doc.sections() {
                    prop_assert_eq!(section.payload, bytes.as_slice());
                }
            }
        }
    }

    /// Influence sets round-trip bit-exactly in whichever representation
    /// they are in, including across the small-vec → bitmap promotion
    /// boundary.
    #[test]
    fn influence_sets_round_trip(spec in prop::collection::vec(
        (0u32..5_000, 0u32..2_000),
        0..400,
    )) {
        let sets = build_sets(&spec);
        let mut out = Vec::new();
        encode_influence_sets(&sets, &mut out);
        let mut r = ByteReader::new(&out);
        let decoded = decode_influence_sets(&mut r).unwrap();
        r.finish().unwrap();
        prop_assert_eq!(decoded.len(), sets.len());
        for (user, set) in sets.iter() {
            let restored = decoded.get(user).expect("user survives");
            prop_assert_eq!(restored, set);
            prop_assert_eq!(restored.is_bitmap(), set.is_bitmap());
        }
        // Deterministic bytes: re-encoding the decoded collection is the
        // identity on the encoding.
        let mut again = Vec::new();
        encode_influence_sets(&decoded, &mut again);
        prop_assert_eq!(again, out);
    }

    /// Truncating an encoded influence set anywhere is a typed error.
    #[test]
    fn influence_set_truncation_is_typed(
        users in prop::collection::vec(0u32..10_000, 1..200),
        at in 0usize..10_000,
    ) {
        let set: InfluenceSet = users.iter().copied().map(UserId).collect();
        let mut out = Vec::new();
        encode_influence_set(&set, &mut out);
        let cut = at % out.len();
        let mut r = ByteReader::new(&out[..cut]);
        prop_assert!(decode_influence_set(&mut r).is_err());
    }

    /// The journal round-trips arbitrary batch splits of a valid stream,
    /// and truncating the file at ANY offset still yields the longest
    /// valid batch prefix — never a panic, never garbage actions.
    #[test]
    fn journal_round_trips_and_tolerates_any_truncation(
        gaps in prop::collection::vec((1u64..4, 0u32..300), 1..120),
        splits in prop::collection::vec(1usize..10, 1..20),
        at in 0usize..100_000,
    ) {
        let path = std::env::temp_dir().join(format!(
            "rtim-state-props-{}-{:x}.rtaj",
            std::process::id(),
            at ^ gaps.len() ^ (splits.len() << 8)
        ));
        // Build a valid global stream, split into batches.
        let mut id = 0u64;
        let actions: Vec<Action> = gaps
            .iter()
            .map(|&(gap, user)| {
                id += gap;
                if user % 3 == 0 && id > 1 {
                    Action::reply(id, user, id - 1)
                } else {
                    Action::root(id, user)
                }
            })
            .collect();
        let mut batches: Vec<&[Action]> = Vec::new();
        let mut rest = actions.as_slice();
        let mut split_iter = splits.iter().cycle();
        while !rest.is_empty() {
            let take = (*split_iter.next().unwrap()).min(rest.len());
            let (head, tail) = rest.split_at(take);
            batches.push(head);
            rest = tail;
        }
        let mut w = JournalWriter::create(&path).unwrap();
        for batch in &batches {
            w.append_batch(batch).unwrap();
        }
        drop(w);

        let contents = read_journal(&path).unwrap();
        prop_assert_eq!(contents.batches.len(), batches.len());
        for (got, want) in contents.batches.iter().zip(&batches) {
            prop_assert_eq!(got.as_slice(), *want);
        }
        prop_assert_eq!(contents.ignored_bytes, 0);

        // Truncate the file at an arbitrary offset: the valid prefix
        // survives, and nothing past the cut is ever fabricated.
        let full = std::fs::read(&path).unwrap();
        let cut = at % (full.len() + 1);
        std::fs::write(&path, &full[..cut]).unwrap();
        let truncated = read_journal(&path).unwrap();
        prop_assert!(truncated.batches.len() <= batches.len());
        for (got, want) in truncated.batches.iter().zip(&batches) {
            prop_assert_eq!(got.as_slice(), *want);
        }
        prop_assert!(truncated.valid_len <= cut as u64);
        std::fs::remove_file(&path).ok();
    }
}
