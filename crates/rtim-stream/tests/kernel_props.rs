//! Differential property tests of the coverage word kernels and the
//! arena-backed bitmap path.
//!
//! * Every kernel in [`rtim_stream::kernels`] must agree bit-for-bit with
//!   its scalar reference in [`rtim_stream::kernels::reference`] — with or
//!   without the `simd` feature (CI runs this file under both), and across
//!   slice lengths straddling every unroll/vector boundary (remainders of
//!   the 4-word unroll, the AVX2 4-lane blocks, and the 16-word SIMD
//!   cut-over).
//! * An [`InfluenceSet`] whose bitmap storage is routed through a
//!   [`WordArena`] — including storage recycled from previous sets — must
//!   be indistinguishable from a heap-backed one.

use proptest::prelude::*;
use rtim_stream::{kernels, InfluenceSet, UserId, WordArena};

/// Word slices with lengths concentrated around the kernels' internal
/// boundaries (0, multiples of 4, the 16-word SIMD threshold) and bit
/// patterns from empty to saturated.
fn arb_words(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((0u32..4, 0u64..u64::MAX), 0..max_len).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, w)| match kind {
                0 => 0,
                1 => u64::MAX,
                2 => w & 0x8000_0000_0000_0001,
                _ => w,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `popcount_words` equals the scalar reference for any input.
    #[test]
    fn popcount_matches_reference(words in arb_words(70)) {
        prop_assert_eq!(
            kernels::popcount_words(&words),
            kernels::reference::popcount_words(&words)
        );
    }

    /// `and_not_popcount` equals the scalar reference for any equal-length
    /// pair.
    #[test]
    fn and_not_popcount_matches_reference(pairs in arb_words(70), mask in arb_words(70)) {
        let n = pairs.len().min(mask.len());
        prop_assert_eq!(
            kernels::and_not_popcount(&pairs[..n], &mask[..n]),
            kernels::reference::and_not_popcount(&pairs[..n], &mask[..n])
        );
    }

    /// The truncating kernel agrees with its block-granular reference for
    /// every target, including targets it truncates at.
    #[test]
    fn and_not_at_least_matches_reference(
        set in arb_words(70),
        mask in arb_words(70),
        target in 0usize..2048,
    ) {
        let n = set.len().min(mask.len());
        let target = target as f64;
        prop_assert_eq!(
            kernels::and_not_popcount_at_least(&set[..n], &mask[..n], target),
            kernels::reference::and_not_popcount_at_least(&set[..n], &mask[..n], target)
        );
    }

    /// Whatever `and_not_popcount_at_least` truncates, it preserves the
    /// `>= target` predicate of the exact count — the only property its
    /// callers consume.
    #[test]
    fn and_not_at_least_preserves_predicate(
        set in arb_words(70),
        mask in arb_words(70),
        target in 0usize..2048,
    ) {
        let n = set.len().min(mask.len());
        let target_f = target as f64;
        let exact = kernels::and_not_popcount(&set[..n], &mask[..n]);
        let truncated = kernels::and_not_popcount_at_least(&set[..n], &mask[..n], target_f);
        prop_assert_eq!((truncated as f64) >= target_f, (exact as f64) >= target_f);
        prop_assert!(truncated <= exact);
    }

    /// `absorb_count` equals the scalar reference: same return value and
    /// the same mutated `covered` slice.
    #[test]
    fn absorb_count_matches_reference(set in arb_words(70), covered in arb_words(70)) {
        let n = set.len().min(covered.len());
        let mut got = covered[..n].to_vec();
        let mut expect = covered[..n].to_vec();
        let a = kernels::absorb_count(&set[..n], &mut got);
        let b = kernels::reference::absorb_count(&set[..n], &mut expect);
        prop_assert_eq!(a, b);
        prop_assert_eq!(got, expect);
    }

    /// An arena-backed `InfluenceSet` is content-identical to a heap-backed
    /// one under the same insertion sequence — across small→bitmap
    /// promotion, bitmap growth, and storage recycled from earlier sets.
    #[test]
    fn arena_backed_set_matches_heap_backed(
        rounds in prop::collection::vec(
            prop::collection::vec(0u32..5_000, 0..120),
            1..4,
        ),
    ) {
        let mut arena = WordArena::new();
        for ids in &rounds {
            let mut heap = InfluenceSet::new();
            let mut pooled = InfluenceSet::new();
            for &id in ids {
                let a = heap.insert(UserId(id));
                let b = pooled.insert_in(UserId(id), &mut arena);
                prop_assert_eq!(a, b, "insert {}", id);
                prop_assert_eq!(heap.len(), pooled.len());
            }
            prop_assert_eq!(&heap, &pooled);
            prop_assert_eq!(
                heap.iter().collect::<Vec<_>>(),
                pooled.iter().collect::<Vec<_>>()
            );
            prop_assert_eq!(heap.is_bitmap(), pooled.is_bitmap());
            // Donate this round's storage to the next round: recycled
            // buffers must come back zeroed and behave like fresh ones.
            pooled.recycle_into(&mut arena);
            arena.end_slide();
        }
        // At least one take hit the pool once a bitmap-sized round ran
        // before another (smoke check that recycling is actually exercised
        // when possible; single-round cases legitimately never hit).
        let (takes, hits) = arena.stats();
        prop_assert!(hits <= takes);
    }
}
