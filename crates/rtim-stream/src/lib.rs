//! # rtim-stream
//!
//! Social action stream substrate for Stream Influence Maximization (SIM).
//!
//! This crate models the data layer of the paper *"Real-Time Influence
//! Maximization on Dynamic Social Streams"* (Wang et al., 2017):
//!
//! * [`Action`] — a single social action `a_t = ⟨u, a_{t'}⟩_t` (a user `u`
//!   acting at time `t` in response to an earlier action `a_{t'}`, or a
//!   *root* action when there is no parent).
//! * [`PropagationIndex`] — incremental resolution of the reply ancestry of
//!   every action, i.e. the set of users whose influence sets grow when an
//!   action arrives (the `d` ancestor users of §4.2).
//! * [`SlidingWindow`] — the sequence-based sliding window `W_t` holding the
//!   most recent `N` actions, with support for multi-action slides (`L > 1`).
//! * [`InfluenceAccumulator`] — append-only, per-user influence sets
//!   `I(u) ⊆ U`, the building block of every checkpoint oracle.
//! * [`window_influence_sets`] — from-scratch computation of the
//!   window-scoped influence sets `I_t(u)` used by baselines and by the
//!   quality-evaluation influence graph.
//!
//! The key design decision (mirroring the paper) is that influence sets are
//! **never maintained globally under expiry**; they are either accumulated
//! append-only inside a checkpoint, or recomputed from the window contents.
//!
//! Durability lives under [`persist`]: trace codecs (`RTAS`/`RTAB`/text),
//! the CRC-checked [`persist::state`] (`RTSS`) section substrate that
//! engine snapshots build on, the crash-tolerant [`persist::journal`]
//! (`RTAJ`) of ingest batches with its segmented rotation/compaction layer
//! [`persist::segjournal`], and the deterministic fault-injection I/O
//! layer [`persist::faultfs`] every durability file op flows through.
//! The flight-recorder dump codec (`RTTR`) lives in [`trace`], next to
//! its sibling stream codecs.
//!
//! The hot-path word loops live in [`kernels`] (unrolled, with an optional
//! stable-`std::arch` SIMD path behind the `simd` feature) and slide-time
//! bitmap allocation recycles through [`WordArena`].

// Unsafe is forbidden except for the `simd` feature, whose only unsafe is
// the runtime-dispatched `#[target_feature]` call boundary in
// `kernels::simd` (module-scoped allow there, same containment pattern as
// rtim-server's poll FFI).
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod action;
pub mod arena;
pub mod influence;
pub mod influence_set;
pub mod kernels;
pub mod persist;
pub mod propagation;
pub mod stream;
pub mod trace;
pub mod window;

pub use action::{Action, ActionId, Timestamp, UserId};
pub use arena::WordArena;
pub use kernels::{absorb_count, and_not_popcount, and_not_popcount_at_least, popcount_words};
pub use influence::{window_influence_sets, InfluenceAccumulator, InfluenceSets};
pub use influence_set::{InfluenceSet, SetIter, SetView};
pub use persist::faultfs::{DurableFile, FaultInjector, FaultKind, FaultRule, Fs, OpKind};
pub use persist::journal::{read_journal, read_journal_with, JournalContents, JournalWriter};
pub use persist::segjournal::{
    read_journal_dir, resume_plan, segment_file_name, CompletedSegment, JournalDirContents,
    JournalResume, ResumePoint, SegmentedJournal,
};
pub use persist::state::{ByteReader, StateDocument, StateError, StateWriter};
pub use persist::{
    decode_batch, decode_batch_into, decode_binary, encode_batch, encode_binary, read_binary,
    read_text, write_binary, write_text, TraceError, MAX_FRAME_BYTES,
};
pub use propagation::{PropagationIndex, PropagationStats};
pub use stream::{ActionBatchIter, SocialStream, StreamStats};
pub use trace::{
    SlowOp, TraceCodecError, TraceDump, TraceEvent, TraceStage, SLOW_STAGES, STAGE_COUNT,
    TRACE_EVENT_BYTES,
};
pub use window::{SlideOutcome, SlidingWindow};
