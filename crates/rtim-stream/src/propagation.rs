//! Incremental propagation (reply-ancestry) index.
//!
//! When an action `a_t = ⟨v, a_{t'}⟩_t` arrives, the users whose influence
//! sets grow are exactly
//!
//! * `v` itself (every user influences itself through its own actions), and
//! * every user who performed an *ancestor* of `a_t` in the reply chain
//!   (`a_{t'}`, the parent of `a_{t'}`, and so on) — these are the `d`
//!   ancestor users of §4.2 of the paper.
//!
//! Importantly (Example 1 of the paper), the ancestor actions do **not**
//! have to lie inside the current window: `u` still influences `v` in `W_t`
//! as long as `v`'s action is in `W_t`, even if `u`'s triggering action has
//! already expired.  The index therefore resolves ancestry against *all*
//! actions it has seen, with an optional retention horizon for unbounded
//! runs.

use crate::action::{Action, ActionId, UserId};
use fxhash::FxHashMap;

/// Per-action record kept by the index (fields crate-visible for the
/// `persist::state` codec).
#[derive(Debug, Clone)]
pub(crate) struct ActionRecord {
    /// The user who performed this action.
    pub(crate) user: UserId,
    /// Users of all ancestor actions (deduplicated, nearest-first).
    pub(crate) ancestor_users: Box<[UserId]>,
    /// Number of ancestor *actions* (reply depth; 0 for roots).
    pub(crate) depth: u32,
}

/// Aggregate statistics over all actions inserted into a [`PropagationIndex`].
///
/// These are the quantities reported in Table 3 of the paper (average reply
/// depth and average response distance).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PropagationStats {
    /// Total number of actions inserted.
    pub actions: u64,
    /// Number of root actions.
    pub roots: u64,
    /// Sum of reply depths (number of ancestors per action).
    pub total_depth: u64,
    /// Maximum reply depth observed.
    pub max_depth: u32,
    /// Sum of response distances `t - t'` over reply actions.
    pub total_response_distance: u64,
    /// Number of reply actions whose parent was still resolvable.
    pub resolved_replies: u64,
    /// Number of reply actions whose parent had been pruned (treated as roots).
    pub unresolved_replies: u64,
}

impl PropagationStats {
    /// Average reply depth over all actions (the paper's "Avg. depth"
    /// counts the cascade position of each action, roots contributing 1).
    pub fn avg_depth(&self) -> f64 {
        if self.actions == 0 {
            return 0.0;
        }
        // Depth here is #ancestors; the paper counts cascade length including
        // the action itself, hence the +1.
        (self.total_depth + self.actions) as f64 / self.actions as f64
    }

    /// Average response distance `t - t'` over reply actions.
    pub fn avg_response_distance(&self) -> f64 {
        let replies = self.resolved_replies + self.unresolved_replies;
        if replies == 0 {
            return 0.0;
        }
        self.total_response_distance as f64 / replies as f64
    }
}

/// Incremental index resolving, for every arriving action, the set of users
/// whose influence sets are updated (the acting user plus all ancestor
/// users), in O(d) per arrival.
///
/// # Retention
///
/// By default the index retains every action ever inserted, which is what
/// the paper's experiments effectively need (ancestors may be arbitrarily
/// far in the past).  For truly unbounded deployments
/// [`PropagationIndex::with_horizon`] bounds memory: actions older than
/// `horizon` positions are pruned and replies to pruned actions are treated
/// as roots (their influence contribution from the pruned part is lost, a
/// documented approximation).
#[derive(Debug, Clone)]
pub struct PropagationIndex {
    /// FxHash-keyed: one probe per arriving action plus one per ancestor
    /// lookup — an outer feed-path map (see `docs/PERF.md`).
    pub(crate) records: FxHashMap<ActionId, ActionRecord>,
    pub(crate) horizon: Option<u64>,
    /// Smallest action id still retained (used for pruning).
    pub(crate) oldest_retained: u64,
    pub(crate) latest: u64,
    pub(crate) stats: PropagationStats,
    /// Maximum number of ancestor users recorded per action (0 = unlimited).
    pub(crate) max_ancestors: usize,
}

impl Default for PropagationIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl PropagationIndex {
    /// Creates an index that retains every action.
    pub fn new() -> Self {
        PropagationIndex {
            records: FxHashMap::default(),
            horizon: None,
            oldest_retained: 0,
            latest: 0,
            stats: PropagationStats::default(),
            max_ancestors: 0,
        }
    }

    /// Creates an index that prunes actions more than `horizon` positions old.
    pub fn with_horizon(horizon: u64) -> Self {
        let mut idx = Self::new();
        idx.horizon = Some(horizon.max(1));
        idx
    }

    /// Caps the number of ancestor users recorded per action.
    ///
    /// Real cascades are shallow (Table 3 reports average depths below 5),
    /// but adversarial streams could chain millions of replies; the cap
    /// bounds per-action work without affecting typical workloads.
    pub fn with_max_ancestors(mut self, cap: usize) -> Self {
        self.max_ancestors = cap;
        self
    }

    /// Rebuilds an index skeleton from persisted counters (the
    /// `persist::state` restore path; records are re-inserted through
    /// [`PropagationIndex::insert_record`]).
    pub(crate) fn from_parts(
        horizon: Option<u64>,
        oldest_retained: u64,
        latest: u64,
        max_ancestors: usize,
        stats: PropagationStats,
    ) -> Self {
        PropagationIndex {
            records: FxHashMap::default(),
            horizon,
            oldest_retained,
            latest,
            stats,
            max_ancestors,
        }
    }

    /// Re-installs one persisted record verbatim (restore path; no stats
    /// are updated — they were persisted alongside).
    pub(crate) fn insert_record(
        &mut self,
        id: ActionId,
        user: UserId,
        depth: u32,
        ancestor_users: Vec<UserId>,
    ) {
        self.records.insert(
            id,
            ActionRecord {
                user,
                ancestor_users: ancestor_users.into_boxed_slice(),
                depth,
            },
        );
    }

    /// Id of the most recent action ever inserted (0 before the first) —
    /// the natural journal watermark of a snapshot.
    pub fn latest_id(&self) -> u64 {
        self.latest
    }

    /// Number of actions currently retained.
    pub fn retained(&self) -> usize {
        self.records.len()
    }

    /// Aggregate statistics since creation.
    pub fn stats(&self) -> PropagationStats {
        self.stats
    }

    /// Inserts an action and returns the users whose influence sets grow:
    /// the acting user followed by the deduplicated ancestor users
    /// (nearest ancestor first, acting user excluded from the ancestor part).
    pub fn insert(&mut self, action: &Action) -> Vec<UserId> {
        self.latest = self.latest.max(action.id.0);
        let (ancestor_users, depth) = match action.parent {
            None => {
                self.stats.roots += 1;
                (Vec::new(), 0)
            }
            Some(parent_id) => {
                self.stats.total_response_distance +=
                    action.id.0.saturating_sub(parent_id.0);
                match self.records.get(&parent_id) {
                    Some(parent) => {
                        self.stats.resolved_replies += 1;
                        let mut anc = Vec::with_capacity(parent.ancestor_users.len() + 1);
                        anc.push(parent.user);
                        for &u in parent.ancestor_users.iter() {
                            if !anc.contains(&u) {
                                anc.push(u);
                            }
                        }
                        if self.max_ancestors > 0 && anc.len() > self.max_ancestors {
                            anc.truncate(self.max_ancestors);
                        }
                        (anc, parent.depth + 1)
                    }
                    None => {
                        // Parent pruned or never seen: degrade to a root.
                        self.stats.unresolved_replies += 1;
                        (Vec::new(), 0)
                    }
                }
            }
        };

        self.stats.actions += 1;
        self.stats.total_depth += depth as u64;
        self.stats.max_depth = self.stats.max_depth.max(depth);

        let mut updated = Vec::with_capacity(ancestor_users.len() + 1);
        updated.push(action.user);
        for &u in &ancestor_users {
            if u != action.user {
                updated.push(u);
            }
        }

        self.records.insert(
            action.id,
            ActionRecord {
                user: action.user,
                ancestor_users: ancestor_users.into_boxed_slice(),
                depth,
            },
        );
        self.maybe_prune();
        updated
    }

    /// Returns the ancestor users of an already-inserted action
    /// (acting user excluded), or `None` if the action is unknown/pruned.
    pub fn ancestor_users(&self, id: ActionId) -> Option<&[UserId]> {
        self.records.get(&id).map(|r| &*r.ancestor_users)
    }

    /// Returns the user who performed an already-inserted action.
    pub fn user_of(&self, id: ActionId) -> Option<UserId> {
        self.records.get(&id).map(|r| r.user)
    }

    /// Reply depth (number of ancestor actions) of an inserted action.
    pub fn depth_of(&self, id: ActionId) -> Option<u32> {
        self.records.get(&id).map(|r| r.depth)
    }

    fn maybe_prune(&mut self) {
        let Some(h) = self.horizon else { return };
        let cutoff = self.latest.saturating_sub(h);
        if cutoff <= self.oldest_retained {
            return;
        }
        // Amortize: only prune when the retained range is at least twice the
        // horizon, then sweep once.
        if self.latest.saturating_sub(self.oldest_retained) < 2 * h {
            return;
        }
        self.records.retain(|id, _| id.0 >= cutoff);
        self.oldest_retained = cutoff;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example from Figure 1 of the paper.
    pub(crate) fn figure1_actions() -> Vec<Action> {
        vec![
            Action::root(1u64, 1u32),
            Action::reply(2u64, 2u32, 1u64),
            Action::root(3u64, 3u32),
            Action::reply(4u64, 3u32, 1u64),
            Action::reply(5u64, 4u32, 3u64),
            Action::reply(6u64, 1u32, 3u64),
            Action::reply(7u64, 5u32, 3u64),
            Action::reply(8u64, 4u32, 7u64),
            Action::root(9u64, 2u32),
            Action::reply(10u64, 6u32, 9u64),
        ]
    }

    #[test]
    fn ancestors_follow_reply_chain() {
        let mut idx = PropagationIndex::new();
        let actions = figure1_actions();
        let mut updated_per_action = Vec::new();
        for a in &actions {
            updated_per_action.push(idx.insert(a));
        }
        // a8 = <u4, a7>: ancestors are u5 (a7) and u3 (a3).
        assert_eq!(idx.ancestor_users(ActionId(8)).unwrap(), &[UserId(5), UserId(3)]);
        // Updated users for a8: u4 itself plus the two ancestors.
        assert_eq!(updated_per_action[7], vec![UserId(4), UserId(5), UserId(3)]);
        // a2 = <u2, a1>: single ancestor u1.
        assert_eq!(idx.ancestor_users(ActionId(2)).unwrap(), &[UserId(1)]);
        // Root actions have no ancestors.
        assert!(idx.ancestor_users(ActionId(1)).unwrap().is_empty());
    }

    #[test]
    fn depth_and_stats_track_cascade_structure() {
        let mut idx = PropagationIndex::new();
        for a in figure1_actions() {
            idx.insert(&a);
        }
        assert_eq!(idx.depth_of(ActionId(1)), Some(0));
        assert_eq!(idx.depth_of(ActionId(8)), Some(2));
        let stats = idx.stats();
        assert_eq!(stats.actions, 10);
        assert_eq!(stats.roots, 3);
        assert_eq!(stats.max_depth, 2);
        assert_eq!(stats.resolved_replies, 7);
        assert_eq!(stats.unresolved_replies, 0);
        // total depth = 0+1+0+1+1+1+1+2+0+1 = 8 -> avg cascade position 1.8
        assert!((stats.avg_depth() - 1.8).abs() < 1e-9);
        assert!(stats.avg_response_distance() > 0.0);
    }

    #[test]
    fn self_reply_chain_does_not_duplicate_users() {
        let mut idx = PropagationIndex::new();
        idx.insert(&Action::root(1u64, 7u32));
        idx.insert(&Action::reply(2u64, 7u32, 1u64));
        let updated = idx.insert(&Action::reply(3u64, 7u32, 2u64));
        // The acting user appears once even though it is also an ancestor.
        assert_eq!(updated, vec![UserId(7)]);
    }

    #[test]
    fn horizon_prunes_old_actions_and_degrades_to_roots() {
        let mut idx = PropagationIndex::with_horizon(10);
        for t in 1..=40u64 {
            let a = if t == 1 {
                Action::root(t, 0u32)
            } else {
                Action::reply(t, (t % 5) as u32, t - 1)
            };
            idx.insert(&a);
        }
        assert!(idx.retained() < 40);
        // A reply to a pruned parent is treated as a root.
        let updated = idx.insert(&Action::reply(41u64, 9u32, 2u64));
        assert_eq!(updated, vec![UserId(9)]);
        assert!(idx.stats().unresolved_replies >= 1);
    }

    #[test]
    fn max_ancestors_caps_recorded_chain() {
        let mut idx = PropagationIndex::new().with_max_ancestors(2);
        idx.insert(&Action::root(1u64, 1u32));
        idx.insert(&Action::reply(2u64, 2u32, 1u64));
        idx.insert(&Action::reply(3u64, 3u32, 2u64));
        idx.insert(&Action::reply(4u64, 4u32, 3u64));
        assert!(idx.ancestor_users(ActionId(4)).unwrap().len() <= 2);
    }

    #[test]
    fn user_of_returns_actor() {
        let mut idx = PropagationIndex::new();
        idx.insert(&Action::root(1u64, 42u32));
        assert_eq!(idx.user_of(ActionId(1)), Some(UserId(42)));
        assert_eq!(idx.user_of(ActionId(2)), None);
    }
}
