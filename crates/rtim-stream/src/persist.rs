//! Persisting action traces.
//!
//! Experiments and deployments need to replay identical streams: this module
//! provides two interchangeable encodings of a [`SocialStream`]:
//!
//! * a **compact binary** format (`RTAS`, 20 bytes per action) for large
//!   generated traces, and
//! * a **text** format (one `t,user,parent` line per action) that is easy to
//!   produce from external data sources (e.g. an export of real platform
//!   events) and to inspect manually.
//!
//! Both encoders validate on load, so a corrupted or truncated file is
//! reported instead of silently producing a malformed stream.
//!
//! A third encoding, the **batch** format (`RTAB`), carries a *fragment* of
//! a stream: the per-record layout is identical to `RTAS`, but parents may
//! reference actions outside the batch (an earlier batch of the same
//! connection).  This is the payload format of the `rtim-server` wire
//! protocol, where a client ships its stream in successive batches.

use crate::action::{Action, ActionId, UserId};
use crate::stream::SocialStream;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::HashSet;
use std::io::{self, BufRead, BufReader, Read, Write};

pub mod faultfs;
pub mod journal;
pub mod segjournal;
pub mod state;

/// Upper bound, in bytes, on a single length-prefixed payload across the
/// workspace's codecs — the wire protocol's frame cap (`rtim-server`
/// re-exports it as `MAX_FRAME_LEN`) and the guard the batch decoders
/// size allocations against.  32 MiB ≈ 1.6 M actions per batch: far above
/// any sane payload, low enough that a hostile length prefix cannot drive
/// allocation.  The `RTSS` state codec bounds allocations by the input
/// actually present and uses 64 × this value as its absolute
/// single-allocation ceiling (snapshot-scale arrays legitimately exceed
/// one wire frame; see [`state::ByteReader::array_len`]).
pub const MAX_FRAME_BYTES: usize = 32 * 1024 * 1024;

/// Magic bytes identifying the binary trace format ("RTAS" = RTim Action
/// Stream), followed by a format version byte.
const MAGIC: &[u8; 4] = b"RTAS";
const VERSION: u8 = 1;

/// Magic bytes of the batch (stream-fragment) format, "RTAB" = RTim Action
/// Batch.  Same version byte and record layout as `RTAS`.
const BATCH_MAGIC: &[u8; 4] = b"RTAB";

/// Errors produced when loading a persisted trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the expected magic/version.
    BadHeader,
    /// The payload ended in the middle of a record.
    Truncated,
    /// A record violates stream invariants (ids not increasing, parent in
    /// the future, …); the message describes the first violation.
    Invalid(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "I/O error: {e}"),
            TraceError::BadHeader => write!(f, "not an RTAS trace (bad header)"),
            TraceError::Truncated => write!(f, "trace truncated mid-record"),
            TraceError::Invalid(msg) => write!(f, "invalid trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Encodes a stream into the compact binary format.
///
/// Layout: `RTAS` magic, version byte, little-endian `u64` action count,
/// then per action: `u64` id, `u32` user, `u64` parent id (0 = root; valid
/// because action ids start at 1).
pub fn encode_binary(stream: &SocialStream) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 1 + 8 + stream.len() * 20);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(stream.len() as u64);
    for a in stream.iter() {
        buf.put_u64_le(a.id.0);
        buf.put_u32_le(a.user.0);
        buf.put_u64_le(a.parent.map_or(0, |p| p.0));
    }
    buf.freeze()
}

/// Shared decoding core of `RTAS`/`RTAB`: checks `magic` + version, reads
/// the declared record count (rejecting counts the payload cannot hold
/// *before* any allocation is sized from them), parses the 20-byte
/// records into `out` (cleared first, capacity reused), and rejects
/// trailing bytes.  Format-specific validation is the caller's job.
fn decode_records_into(
    magic: &[u8; 4],
    mut data: &[u8],
    out: &mut Vec<Action>,
) -> Result<(), TraceError> {
    out.clear();
    if data.len() < 13 || &data[..4] != magic || data[4] != VERSION {
        return Err(TraceError::BadHeader);
    }
    data.advance(5);
    let count = data.get_u64_le() as usize;
    if data.remaining() / 20 < count {
        return Err(TraceError::Truncated);
    }
    // The remaining-bytes check above already bounds `count`; the clamp
    // keeps the shared single-allocation cap explicit (same constant as
    // the wire protocol and the RTSS state codec).
    out.reserve(count.min(MAX_FRAME_BYTES / 20));
    for _ in 0..count {
        let id = data.get_u64_le();
        let user = data.get_u32_le();
        let parent = data.get_u64_le();
        out.push(Action {
            id: ActionId(id),
            user: UserId(user),
            parent: if parent == 0 { None } else { Some(ActionId(parent)) },
        });
    }
    if data.remaining() > 0 {
        return Err(TraceError::Invalid(format!(
            "{} trailing bytes after the {count} declared records",
            data.remaining()
        )));
    }
    Ok(())
}

/// Owned-result wrapper around [`decode_records_into`].
fn decode_records(magic: &[u8; 4], data: &[u8]) -> Result<Vec<Action>, TraceError> {
    let mut actions = Vec::new();
    decode_records_into(magic, data, &mut actions)?;
    Ok(actions)
}

/// Decodes a stream from the compact binary format, validating invariants.
pub fn decode_binary(data: &[u8]) -> Result<SocialStream, TraceError> {
    let actions = decode_records(MAGIC, data)?;
    SocialStream::new(actions).map_err(TraceError::Invalid)
}

/// Encodes a stream *fragment* (a batch) into the binary batch format.
///
/// Layout: `RTAB` magic, version byte, little-endian `u64` action count,
/// then the same 20-byte records as [`encode_binary`].  Unlike a full trace,
/// a batch may contain replies whose parents live in an earlier batch.
pub fn encode_batch(actions: &[Action]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 1 + 8 + actions.len() * 20);
    buf.put_slice(BATCH_MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(actions.len() as u64);
    for a in actions {
        buf.put_u64_le(a.id.0);
        buf.put_u32_le(a.user.0);
        buf.put_u64_le(a.parent.map_or(0, |p| p.0));
    }
    buf.freeze()
}

/// Decodes a stream fragment from the binary batch format.
///
/// Validation is the *per-fragment* subset of the stream invariants: ids
/// strictly increasing within the batch, every parent strictly earlier than
/// its action (`t' < t`), no mid-record truncation and no trailing bytes.
/// Parents are **not** required to be present in the batch — they may refer
/// to an earlier batch; resolving them is the consumer's job (the server's
/// engine thread remaps them per connection).
pub fn decode_batch(data: &[u8]) -> Result<Vec<Action>, TraceError> {
    let mut actions = Vec::new();
    decode_batch_into(data, &mut actions)?;
    Ok(actions)
}

/// Borrowing variant of [`decode_batch`]: parses the batch records
/// straight out of `data` (e.g. a network connection's read buffer)
/// into the caller-owned `out`, which is cleared first and whose
/// capacity is reused across calls.  This is the wire-ingest hot path:
/// no intermediate payload `Vec<u8>` and no fresh per-frame `Vec<Action>`
/// allocation once `out`'s capacity has warmed up.
pub fn decode_batch_into(data: &[u8], out: &mut Vec<Action>) -> Result<(), TraceError> {
    decode_records_into(BATCH_MAGIC, data, out)?;
    let actions: &[Action] = out;
    let mut last: Option<ActionId> = None;
    for a in actions {
        if let Some(prev) = last {
            if a.id <= prev {
                return Err(TraceError::Invalid(format!(
                    "batch ids must be strictly increasing: {} after {prev}",
                    a.id
                )));
            }
        }
        if let Some(parent) = a.parent {
            if parent >= a.id {
                return Err(TraceError::Invalid(format!(
                    "action {} replies to a non-earlier action {parent}",
                    a.id
                )));
            }
        }
        last = Some(a.id);
    }
    Ok(())
}

/// Writes the binary encoding to any writer (file, socket, …).
pub fn write_binary<W: Write>(stream: &SocialStream, mut writer: W) -> Result<(), TraceError> {
    writer.write_all(&encode_binary(stream))?;
    Ok(())
}

/// Reads the binary encoding from any reader.
pub fn read_binary<R: Read>(mut reader: R) -> Result<SocialStream, TraceError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    decode_binary(&data)
}

/// Writes the text format: a `# rtim-trace v1` header line, then one
/// `t,user,parent` line per action (`parent` empty for roots).
pub fn write_text<W: Write>(stream: &SocialStream, mut writer: W) -> Result<(), TraceError> {
    writeln!(writer, "# rtim-trace v1")?;
    for a in stream.iter() {
        match a.parent {
            Some(p) => writeln!(writer, "{},{},{}", a.id.0, a.user.0, p.0)?,
            None => writeln!(writer, "{},{},", a.id.0, a.user.0)?,
        }
    }
    Ok(())
}

/// Reads the text format (header line optional; blank lines and `#` comments
/// are ignored), validating invariants.
///
/// Built for messy real-trace exports: a UTF-8 byte-order mark on the first
/// line is stripped, Windows line endings are accepted (fields are trimmed),
/// and blank/comment lines still count toward line numbers.  Every error —
/// malformed fields, trailing garbage after the parent field, and structural
/// violations (non-increasing ids, unknown or future parents) — is reported
/// as [`TraceError::Invalid`] with the offending 1-based line number, so a
/// broken export can be fixed instead of guessed at.
pub fn read_text<R: Read>(reader: R) -> Result<SocialStream, TraceError> {
    let mut actions = Vec::new();
    let mut seen: HashSet<ActionId> = HashSet::new();
    let mut last: Option<ActionId> = None;
    for (line_idx, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = line_idx + 1;
        let invalid = |msg: String| TraceError::Invalid(format!("line {line_no}: {msg}"));
        let line = line?;
        let mut trimmed = line.trim();
        if line_idx == 0 {
            // Tolerate a UTF-8 BOM, common in spreadsheet exports.
            trimmed = trimmed.trim_start_matches('\u{feff}').trim();
        }
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split(',');
        let parse = |field: Option<&str>, what: &str| -> Result<u64, TraceError> {
            field
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| invalid(format!("missing {what}")))?
                .parse()
                .map_err(|_| invalid(format!("bad {what}")))
        };
        let id = ActionId(parse(parts.next(), "timestamp")?);
        let user = parse(parts.next(), "user")? as u32;
        let parent = match parts.next().map(str::trim) {
            None | Some("") => None,
            Some(p) => Some(ActionId(
                p.parse().map_err(|_| invalid("bad parent".into()))?,
            )),
        };
        if parts.next().is_some() {
            return Err(invalid(format!(
                "trailing garbage after the parent field: {trimmed:?}"
            )));
        }
        // Stream invariants, checked here (instead of deferring to
        // `SocialStream::new`) so the report carries the line number.
        if let Some(prev) = last {
            if id <= prev {
                return Err(invalid(format!(
                    "action ids must be strictly increasing: {id} after {prev}"
                )));
            }
        }
        if let Some(p) = parent {
            if p >= id {
                return Err(invalid(format!(
                    "action {id} replies to a non-earlier action {p}"
                )));
            }
            if !seen.contains(&p) {
                return Err(invalid(format!("action {id} replies to unknown action {p}")));
            }
        }
        seen.insert(id);
        last = Some(id);
        actions.push(Action {
            id,
            user: UserId(user),
            parent,
        });
    }
    // The inline checks above exist only to attach line numbers to the
    // known invariants; `SocialStream::new` stays the source of truth, so
    // any invariant added there later is still enforced here (its error
    // just lacks a line number until this loop learns about it).
    SocialStream::new(actions).map_err(TraceError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SocialStream {
        SocialStream::new(vec![
            Action::root(1u64, 1u32),
            Action::reply(2u64, 2u32, 1u64),
            Action::root(3u64, 3u32),
            Action::reply(5u64, 4u32, 3u64),
        ])
        .unwrap()
    }

    #[test]
    fn binary_round_trip_preserves_actions() {
        let stream = sample();
        let bytes = encode_binary(&stream);
        let decoded = decode_binary(&bytes).unwrap();
        assert_eq!(decoded.actions(), stream.actions());
        assert_eq!(bytes.len(), 13 + 20 * stream.len());
    }

    #[test]
    fn binary_rejects_bad_header_and_truncation() {
        let stream = sample();
        let bytes = encode_binary(&stream);
        assert!(matches!(decode_binary(b"nope"), Err(TraceError::BadHeader)));
        let mut corrupted = bytes.to_vec();
        corrupted[0] = b'X';
        assert!(matches!(decode_binary(&corrupted), Err(TraceError::BadHeader)));
        let truncated = &bytes[..bytes.len() - 5];
        assert!(matches!(decode_binary(truncated), Err(TraceError::Truncated)));
    }

    #[test]
    fn binary_rejects_invalid_traces() {
        // Craft a trace whose second action replies to the future.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u64_le(2);
        buf.put_u64_le(1);
        buf.put_u32_le(1);
        buf.put_u64_le(0);
        buf.put_u64_le(2);
        buf.put_u32_le(2);
        buf.put_u64_le(9); // parent in the future
        assert!(matches!(decode_binary(&buf), Err(TraceError::Invalid(_))));
    }

    #[test]
    fn text_round_trip_preserves_actions() {
        let stream = sample();
        let mut text = Vec::new();
        write_text(&stream, &mut text).unwrap();
        let decoded = read_text(text.as_slice()).unwrap();
        assert_eq!(decoded.actions(), stream.actions());
        let rendered = String::from_utf8(text).unwrap();
        assert!(rendered.contains("2,2,1"));
        assert!(rendered.contains("3,3,"));
    }

    #[test]
    fn text_reader_skips_comments_and_reports_errors() {
        let good = "# comment\n\n1,5,\n2,6,1\n";
        let decoded = read_text(good.as_bytes()).unwrap();
        assert_eq!(decoded.len(), 2);
        assert!(read_text("1,abc,\n".as_bytes()).is_err());
        assert!(read_text("1\n".as_bytes()).is_err());
        assert!(read_text("1,2,\n1,3,\n".as_bytes()).is_err()); // non-increasing
    }

    /// Messy real-world exports: UTF-8 BOM on the first line (before data
    /// or before a comment), CRLF line endings, padded fields.  All accepted
    /// — and line numbers stay accurate when such a file has an error.
    #[test]
    fn text_reader_tolerates_bom_crlf_and_padding() {
        let decoded = read_text("\u{feff}# exported\r\n1, 5 ,\r\n2,6, 1\r\n".as_bytes()).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded.actions()[1].parent, Some(ActionId(1)));
        let decoded = read_text("\u{feff}1,5,\n".as_bytes()).unwrap();
        assert_eq!(decoded.len(), 1);
        // A BOM'd, CRLF'd file still reports the right line on errors.
        let err = read_text("\u{feff}# h\r\n1,5,\r\nbogus\r\n".as_bytes())
            .unwrap_err()
            .to_string();
        assert!(err.contains("line 3:") && err.contains("bad timestamp"), "{err}");
    }

    /// Every text-format error carries the 1-based line number of the
    /// offending line (comments and blank lines still count).
    #[test]
    fn text_reader_errors_carry_line_numbers() {
        let cases = [
            ("# header\n1,5,\nbogus\n", 3, "bad timestamp"),
            ("1,5,\n\n2,abc,\n", 3, "bad user"),
            ("1,5,\n2,6,xyz\n", 2, "bad parent"),
            ("1,5,\n2,6,1\n2,7,\n", 3, "strictly increasing"),
            ("1,5,\n3,6,2\n", 2, "unknown action a2"),
            ("1,5,\n2,6,2\n", 2, "non-earlier action a2"),
        ];
        for (input, line, needle) in cases {
            let err = read_text(input.as_bytes()).unwrap_err().to_string();
            assert!(
                err.contains(&format!("line {line}:")) && err.contains(needle),
                "input {input:?} gave {err:?}"
            );
        }
    }

    /// Extra fields after the parent column are rejected, not silently
    /// dropped.
    #[test]
    fn text_reader_rejects_trailing_garbage() {
        let err = read_text("1,5,\n2,6,1,junk\n".as_bytes())
            .unwrap_err()
            .to_string();
        assert!(err.contains("line 2:") && err.contains("trailing garbage"), "{err}");
        // An empty fourth field is still garbage (an extra comma).
        assert!(read_text("1,5,,\n".as_bytes()).is_err());
    }

    /// Bytes left over after the declared record count are rejected, not
    /// silently ignored.
    #[test]
    fn binary_rejects_trailing_garbage() {
        let stream = sample();
        let mut bytes = encode_binary(&stream).to_vec();
        bytes.extend_from_slice(b"junk");
        let err = decode_binary(&bytes).unwrap_err().to_string();
        assert!(err.contains("4 trailing bytes"), "{err}");
    }

    /// Batches round-trip and accept parents outside the fragment (the
    /// cross-batch replies a full trace would reject).
    #[test]
    fn batch_round_trip_allows_external_parents() {
        let batch = vec![
            Action::reply(11u64, 4u32, 3u64), // parent in an earlier batch
            Action::root(12u64, 5u32),
            Action::reply(14u64, 6u32, 12u64), // parent inside this batch
        ];
        let bytes = encode_batch(&batch);
        assert_eq!(bytes.len(), 13 + 20 * batch.len());
        assert_eq!(decode_batch(&bytes).unwrap(), batch);
        // The same fragment is NOT a valid full trace.
        assert!(matches!(decode_binary(&bytes), Err(TraceError::BadHeader)));
    }

    #[test]
    fn batch_rejects_truncation_trailing_bytes_and_bad_order() {
        let batch = vec![Action::root(1u64, 1u32), Action::root(2u64, 2u32)];
        let bytes = encode_batch(&batch);
        assert!(matches!(decode_batch(b"nope"), Err(TraceError::BadHeader)));
        assert!(matches!(
            decode_batch(&bytes[..bytes.len() - 1]),
            Err(TraceError::Truncated)
        ));
        let mut trailing = bytes.to_vec();
        trailing.push(0);
        assert!(matches!(decode_batch(&trailing), Err(TraceError::Invalid(_))));
        // Non-increasing ids within the batch.
        let mut buf = BytesMut::new();
        buf.put_slice(b"RTAB");
        buf.put_u8(VERSION);
        buf.put_u64_le(2);
        for _ in 0..2 {
            buf.put_u64_le(7);
            buf.put_u32_le(1);
            buf.put_u64_le(0);
        }
        assert!(matches!(decode_batch(&buf), Err(TraceError::Invalid(_))));
        // A reply to the future.
        let mut buf = BytesMut::new();
        buf.put_slice(b"RTAB");
        buf.put_u8(VERSION);
        buf.put_u64_le(1);
        buf.put_u64_le(3);
        buf.put_u32_le(1);
        buf.put_u64_le(9);
        assert!(matches!(decode_batch(&buf), Err(TraceError::Invalid(_))));
    }

    /// A header whose declared count exceeds what the payload can hold is
    /// rejected before any allocation is sized from it.
    #[test]
    fn oversized_declared_count_is_rejected_cheaply() {
        for magic in [b"RTAS".as_slice(), b"RTAB".as_slice()] {
            let mut buf = BytesMut::new();
            buf.put_slice(magic);
            buf.put_u8(VERSION);
            buf.put_u64_le(u64::MAX); // would be a 300-exabyte allocation
            buf.put_u64_le(1);
            buf.put_u32_le(1);
            buf.put_u64_le(0);
            let err = if magic == b"RTAS" {
                decode_binary(&buf).unwrap_err()
            } else {
                decode_batch(&buf).map(|_| ()).unwrap_err()
            };
            assert!(matches!(err, TraceError::Truncated), "{err}");
        }
    }

    #[test]
    fn writer_reader_helpers_work_with_io_traits() {
        let stream = sample();
        let mut file = Vec::new();
        write_binary(&stream, &mut file).unwrap();
        let decoded = read_binary(file.as_slice()).unwrap();
        assert_eq!(decoded.len(), stream.len());
        let err = TraceError::from(io::Error::other("boom"));
        assert!(err.to_string().contains("boom"));
    }
}
