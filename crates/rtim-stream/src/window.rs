//! Sequence-based sliding window `W_t` over the action stream.
//!
//! `W_t` always contains the most recent `N` actions (fewer while the stream
//! is warming up).  The paper indexes actions inside the window as `W_t[i]`
//! with `i ≥ 1`; [`SlidingWindow::get`] follows the same 1-based convention.
//! Multi-action slides (`L > 1`, §5.3) are handled by
//! [`SlidingWindow::push_batch`].

use crate::action::{Action, ActionId, UserId};
use std::collections::{HashMap, VecDeque};

/// Result of pushing one or more actions into the window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlideOutcome {
    /// Actions that entered the window, in arrival order.
    pub arrived: Vec<Action>,
    /// Actions that were evicted because the window exceeded its capacity,
    /// in eviction (i.e. original arrival) order.
    pub expired: Vec<Action>,
}

/// The sliding window `W_t`: a bounded FIFO of the latest `N` actions with
/// an incrementally maintained multiset of *active users* `A_t` (users that
/// performed at least one action in the window).
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    capacity: usize,
    actions: VecDeque<Action>,
    /// user -> number of actions by that user currently in the window.
    active_counts: HashMap<UserId, u32>,
}

impl SlidingWindow {
    /// Creates a window holding at most `capacity` (= `N`) actions.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity N must be positive");
        SlidingWindow {
            capacity,
            actions: VecDeque::with_capacity(capacity.min(1 << 20)),
            active_counts: HashMap::new(),
        }
    }

    /// The configured window size `N`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of actions currently in the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `true` when no action has been observed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// `true` once the window has been fully populated (steady state).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.actions.len() == self.capacity
    }

    /// Timestamp of the most recent action, if any.
    pub fn latest_id(&self) -> Option<ActionId> {
        self.actions.back().map(|a| a.id)
    }

    /// Timestamp of the oldest action still inside the window, if any.
    pub fn oldest_id(&self) -> Option<ActionId> {
        self.actions.front().map(|a| a.id)
    }

    /// 1-based access `W_t[i]` following the paper's notation.
    pub fn get(&self, i: usize) -> Option<&Action> {
        if i == 0 {
            return None;
        }
        self.actions.get(i - 1)
    }

    /// Iterates over the window contents from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &Action> {
        self.actions.iter()
    }

    /// The set of active users `A_t` (users with ≥ 1 action in the window).
    pub fn active_users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.active_counts.keys().copied()
    }

    /// Number of distinct active users `|A_t|`.
    pub fn active_user_count(&self) -> usize {
        self.active_counts.len()
    }

    /// `true` if `user` performed at least one action in the window.
    pub fn is_active(&self, user: UserId) -> bool {
        self.active_counts.contains_key(&user)
    }

    /// Pushes a single action, returning the evicted action if the window
    /// was already full.
    pub fn push(&mut self, action: Action) -> Option<Action> {
        let evicted = if self.actions.len() == self.capacity {
            self.actions.pop_front()
        } else {
            None
        };
        if let Some(old) = evicted {
            self.decrement_user(old.user);
        }
        *self.active_counts.entry(action.user).or_insert(0) += 1;
        self.actions.push_back(action);
        evicted
    }

    /// Pushes a batch of `L` actions (one window slide with `L > 1`),
    /// returning both the arrived and the expired actions.
    pub fn push_batch(&mut self, batch: impl IntoIterator<Item = Action>) -> SlideOutcome {
        let mut outcome = SlideOutcome::default();
        for action in batch {
            if let Some(old) = self.push(action) {
                outcome.expired.push(old);
            }
            outcome.arrived.push(action);
        }
        outcome
    }

    fn decrement_user(&mut self, user: UserId) {
        if let Some(c) = self.active_counts.get_mut(&user) {
            *c -= 1;
            if *c == 0 {
                self.active_counts.remove(&user);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_actions() -> Vec<Action> {
        vec![
            Action::root(1u64, 1u32),
            Action::reply(2u64, 2u32, 1u64),
            Action::root(3u64, 3u32),
            Action::reply(4u64, 3u32, 1u64),
            Action::reply(5u64, 4u32, 3u64),
            Action::reply(6u64, 1u32, 3u64),
            Action::reply(7u64, 5u32, 3u64),
            Action::reply(8u64, 4u32, 7u64),
            Action::root(9u64, 2u32),
            Action::reply(10u64, 6u32, 9u64),
        ]
    }

    #[test]
    fn window_keeps_latest_n_actions() {
        let mut w = SlidingWindow::new(8);
        let actions = figure1_actions();
        for a in &actions[..8] {
            assert!(w.push(*a).is_none());
        }
        assert!(w.is_full());
        assert_eq!(w.oldest_id(), Some(ActionId(1)));
        assert_eq!(w.latest_id(), Some(ActionId(8)));

        // Sliding to W_10 evicts a1 and a2 (Example 1).
        let e1 = w.push(actions[8]).unwrap();
        let e2 = w.push(actions[9]).unwrap();
        assert_eq!(e1.id, ActionId(1));
        assert_eq!(e2.id, ActionId(2));
        assert_eq!(w.oldest_id(), Some(ActionId(3)));
        assert_eq!(w.latest_id(), Some(ActionId(10)));
        assert_eq!(w.len(), 8);
    }

    #[test]
    fn one_based_indexing_matches_paper() {
        let mut w = SlidingWindow::new(8);
        for a in figure1_actions().into_iter().take(8) {
            w.push(a);
        }
        assert_eq!(w.get(1).unwrap().id, ActionId(1));
        assert_eq!(w.get(8).unwrap().id, ActionId(8));
        assert!(w.get(0).is_none());
        assert!(w.get(9).is_none());
    }

    #[test]
    fn active_users_track_window_contents() {
        let mut w = SlidingWindow::new(8);
        let actions = figure1_actions();
        for a in &actions[..8] {
            w.push(*a);
        }
        // A_8 = {u1..u5}
        assert_eq!(w.active_user_count(), 5);
        assert!(w.is_active(UserId(1)));
        assert!(!w.is_active(UserId(6)));

        w.push(actions[8]);
        w.push(actions[9]);
        // A_10 = {u1..u6}: u1 still active via a6, u6 joins via a10.
        assert_eq!(w.active_user_count(), 6);
        assert!(w.is_active(UserId(6)));
        assert!(w.is_active(UserId(1)));
    }

    #[test]
    fn push_batch_reports_arrivals_and_expiries() {
        let mut w = SlidingWindow::new(4);
        let out = w.push_batch((1..=4u64).map(|t| Action::root(t, t as u32)));
        assert_eq!(out.arrived.len(), 4);
        assert!(out.expired.is_empty());

        let out = w.push_batch((5..=7u64).map(|t| Action::root(t, t as u32)));
        assert_eq!(out.arrived.len(), 3);
        assert_eq!(out.expired.len(), 3);
        assert_eq!(out.expired[0].id, ActionId(1));
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn empty_window_queries_are_safe() {
        let w = SlidingWindow::new(3);
        assert!(w.is_empty());
        assert!(!w.is_full());
        assert_eq!(w.latest_id(), None);
        assert_eq!(w.oldest_id(), None);
        assert_eq!(w.active_user_count(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_is_rejected() {
        let _ = SlidingWindow::new(0);
    }
}
