//! The `RTTR` trace codec: fixed-size binary trace events, slow-op
//! records and the bounded dump the `TRACE` wire command drains.
//!
//! `RTAS`/`RTAB` persist streams and `RTSS` persists state; the flight
//! recorder (`rtim_core::trace`) needs a third, much smaller codec: a
//! **typed binary dump** of its in-memory rings that survives a wire hop
//! (`TRACE` → `0x86` reply) and a CLI render without re-interpretation.
//! Events are a fixed 32 bytes so the recorder can store them in
//! lock-free word-granular ring slots and the codec can size its
//! allocations from the declared counts without trusting them beyond the
//! input length (the same hostile-length discipline as the `RTSS`
//! [`ByteReader`](crate::persist::state::ByteReader)).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "RTTR" | version u8 | flags u8 | reserved u16
//! event_count u32 | slow_count u32
//! stage_totals: STAGE_COUNT × (count u64, nanos u64)
//! events:    event_count × 32 bytes   (TraceEvent::encode)
//! slow ops:  slow_count  × 96 bytes   (SlowOp::encode)
//! ```
//!
//! Decoding is panic-free: truncation at any byte offset is reported as
//! [`TraceCodecError::Truncated`] (property-tested in
//! `tests/trace_codec_props.rs`, matching the persist-codec test style).

/// Magic bytes of the trace-dump format ("RTTR" = RTim TRace).
pub const TRACE_MAGIC: &[u8; 4] = b"RTTR";

/// Schema version of the trace-dump format.
pub const TRACE_VERSION: u8 = 1;

/// Encoded size of one [`TraceEvent`].
pub const TRACE_EVENT_BYTES: usize = 32;

/// Encoded size of one [`SlowOp`] record.
pub const SLOW_OP_BYTES: usize = 8 + 4 + 1 + 3 + 8 + 8 + 8 * SLOW_STAGES;

/// Stages carried in a slow-op breakdown (indices `0..SLOW_STAGES` of the
/// [`TraceStage`] wire codes).
pub const SLOW_STAGES: usize = 8;

/// Number of distinct stage/event codes (span stages + lifecycle events).
pub const STAGE_COUNT: usize = 12;

/// Pipeline stage / lifecycle event taxonomy.
///
/// Codes `0..SLOW_STAGES` are request-pipeline span stages (the ones a
/// slow-op breakdown indexes); codes from [`TraceStage::Degrade`] up are
/// durability/lifecycle events recorded as zero- or span-duration
/// black-box markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TraceStage {
    /// Socket readable → frame parsed (front-end).
    Parse = 0,
    /// Enqueue → dequeue wait in the bounded command queue.
    QueueWait = 1,
    /// Journal append ahead of the ingest (durable configurations).
    JournalAppend = 2,
    /// Ancestry resolution + interning over the batch (engine thread).
    Resolve = 3,
    /// Window maintenance + framework checkpoint fan-out per slide.
    ShardFeed = 4,
    /// Engine-side service of a `QUERY` (oracle answer assembly).
    OracleQuery = 5,
    /// Snapshot rotation + background-writer dispatch.
    SnapshotDispatch = 6,
    /// Reply bytes fully drained to the socket (front-end).
    ReplyDrain = 7,
    /// One shard worker's slice of a slide feed (reported back with the
    /// pool's `Fed` replies; `aux` carries the worker index).
    ShardSpan = 8,
    /// Durability degraded to serve-from-memory (`aux` = wire cause code).
    Degrade = 9,
    /// Durability re-armed after a degrade (`aux` = lost batches, capped).
    Rearm = 10,
    /// Journal segment rotation under a snapshot, or an adaptive-placement
    /// checkpoint migration (`aux` distinguishes: 0 = rotation,
    /// 1 = migration).
    Lifecycle = 11,
}

impl TraceStage {
    /// All stages, in wire-code order.
    pub const ALL: [TraceStage; STAGE_COUNT] = [
        TraceStage::Parse,
        TraceStage::QueueWait,
        TraceStage::JournalAppend,
        TraceStage::Resolve,
        TraceStage::ShardFeed,
        TraceStage::OracleQuery,
        TraceStage::SnapshotDispatch,
        TraceStage::ReplyDrain,
        TraceStage::ShardSpan,
        TraceStage::Degrade,
        TraceStage::Rearm,
        TraceStage::Lifecycle,
    ];

    /// The stage's wire code (also its index into stage-total arrays).
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a wire code (`None` for unknown codes).
    pub fn from_code(code: u8) -> Option<TraceStage> {
        TraceStage::ALL.get(code as usize).copied()
    }

    /// Stable lower-snake name used by `/trace` JSON lines and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::Parse => "parse",
            TraceStage::QueueWait => "queue_wait",
            TraceStage::JournalAppend => "journal_append",
            TraceStage::Resolve => "resolve",
            TraceStage::ShardFeed => "shard_feed",
            TraceStage::OracleQuery => "oracle_query",
            TraceStage::SnapshotDispatch => "snapshot_dispatch",
            TraceStage::ReplyDrain => "reply_drain",
            TraceStage::ShardSpan => "shard_span",
            TraceStage::Degrade => "degrade",
            TraceStage::Rearm => "rearm",
            TraceStage::Lifecycle => "lifecycle",
        }
    }
}

/// One fixed-size flight-recorder event.
///
/// `nanos` is the event's **end** time in nanoseconds since the
/// recorder's epoch (a per-process monotonic instant), so
/// `nanos - duration_nanos` is its start.  `conn` is the front-end
/// connection id (or engine source id; `u64::MAX` when not applicable),
/// `corr` the request's correlation id (`u32::MAX` when absent), `lane`
/// the recorder ring the event was written to (one per writer thread) and
/// `aux` a small stage-specific payload (shard index, degrade cause, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// End time: monotonic nanoseconds since the recorder epoch.
    pub nanos: u64,
    /// Span duration in nanoseconds (0 for point events).
    pub duration_nanos: u64,
    /// Connection / source id (`u64::MAX` = none).
    pub conn: u64,
    /// Correlation id (`u32::MAX` = none).
    pub corr: u32,
    /// Stage wire code (see [`TraceStage`]).
    pub stage: u8,
    /// Writer lane (per-thread ring index).
    pub lane: u8,
    /// Stage-specific small payload.
    pub aux: u16,
}

impl TraceEvent {
    /// Packs the event into 4 little-endian words (the ring-slot form;
    /// word 3 packs `corr | stage<<32 | lane<<40 | aux<<48`).
    pub fn to_words(self) -> [u64; 4] {
        [
            self.nanos,
            self.duration_nanos,
            self.conn,
            u64::from(self.corr)
                | (u64::from(self.stage) << 32)
                | (u64::from(self.lane) << 40)
                | (u64::from(self.aux) << 48),
        ]
    }

    /// Unpacks an event from its 4-word ring-slot form.
    pub fn from_words(words: [u64; 4]) -> TraceEvent {
        TraceEvent {
            nanos: words[0],
            duration_nanos: words[1],
            conn: words[2],
            corr: words[3] as u32,
            stage: (words[3] >> 32) as u8,
            lane: (words[3] >> 40) as u8,
            aux: (words[3] >> 48) as u16,
        }
    }

    /// Appends the 32-byte wire form.
    pub fn encode_into(self, out: &mut Vec<u8>) {
        for w in self.to_words() {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    fn decode(bytes: &[u8]) -> TraceEvent {
        debug_assert_eq!(bytes.len(), TRACE_EVENT_BYTES);
        let mut words = [0u64; 4];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8-byte chunk"));
        }
        TraceEvent::from_words(words)
    }
}

/// A promoted slow operation: the full per-stage breakdown of one request
/// whose end-to-end span exceeded the configured threshold.
///
/// `stages[i]` is the nanoseconds spent in the stage with wire code `i`
/// (`0..SLOW_STAGES`); stages the request never entered stay 0, and the
/// stage sum is always ≤ `total_nanos` (the remainder is time between
/// instrumented stages, e.g. the reply still sitting in the out-buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowOp {
    /// Connection / source id of the slow request.
    pub conn: u64,
    /// Correlation id (`u32::MAX` = none).
    pub corr: u32,
    /// Request kind: the protocol tag of the triggering frame
    /// (`0x01` ingest, `0x02` query, `0x03` stats).
    pub kind: u8,
    /// Start time: monotonic nanoseconds since the recorder epoch.
    pub start_nanos: u64,
    /// End-to-end span in nanoseconds.
    pub total_nanos: u64,
    /// Per-stage nanoseconds, indexed by stage wire code.
    pub stages: [u64; SLOW_STAGES],
}

impl SlowOp {
    /// Appends the 96-byte wire form.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.conn.to_le_bytes());
        out.extend_from_slice(&self.corr.to_le_bytes());
        out.push(self.kind);
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&self.start_nanos.to_le_bytes());
        out.extend_from_slice(&self.total_nanos.to_le_bytes());
        for s in self.stages {
            out.extend_from_slice(&s.to_le_bytes());
        }
    }

    fn decode(bytes: &[u8]) -> SlowOp {
        debug_assert_eq!(bytes.len(), SLOW_OP_BYTES);
        let u64_at = |o: usize| {
            u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8-byte field"))
        };
        let mut stages = [0u64; SLOW_STAGES];
        for (i, s) in stages.iter_mut().enumerate() {
            *s = u64_at(32 + i * 8);
        }
        SlowOp {
            conn: u64_at(0),
            corr: u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte field")),
            kind: bytes[12],
            start_nanos: u64_at(16),
            total_nanos: u64_at(24),
            stages,
        }
    }
}

/// A bounded snapshot of the flight recorder: ring events (oldest first
/// per lane), retained slow ops, and the recorder's cumulative per-stage
/// totals (count, nanos) — everything the `TRACE` reply, `GET /trace` and
/// `rtim-cli trace` render from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceDump {
    /// Ring events, ordered by `(lane, nanos)`.
    pub events: Vec<TraceEvent>,
    /// Retained slow-op records, oldest first.
    pub slow_ops: Vec<SlowOp>,
    /// Cumulative `(events recorded, nanos spanned)` per stage wire code,
    /// since the recorder was created (not limited to the ring window).
    pub stage_totals: [(u64, u64); STAGE_COUNT],
}

/// Errors produced while decoding a trace dump.
#[derive(Debug, PartialEq, Eq)]
pub enum TraceCodecError {
    /// The input does not start with the `RTTR` magic.
    BadHeader,
    /// The input declares a schema version this build cannot read.
    UnsupportedVersion(u8),
    /// The input ended before the declared counts were satisfied.
    Truncated,
}

impl std::fmt::Display for TraceCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceCodecError::BadHeader => write!(f, "not an RTTR trace dump (bad header)"),
            TraceCodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported RTTR schema version {v}")
            }
            TraceCodecError::Truncated => write!(f, "trace dump truncated mid-field"),
        }
    }
}

impl std::error::Error for TraceCodecError {}

impl TraceDump {
    /// Encodes the dump (see the [module docs](self) for the layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            12 + STAGE_COUNT * 16
                + self.events.len() * TRACE_EVENT_BYTES
                + self.slow_ops.len() * SLOW_OP_BYTES,
        );
        out.extend_from_slice(TRACE_MAGIC);
        out.push(TRACE_VERSION);
        out.push(0); // flags
        out.extend_from_slice(&[0u8; 2]); // reserved
        out.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.slow_ops.len() as u32).to_le_bytes());
        for (count, nanos) in self.stage_totals {
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(&nanos.to_le_bytes());
        }
        for event in &self.events {
            event.encode_into(&mut out);
        }
        for op in &self.slow_ops {
            op.encode_into(&mut out);
        }
        out
    }

    /// Decodes a dump, never panicking on truncated or hostile input:
    /// declared counts are validated against the bytes actually present
    /// before any allocation is sized from them.
    pub fn decode(bytes: &[u8]) -> Result<TraceDump, TraceCodecError> {
        if bytes.len() < 4 {
            return Err(TraceCodecError::Truncated);
        }
        if &bytes[..4] != TRACE_MAGIC {
            return Err(TraceCodecError::BadHeader);
        }
        if bytes.len() < 16 {
            return Err(TraceCodecError::Truncated);
        }
        if bytes[4] != TRACE_VERSION {
            return Err(TraceCodecError::UnsupportedVersion(bytes[4]));
        }
        // Header: magic 0..4, version 4, flags 5, reserved 6..8,
        // event_count 8..12, slow_count 12..16.
        let event_count =
            u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte field")) as usize;
        let slow_count =
            u32::from_le_bytes(bytes[12..16].try_into().expect("4-byte field")) as usize;
        let totals_bytes = STAGE_COUNT * 16;
        let body = event_count
            .checked_mul(TRACE_EVENT_BYTES)
            .and_then(|e| {
                slow_count
                    .checked_mul(SLOW_OP_BYTES)
                    .and_then(|s| e.checked_add(s))
            })
            .and_then(|b| b.checked_add(16 + totals_bytes))
            .ok_or(TraceCodecError::Truncated)?;
        if bytes.len() < body {
            return Err(TraceCodecError::Truncated);
        }
        let mut stage_totals = [(0u64, 0u64); STAGE_COUNT];
        let mut offset = 16usize;
        for slot in stage_totals.iter_mut() {
            let count =
                u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8-byte field"));
            let nanos = u64::from_le_bytes(
                bytes[offset + 8..offset + 16].try_into().expect("8-byte field"),
            );
            *slot = (count, nanos);
            offset += 16;
        }
        let mut events = Vec::with_capacity(event_count);
        for _ in 0..event_count {
            events.push(TraceEvent::decode(&bytes[offset..offset + TRACE_EVENT_BYTES]));
            offset += TRACE_EVENT_BYTES;
        }
        let mut slow_ops = Vec::with_capacity(slow_count);
        for _ in 0..slow_count {
            slow_ops.push(SlowOp::decode(&bytes[offset..offset + SLOW_OP_BYTES]));
            offset += SLOW_OP_BYTES;
        }
        Ok(TraceDump {
            events,
            slow_ops,
            stage_totals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(nanos: u64, stage: TraceStage) -> TraceEvent {
        TraceEvent {
            nanos,
            duration_nanos: nanos / 2,
            conn: 7,
            corr: 42,
            stage: stage.code(),
            lane: 3,
            aux: 9,
        }
    }

    #[test]
    fn event_words_round_trip_all_fields() {
        let e = TraceEvent {
            nanos: u64::MAX - 1,
            duration_nanos: 12345,
            conn: u64::MAX,
            corr: u32::MAX,
            stage: TraceStage::Lifecycle.code(),
            lane: 255,
            aux: u16::MAX,
        };
        assert_eq!(TraceEvent::from_words(e.to_words()), e);
    }

    #[test]
    fn dump_round_trips() {
        let mut dump = TraceDump {
            events: vec![event(10, TraceStage::Parse), event(20, TraceStage::ShardFeed)],
            slow_ops: vec![SlowOp {
                conn: 1,
                corr: 2,
                kind: 0x01,
                start_nanos: 5,
                total_nanos: 100,
                stages: [1, 2, 3, 4, 5, 6, 7, 8],
            }],
            stage_totals: [(0, 0); STAGE_COUNT],
        };
        dump.stage_totals[TraceStage::Parse.code() as usize] = (2, 30);
        let bytes = dump.encode();
        assert_eq!(TraceDump::decode(&bytes).unwrap(), dump);
    }

    #[test]
    fn empty_dump_round_trips() {
        let dump = TraceDump::default();
        assert_eq!(TraceDump::decode(&dump.encode()).unwrap(), dump);
    }

    #[test]
    fn stage_codes_are_dense_and_named() {
        for (i, stage) in TraceStage::ALL.iter().enumerate() {
            assert_eq!(stage.code() as usize, i);
            assert_eq!(TraceStage::from_code(stage.code()), Some(*stage));
            assert!(!stage.name().is_empty());
        }
        assert_eq!(TraceStage::from_code(STAGE_COUNT as u8), None);
    }

    #[test]
    fn hostile_counts_cannot_oversize_allocations() {
        // A header declaring u32::MAX events must fail on the length
        // check, not attempt a 128 GiB allocation.
        let mut bytes = TraceDump::default().encode();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(TraceDump::decode(&bytes), Err(TraceCodecError::Truncated));
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        assert_eq!(TraceDump::decode(b"NOPE00000000"), Err(TraceCodecError::BadHeader));
        let mut bytes = TraceDump::default().encode();
        bytes[4] = 99;
        assert_eq!(
            TraceDump::decode(&bytes),
            Err(TraceCodecError::UnsupportedVersion(99))
        );
    }
}
