//! The `RTSS` state codec: versioned, CRC-checked sections for durable
//! engine snapshots.
//!
//! `RTAS`/`RTAB` persist *streams*; a crash-recoverable server additionally
//! needs to persist *state* — influence sets, coverage bitmaps, oracle
//! instances, the propagation index.  This module provides the byte-level
//! substrate every state codec in the workspace builds on:
//!
//! * the **section framework**: an `RTSS` document is a magic + schema
//!   version header followed by tagged sections, each carrying its length
//!   and a CRC-32 of its payload, so a torn write or bit rot is detected
//!   before any payload byte is interpreted;
//! * a panic-free [`ByteReader`] with typed [`StateError`]s (truncation,
//!   corruption) and allocation guards — a hostile length field can never
//!   size an allocation beyond what the input actually holds, plus an
//!   absolute single-allocation ceiling of 64 ×
//!   [`MAX_FRAME_BYTES`](super::MAX_FRAME_BYTES) (snapshot-scale arrays
//!   are legitimately larger than one wire frame; the input-size bound is
//!   the operative guard);
//! * codecs for this crate's state-bearing types: [`InfluenceSet`] (both
//!   representations preserved exactly), [`InfluenceSets`], action lists
//!   (window contents) and the [`PropagationIndex`].
//!
//! Higher layers (`rtim-submodular` oracle states, `rtim-core`'s
//! `EngineSnapshot`) compose these primitives; the full document layout is
//! specified in `docs/RECOVERY.md`.
//!
//! Floats are serialized as IEEE-754 bit patterns (`f64::to_bits`), never
//! re-parsed through text, so cached accumulations survive a round trip
//! bit-exactly — a restored engine must answer **bit-identically** to one
//! that never stopped.

use super::MAX_FRAME_BYTES;
use crate::action::{Action, ActionId, UserId};
use crate::influence::InfluenceSets;
use crate::influence_set::{InfluenceSet, SetView};
use crate::propagation::{PropagationIndex, PropagationStats};
use std::io;

/// Magic bytes of the state-snapshot format ("RTSS" = RTim State Snapshot).
pub const STATE_MAGIC: &[u8; 4] = b"RTSS";

/// Schema version of the state-snapshot format.
pub const STATE_VERSION: u8 = 1;

/// Bytes of a section header: 4-byte tag, `u64` payload length, `u32` CRC.
const SECTION_HEADER_BYTES: usize = 4 + 8 + 4;

/// Errors produced while decoding persisted state.
///
/// Every decoding failure is reported through this type — the state codecs
/// never panic on hostile input (property-tested in
/// `tests/state_props.rs`).
#[derive(Debug)]
pub enum StateError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The document does not start with the `RTSS` magic.
    BadHeader,
    /// The document declares a schema version this build cannot read.
    UnsupportedVersion(u8),
    /// The input ended in the middle of a header, section or field.
    Truncated,
    /// A section's payload does not match its recorded CRC-32.
    CrcMismatch {
        /// Tag of the corrupt section.
        tag: [u8; 4],
    },
    /// A required section is absent.
    MissingSection([u8; 4]),
    /// A structural invariant is violated; the message names the first
    /// violation.
    Corrupt(String),
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Io(e) => write!(f, "I/O error: {e}"),
            StateError::BadHeader => write!(f, "not an RTSS state snapshot (bad header)"),
            StateError::UnsupportedVersion(v) => {
                write!(f, "unsupported RTSS schema version {v}")
            }
            StateError::Truncated => write!(f, "state snapshot truncated mid-field"),
            StateError::CrcMismatch { tag } => {
                write!(f, "CRC mismatch in section {}", tag_name(tag))
            }
            StateError::MissingSection(tag) => {
                write!(f, "required section {} is missing", tag_name(tag))
            }
            StateError::Corrupt(msg) => write!(f, "corrupt state snapshot: {msg}"),
        }
    }
}

impl std::error::Error for StateError {}

impl From<io::Error> for StateError {
    fn from(e: io::Error) -> Self {
        StateError::Io(e)
    }
}

/// Renders a section tag for error messages (lossy for non-ASCII tags).
fn tag_name(tag: &[u8; 4]) -> String {
    tag.iter()
        .map(|&b| {
            if b.is_ascii_graphic() {
                b as char
            } else {
                '?'
            }
        })
        .collect()
}

/// CRC-32 (IEEE 802.3 polynomial) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut j = 0;
        while j < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            j += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data` — the per-section checksum of the RTSS format.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Assembles an `RTSS` document section by section.
///
/// ```
/// use rtim_stream::persist::state::{StateWriter, StateDocument};
///
/// let mut w = StateWriter::new();
/// w.section(*b"DEMO").extend_from_slice(&42u64.to_le_bytes());
/// let bytes = w.finish();
/// let doc = StateDocument::parse(&bytes).unwrap();
/// assert_eq!(doc.section(*b"DEMO").unwrap(), 42u64.to_le_bytes());
/// ```
#[derive(Debug, Default)]
pub struct StateWriter {
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl StateWriter {
    /// Creates an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new section and returns its payload buffer.
    pub fn section(&mut self, tag: [u8; 4]) -> &mut Vec<u8> {
        self.sections.push((tag, Vec::new()));
        &mut self.sections.last_mut().expect("just pushed").1
    }

    /// Serializes the document: header, then every section with its CRC.
    pub fn finish(self) -> Vec<u8> {
        let payload_bytes: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        let mut out =
            Vec::with_capacity(9 + self.sections.len() * SECTION_HEADER_BYTES + payload_bytes);
        out.extend_from_slice(STATE_MAGIC);
        out.push(STATE_VERSION);
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (tag, payload) in &self.sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }
}

/// One parsed section of an `RTSS` document (CRC already verified).
#[derive(Debug, Clone, Copy)]
pub struct Section<'a> {
    /// The 4-byte section tag.
    pub tag: [u8; 4],
    /// The section payload.
    pub payload: &'a [u8],
}

/// A parsed `RTSS` document: header validated, every section's length and
/// CRC checked.  Unknown tags are retained (forward compatibility — readers
/// pick the sections they understand).
#[derive(Debug)]
pub struct StateDocument<'a> {
    sections: Vec<Section<'a>>,
}

impl<'a> StateDocument<'a> {
    /// Parses and verifies a document.
    ///
    /// Every declared length is checked against the bytes actually present
    /// *before* any slice is taken, and every section CRC is verified, so a
    /// truncated or corrupted file is a typed error, never a panic.
    pub fn parse(data: &'a [u8]) -> Result<StateDocument<'a>, StateError> {
        if data.len() < 4 || &data[..4] != STATE_MAGIC {
            return Err(StateError::BadHeader);
        }
        if data.len() < 9 {
            return Err(StateError::Truncated);
        }
        if data[4] != STATE_VERSION {
            return Err(StateError::UnsupportedVersion(data[4]));
        }
        let count = u32::from_le_bytes(data[5..9].try_into().expect("4 bytes")) as usize;
        // A hostile count cannot drive allocation past what the input holds:
        // each section costs at least its header.
        if count > data.len().saturating_sub(9) / SECTION_HEADER_BYTES {
            return Err(StateError::Truncated);
        }
        let mut sections = Vec::with_capacity(count);
        let mut rest = &data[9..];
        for _ in 0..count {
            if rest.len() < SECTION_HEADER_BYTES {
                return Err(StateError::Truncated);
            }
            let tag: [u8; 4] = rest[..4].try_into().expect("4 bytes");
            let len = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
            let crc = u32::from_le_bytes(rest[12..16].try_into().expect("4 bytes"));
            rest = &rest[SECTION_HEADER_BYTES..];
            if len > rest.len() as u64 {
                return Err(StateError::Truncated);
            }
            let payload = &rest[..len as usize];
            rest = &rest[len as usize..];
            if crc32(payload) != crc {
                return Err(StateError::CrcMismatch { tag });
            }
            sections.push(Section { tag, payload });
        }
        if !rest.is_empty() {
            return Err(StateError::Corrupt(format!(
                "{} trailing bytes after the declared sections",
                rest.len()
            )));
        }
        Ok(StateDocument { sections })
    }

    /// The payload of the first section with `tag`.
    pub fn section(&self, tag: [u8; 4]) -> Result<&'a [u8], StateError> {
        self.sections
            .iter()
            .find(|s| s.tag == tag)
            .map(|s| s.payload)
            .ok_or(StateError::MissingSection(tag))
    }

    /// All sections, in document order.
    pub fn sections(&self) -> &[Section<'a>] {
        &self.sections
    }
}

/// A panic-free little-endian reader over a byte slice.
///
/// Every accessor returns [`StateError::Truncated`] instead of slicing out
/// of bounds; [`ByteReader::array_len`] bounds count-driven allocations by
/// the bytes actually remaining.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.data.len()
    }

    /// `true` once every byte has been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Consumes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StateError> {
        if self.data.len() < n {
            return Err(StateError::Truncated);
        }
        let (head, rest) = self.data.split_at(n);
        self.data = rest;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, StateError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StateError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StateError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, StateError> {
        Ok(self.u64()? as i64)
    }

    /// Reads an `f64` stored as its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a user id (`u32`).
    pub fn user(&mut self) -> Result<UserId, StateError> {
        Ok(UserId(self.u32()?))
    }

    /// Validates a declared element count against the bytes remaining
    /// (`elem_bytes` per element), returning it as a `usize` safe to pass
    /// to `Vec::with_capacity`.
    ///
    /// The operative guard is the input size: a count cannot demand more
    /// elements than the remaining bytes can encode.  On top of that sits
    /// an absolute single-allocation ceiling of 64 × [`MAX_FRAME_BYTES`]
    /// (2 GiB) — wider than the wire protocol's per-frame cap on purpose,
    /// because snapshot-scale arrays (a dense weight table or propagation
    /// index for millions of users) legitimately exceed one frame, but
    /// nothing legitimate approaches the ceiling.
    pub fn array_len(&self, count: u64, elem_bytes: usize) -> Result<usize, StateError> {
        let elem_bytes = elem_bytes.max(1) as u64;
        if count > self.remaining() as u64 / elem_bytes {
            return Err(StateError::Truncated);
        }
        if count.saturating_mul(elem_bytes) > MAX_FRAME_BYTES as u64 * 64 {
            return Err(StateError::Corrupt(format!(
                "declared array of {count} elements exceeds the allocation cap"
            )));
        }
        Ok(count as usize)
    }

    /// Asserts that every byte has been consumed.
    pub fn finish(self) -> Result<(), StateError> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(StateError::Corrupt(format!(
                "{} trailing bytes after the declared structure",
                self.data.len()
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Codecs for this crate's state-bearing types.
// ---------------------------------------------------------------------------

/// Representation tags of a serialized [`InfluenceSet`].
const SET_SMALL: u8 = 0;
const SET_BITS: u8 = 1;

/// Encodes an [`InfluenceSet`], preserving its exact representation (a
/// restored set must not only hold the same users but also keep the same
/// small-vec/bitmap layout, so memory behaviour survives a restore).
pub fn encode_influence_set(set: &InfluenceSet, out: &mut Vec<u8>) {
    match set.view() {
        SetView::Small(users) => {
            out.push(SET_SMALL);
            out.extend_from_slice(&(users.len() as u32).to_le_bytes());
            for u in users {
                out.extend_from_slice(&u.0.to_le_bytes());
            }
        }
        SetView::Bits(words) => {
            out.push(SET_BITS);
            out.extend_from_slice(&(words.len() as u32).to_le_bytes());
            for w in words {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
    }
}

/// Decodes an [`InfluenceSet`], validating the small representation's
/// sorted-deduplicated invariant.
pub fn decode_influence_set(r: &mut ByteReader<'_>) -> Result<InfluenceSet, StateError> {
    match r.u8()? {
        SET_SMALL => {
            let declared = r.u32()? as u64;
            let count = r.array_len(declared, 4)?;
            let mut users = Vec::with_capacity(count);
            let mut last: Option<UserId> = None;
            for _ in 0..count {
                let u = r.user()?;
                if let Some(prev) = last {
                    if u <= prev {
                        return Err(StateError::Corrupt(format!(
                            "influence-set ids must be strictly ascending: {u} after {prev}"
                        )));
                    }
                }
                last = Some(u);
                users.push(u);
            }
            Ok(InfluenceSet::from_sorted_vec(users))
        }
        SET_BITS => {
            let declared = r.u32()? as u64;
            let count = r.array_len(declared, 8)?;
            let mut words = Vec::with_capacity(count);
            for _ in 0..count {
                words.push(r.u64()?);
            }
            Ok(InfluenceSet::from_words(words))
        }
        other => Err(StateError::Corrupt(format!(
            "unknown influence-set representation tag {other}"
        ))),
    }
}

/// Encodes an [`InfluenceSets`] collection, sorted by user id so the
/// encoding is deterministic (hash-map iteration order never leaks into the
/// bytes — equal state always produces equal documents).
pub fn encode_influence_sets(sets: &InfluenceSets, out: &mut Vec<u8>) {
    let mut users: Vec<UserId> = sets.users().collect();
    users.sort_unstable();
    out.extend_from_slice(&(users.len() as u32).to_le_bytes());
    for u in users {
        out.extend_from_slice(&u.0.to_le_bytes());
        encode_influence_set(sets.get(u).expect("listed user has a set"), out);
    }
}

/// Decodes an [`InfluenceSets`] collection.
pub fn decode_influence_sets(r: &mut ByteReader<'_>) -> Result<InfluenceSets, StateError> {
    // A user entry costs at least 4 (id) + 5 (empty set) bytes.
    let declared = r.u32()? as u64;
    let count = r.array_len(declared, 9)?;
    let mut sets = InfluenceSets::new();
    for _ in 0..count {
        let user = r.user()?;
        let set = decode_influence_set(r)?;
        if sets.insert_set(user, set).is_some() {
            return Err(StateError::Corrupt(format!(
                "duplicate influence-set entry for {user}"
            )));
        }
    }
    Ok(sets)
}

/// Encodes a list of actions as the 20-byte records shared with
/// `RTAS`/`RTAB` (`id: u64`, `user: u32`, `parent: u64`, 0 = root).
pub fn encode_actions<'a>(actions: impl IntoIterator<Item = &'a Action>, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&0u64.to_le_bytes());
    let mut count = 0u64;
    for a in actions {
        out.extend_from_slice(&a.id.0.to_le_bytes());
        out.extend_from_slice(&a.user.0.to_le_bytes());
        out.extend_from_slice(&a.parent.map_or(0, |p| p.0).to_le_bytes());
        count += 1;
    }
    out[start..start + 8].copy_from_slice(&count.to_le_bytes());
}

/// Decodes a list of actions (no cross-action validation — the caller owns
/// the context-specific invariants, e.g. window ordering).
pub fn decode_actions(r: &mut ByteReader<'_>) -> Result<Vec<Action>, StateError> {
    let declared = r.u64()?;
    let count = r.array_len(declared, 20)?;
    let mut actions = Vec::with_capacity(count);
    for _ in 0..count {
        let id = r.u64()?;
        let user = r.u32()?;
        let parent = r.u64()?;
        actions.push(Action {
            id: ActionId(id),
            user: UserId(user),
            parent: if parent == 0 { None } else { Some(ActionId(parent)) },
        });
    }
    Ok(actions)
}

/// Encodes the full state of a [`PropagationIndex`] (records sorted by
/// action id for deterministic bytes).
pub fn encode_propagation_index(index: &PropagationIndex, out: &mut Vec<u8>) {
    out.extend_from_slice(&index.horizon.unwrap_or(0).to_le_bytes());
    out.extend_from_slice(&index.oldest_retained.to_le_bytes());
    out.extend_from_slice(&index.latest.to_le_bytes());
    out.extend_from_slice(&(index.max_ancestors as u64).to_le_bytes());
    let s = &index.stats;
    for v in [
        s.actions,
        s.roots,
        s.total_depth,
        s.max_depth as u64,
        s.total_response_distance,
        s.resolved_replies,
        s.unresolved_replies,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let mut ids: Vec<ActionId> = index.records.keys().copied().collect();
    ids.sort_unstable();
    out.extend_from_slice(&(ids.len() as u64).to_le_bytes());
    for id in ids {
        let rec = &index.records[&id];
        out.extend_from_slice(&id.0.to_le_bytes());
        out.extend_from_slice(&rec.user.0.to_le_bytes());
        out.extend_from_slice(&rec.depth.to_le_bytes());
        out.extend_from_slice(&(rec.ancestor_users.len() as u32).to_le_bytes());
        for u in rec.ancestor_users.iter() {
            out.extend_from_slice(&u.0.to_le_bytes());
        }
    }
}

/// Decodes a [`PropagationIndex`] previously encoded by
/// [`encode_propagation_index`].
pub fn decode_propagation_index(r: &mut ByteReader<'_>) -> Result<PropagationIndex, StateError> {
    let horizon = match r.u64()? {
        0 => None,
        h => Some(h),
    };
    let oldest_retained = r.u64()?;
    let latest = r.u64()?;
    let max_ancestors = r.u64()? as usize;
    let stats = PropagationStats {
        actions: r.u64()?,
        roots: r.u64()?,
        total_depth: r.u64()?,
        max_depth: r.u64()? as u32,
        total_response_distance: r.u64()?,
        resolved_replies: r.u64()?,
        unresolved_replies: r.u64()?,
    };
    // A record costs at least 8 + 4 + 4 + 4 bytes.
    let declared = r.u64()?;
    let count = r.array_len(declared, 20)?;
    let mut index = PropagationIndex::from_parts(horizon, oldest_retained, latest, max_ancestors, stats);
    let mut last: Option<u64> = None;
    for _ in 0..count {
        let id = r.u64()?;
        if let Some(prev) = last {
            if id <= prev {
                return Err(StateError::Corrupt(format!(
                    "propagation records must be sorted by id: a{id} after a{prev}"
                )));
            }
        }
        last = Some(id);
        let user = r.user()?;
        let depth = r.u32()?;
        let declared = r.u32()? as u64;
        let ancestors = r.array_len(declared, 4)?;
        let mut users = Vec::with_capacity(ancestors);
        for _ in 0..ancestors {
            users.push(r.user()?);
        }
        index.insert_record(ActionId(id), user, depth, users);
    }
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn document_round_trips_sections_in_order() {
        let mut w = StateWriter::new();
        w.section(*b"AAAA").extend_from_slice(b"hello");
        w.section(*b"BBBB");
        w.section(*b"CCCC").extend_from_slice(&[1, 2, 3]);
        let bytes = w.finish();
        let doc = StateDocument::parse(&bytes).unwrap();
        assert_eq!(doc.sections().len(), 3);
        assert_eq!(doc.section(*b"AAAA").unwrap(), b"hello");
        assert_eq!(doc.section(*b"BBBB").unwrap(), b"");
        assert_eq!(doc.section(*b"CCCC").unwrap(), &[1, 2, 3]);
        assert!(matches!(
            doc.section(*b"ZZZZ"),
            Err(StateError::MissingSection(_))
        ));
    }

    #[test]
    fn parse_rejects_bad_header_truncation_and_crc() {
        let mut w = StateWriter::new();
        w.section(*b"DATA").extend_from_slice(b"payload");
        let bytes = w.finish();
        assert!(matches!(
            StateDocument::parse(b"nope"),
            Err(StateError::BadHeader)
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 9;
        assert!(matches!(
            StateDocument::parse(&wrong_version),
            Err(StateError::UnsupportedVersion(9))
        ));
        for cut in 0..bytes.len() {
            let err = StateDocument::parse(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StateError::BadHeader | StateError::Truncated | StateError::CrcMismatch { .. }
                ),
                "cut {cut}: {err}"
            );
        }
        // Flip one payload bit: the CRC must catch it.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert!(matches!(
            StateDocument::parse(&corrupt),
            Err(StateError::CrcMismatch { tag }) if &tag == b"DATA"
        ));
        // Trailing garbage after the declared sections is rejected.
        let mut trailing = bytes;
        trailing.push(0);
        assert!(matches!(
            StateDocument::parse(&trailing),
            Err(StateError::Corrupt(_))
        ));
    }

    #[test]
    fn hostile_section_count_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(STATE_MAGIC);
        bytes.push(STATE_VERSION);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            StateDocument::parse(&bytes),
            Err(StateError::Truncated)
        ));
    }

    #[test]
    fn byte_reader_is_truncation_safe() {
        let mut r = ByteReader::new(&[1, 0, 0, 0]);
        assert_eq!(r.u32().unwrap(), 1);
        assert!(matches!(r.u8(), Err(StateError::Truncated)));
        let r = ByteReader::new(&[0; 4]);
        assert!(matches!(
            r.array_len(u64::MAX, 20),
            Err(StateError::Truncated)
        ));
        let mut r = ByteReader::new(&[7]);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.finish().is_ok());
        let r = ByteReader::new(&[7]);
        assert!(matches!(r.finish(), Err(StateError::Corrupt(_))));
    }

    #[test]
    fn influence_set_round_trips_both_representations() {
        // Small representation.
        let small: InfluenceSet = [5u32, 1, 9].into_iter().map(UserId).collect();
        let mut out = Vec::new();
        encode_influence_set(&small, &mut out);
        let mut r = ByteReader::new(&out);
        let decoded = decode_influence_set(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, small);
        assert!(!decoded.is_bitmap());
        // Bitmap representation.
        let mut big = InfluenceSet::with_universe(256);
        for i in (0..200u32).step_by(3) {
            big.insert(UserId(i));
        }
        let mut out = Vec::new();
        encode_influence_set(&big, &mut out);
        let mut r = ByteReader::new(&out);
        let decoded = decode_influence_set(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, big);
        assert!(decoded.is_bitmap());
    }

    #[test]
    fn influence_set_decode_rejects_unsorted_and_unknown_tags() {
        let mut out = vec![SET_SMALL];
        out.extend_from_slice(&2u32.to_le_bytes());
        out.extend_from_slice(&5u32.to_le_bytes());
        out.extend_from_slice(&5u32.to_le_bytes()); // duplicate
        assert!(matches!(
            decode_influence_set(&mut ByteReader::new(&out)),
            Err(StateError::Corrupt(_))
        ));
        assert!(matches!(
            decode_influence_set(&mut ByteReader::new(&[9])),
            Err(StateError::Corrupt(_))
        ));
    }

    #[test]
    fn influence_sets_round_trip_and_reject_duplicates() {
        let mut sets = InfluenceSets::new();
        sets.insert(UserId(3), UserId(1));
        sets.insert(UserId(3), UserId(7));
        sets.insert(UserId(1), UserId(1));
        let mut out = Vec::new();
        encode_influence_sets(&sets, &mut out);
        let mut r = ByteReader::new(&out);
        let decoded = decode_influence_sets(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded.get(UserId(3)), sets.get(UserId(3)));
        assert_eq!(decoded.get(UserId(1)), sets.get(UserId(1)));
        // Deterministic bytes: re-encoding the decoded copy is identical.
        let mut again = Vec::new();
        encode_influence_sets(&decoded, &mut again);
        assert_eq!(out, again);
    }

    #[test]
    fn actions_round_trip() {
        let actions = vec![
            Action::root(1u64, 10u32),
            Action::reply(2u64, 11u32, 1u64),
            Action::root(9u64, 12u32),
        ];
        let mut out = Vec::new();
        encode_actions(&actions, &mut out);
        let mut r = ByteReader::new(&out);
        assert_eq!(decode_actions(&mut r).unwrap(), actions);
        r.finish().unwrap();
    }

    #[test]
    fn propagation_index_round_trips_state_and_behaviour() {
        let mut index = PropagationIndex::with_horizon(1000).with_max_ancestors(8);
        let actions = [
            Action::root(1u64, 1u32),
            Action::reply(2u64, 2u32, 1u64),
            Action::reply(3u64, 3u32, 2u64),
            Action::root(4u64, 4u32),
            Action::reply(5u64, 1u32, 3u64),
        ];
        for a in &actions {
            index.insert(a);
        }
        let mut out = Vec::new();
        encode_propagation_index(&index, &mut out);
        let mut r = ByteReader::new(&out);
        let mut restored = decode_propagation_index(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.retained(), index.retained());
        assert_eq!(restored.stats(), index.stats());
        assert_eq!(
            restored.ancestor_users(ActionId(5)),
            index.ancestor_users(ActionId(5))
        );
        // The restored index keeps resolving new arrivals identically.
        let next = Action::reply(6u64, 9u32, 5u64);
        assert_eq!(restored.insert(&next), index.insert(&next));
        // Deterministic bytes.
        let mut again = Vec::new();
        encode_propagation_index(&index, &mut again);
        let mut out2 = Vec::new();
        encode_propagation_index(&restored, &mut out2);
        // `index` got one more insert above; re-encode both post-insert.
        assert_eq!(again, out2);
    }
}
