//! Deterministic fault injection for the durability I/O paths.
//!
//! Every file operation the journal and snapshot writers perform goes
//! through an [`Fs`] handle.  By default the handle is a zero-cost
//! pass-through to `std::fs`; tests (and the crash-matrix example) attach a
//! [`FaultInjector`] whose scripted rules deliver EIO, ENOSPC, short/torn
//! writes, fsync failures, or a **crash point** — an op index past which the
//! disk is frozen exactly as a SIGKILL would leave it — at precisely
//! reproducible moments.
//!
//! ## Design rules
//!
//! * **Deterministic**: rules are keyed to per-rule *matching-op* counters
//!   (the 3rd `Write`, every `Fsync` from the 2nd on, …) or to a seeded
//!   per-op hash — never to wall-clock or global state, so a failing run
//!   replays bit-identically.
//! * **Crash freeze**: once a [`FaultRule::CrashAt`] fires, *every*
//!   subsequent op fails and nothing further reaches the disk.  The files
//!   are left exactly as they were after op `at - 1`, which is what a real
//!   crash does (modulo the kernel page cache, which the fsync-policy tests
//!   cover separately).
//! * **Zero-cost default**: a plain [`Fs::real`] handle carries no
//!   injector; the per-op check is a `None` test.
//!
//! The injector also counts ops, so a crash-point sweep can first measure a
//! clean run (`ops()`), then re-run with `CrashAt { at }` for every prefix.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The observable failure delivered by a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `EIO` — a generic I/O error (bad sector, dying disk).
    Eio,
    /// `ENOSPC` — the disk is full.
    Enospc,
    /// A short write: a *prefix* of the buffer reaches the file, then the
    /// call fails.  This is how torn batches and torn snapshot temps are
    /// manufactured.
    ShortWrite,
}

impl FaultKind {
    fn error(self) -> io::Error {
        match self {
            // Raw errnos so `ErrorKind` mapping matches what a real kernel
            // would produce (5 = EIO, 28 = ENOSPC on Linux).
            FaultKind::Eio => io::Error::from_raw_os_error(5),
            FaultKind::Enospc => io::Error::from_raw_os_error(28),
            FaultKind::ShortWrite => io::Error::other("injected short write"),
        }
    }
}

/// The operation classes an [`Fs`] performs; rules match on these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Creating (truncating) a file.
    Create,
    /// Opening an existing file for read/write.
    Open,
    /// Reading a whole file.
    Read,
    /// Writing a buffer to an open file.
    Write,
    /// `fsync` of an open file.
    Fsync,
    /// Renaming a path (the atomic-publish step).
    Rename,
    /// Removing a file (journal compaction).
    Remove,
    /// Truncating an open file (`set_len`).
    SetLen,
    /// `fsync` of a directory (making renames/creates crash-durable).
    SyncDir,
    /// Listing a directory.
    ReadDir,
    /// `create_dir_all` of the persistence directory.
    Mkdir,
}

impl OpKind {
    fn parse(s: &str) -> Option<OpKind> {
        Some(match s {
            "create" => OpKind::Create,
            "open" => OpKind::Open,
            "read" => OpKind::Read,
            "write" => OpKind::Write,
            "fsync" => OpKind::Fsync,
            "rename" => OpKind::Rename,
            "remove" => OpKind::Remove,
            "setlen" => OpKind::SetLen,
            "syncdir" => OpKind::SyncDir,
            "readdir" => OpKind::ReadDir,
            "mkdir" => OpKind::Mkdir,
            _ => return None,
        })
    }
}

/// One scripted failure rule.  Each rule keeps its own counter of
/// *matching* ops, so "the 3rd fsync" stays the 3rd fsync regardless of how
/// many writes happen in between.
#[derive(Debug, Clone)]
pub enum FaultRule {
    /// Fail matching ops numbered `from ..= from + count - 1` (1-based,
    /// counting only ops that match `op`; `op == None` matches every op).
    /// `count == u64::MAX` means "from that point on, forever" — a
    /// persistent fault the degraded-mode machinery must ride out.
    Window {
        /// Which op class to match (`None` = all).
        op: Option<OpKind>,
        /// The failure to deliver.
        kind: FaultKind,
        /// First matching op (1-based) that fails.
        from: u64,
        /// How many matching ops fail.
        count: u64,
    },
    /// Fail each matching op with probability `per_mille`/1000, decided by
    /// a seeded hash of the rule's matching-op index — deterministic and
    /// replayable for a fixed seed.
    Seeded {
        /// Which op class to match (`None` = all).
        op: Option<OpKind>,
        /// The failure to deliver.
        kind: FaultKind,
        /// Hash seed.
        seed: u64,
        /// Failure probability in thousandths.
        per_mille: u16,
    },
    /// Freeze the disk at the `at`-th op overall (1-based, counting every
    /// op): that op and all later ones fail with no disk side effects.
    CrashAt {
        /// The op index at which the process "crashes".
        at: u64,
    },
}

#[derive(Debug, Default)]
struct InjectorState {
    ops_total: u64,
    injected: u64,
    /// Per-rule matching-op counters (parallel to `rules`).
    matched: Vec<u64>,
}

/// A scripted fault source shared by every [`Fs`] clone in a test.
#[derive(Debug)]
pub struct FaultInjector {
    rules: Vec<FaultRule>,
    state: Mutex<InjectorState>,
    crashed: AtomicBool,
}

/// SplitMix64 — the standard 64-bit finalizer; used to derive the seeded
/// rule's per-op coin flips without depending on an RNG crate.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultInjector {
    /// Builds an injector from a rule script.
    pub fn new(rules: Vec<FaultRule>) -> Arc<FaultInjector> {
        let matched = vec![0; rules.len()];
        Arc::new(FaultInjector {
            rules,
            state: Mutex::new(InjectorState {
                matched,
                ..InjectorState::default()
            }),
            crashed: AtomicBool::new(false),
        })
    }

    /// Parses the `RTIM_FAULT` environment-variable grammar, used to inject
    /// faults across a process boundary (the crash-matrix example):
    ///
    /// ```text
    /// spec    = rule ("," rule)*
    /// rule    = "crash@" N
    ///         | kind ":" op "@" N            -- one-shot at the Nth matching op
    ///         | kind ":" op "@" N "+"        -- persistent from the Nth on
    ///         | kind ":" op "@" N "x" M      -- window of M matching ops
    ///         | kind ":" op "~" seed "/" pm  -- seeded, pm per-mille
    /// kind    = "eio" | "enospc" | "short"
    /// op      = "any" | "create" | "open" | "read" | "write" | "fsync"
    ///         | "rename" | "remove" | "setlen" | "syncdir" | "readdir"
    ///         | "mkdir"
    /// ```
    pub fn from_spec(spec: &str) -> Result<Arc<FaultInjector>, String> {
        let mut rules = Vec::new();
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            rules.push(Self::parse_rule(raw).ok_or_else(|| format!("bad fault rule: {raw:?}"))?);
        }
        Ok(Self::new(rules))
    }

    fn parse_rule(raw: &str) -> Option<FaultRule> {
        if let Some(at) = raw.strip_prefix("crash@") {
            return Some(FaultRule::CrashAt { at: at.parse().ok()? });
        }
        let (kind, rest) = raw.split_once(':')?;
        let kind = match kind {
            "eio" => FaultKind::Eio,
            "enospc" => FaultKind::Enospc,
            "short" => FaultKind::ShortWrite,
            _ => return None,
        };
        let (op, tail, seeded) = match (rest.split_once('@'), rest.split_once('~')) {
            (Some((op, tail)), _) => (op, tail, false),
            (None, Some((op, tail))) => (op, tail, true),
            _ => return None,
        };
        let op = match op {
            "any" => None,
            named => Some(OpKind::parse(named)?),
        };
        if seeded {
            let (seed, pm) = tail.split_once('/')?;
            return Some(FaultRule::Seeded {
                op,
                kind,
                seed: seed.parse().ok()?,
                per_mille: pm.parse().ok()?,
            });
        }
        let (from, count) = if let Some(n) = tail.strip_suffix('+') {
            (n.parse().ok()?, u64::MAX)
        } else if let Some((n, m)) = tail.split_once('x') {
            (n.parse().ok()?, m.parse().ok()?)
        } else {
            (tail.parse().ok()?, 1)
        };
        Some(FaultRule::Window { op, kind, from, count })
    }

    /// Total ops observed so far (for crash-point sweeps).
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("injector poisoned").ops_total
    }

    /// Faults delivered so far.
    pub fn injected(&self) -> u64 {
        self.state.lock().expect("injector poisoned").injected
    }

    /// Whether a crash point has fired (the disk is frozen).
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Records one op of class `op` and decides its fate: `None` = let it
    /// through, `Some(kind)` = deliver that fault instead.
    fn check(&self, op: OpKind) -> Option<FaultKind> {
        if self.crashed() {
            return Some(FaultKind::Eio);
        }
        let mut st = self.state.lock().expect("injector poisoned");
        st.ops_total += 1;
        let op_index = st.ops_total;
        let mut verdict = None;
        for (i, rule) in self.rules.iter().enumerate() {
            match rule {
                FaultRule::Window { op: want, kind, from, count } => {
                    if want.is_none_or(|w| w == op) {
                        st.matched[i] += 1;
                        let n = st.matched[i];
                        if verdict.is_none() && n >= *from && n - from < *count {
                            verdict = Some(*kind);
                        }
                    }
                }
                FaultRule::Seeded { op: want, kind, seed, per_mille } => {
                    if want.is_none_or(|w| w == op) {
                        st.matched[i] += 1;
                        let roll = splitmix64(seed ^ st.matched[i]) % 1000;
                        if verdict.is_none() && roll < u64::from(*per_mille) {
                            verdict = Some(*kind);
                        }
                    }
                }
                FaultRule::CrashAt { at } => {
                    if verdict.is_none() && op_index >= *at {
                        self.crashed.store(true, Ordering::SeqCst);
                        verdict = Some(FaultKind::Eio);
                    }
                }
            }
        }
        if verdict.is_some() {
            st.injected += 1;
        }
        verdict
    }
}

/// Handle through which all durability file I/O flows.  Cheap to clone;
/// clones share the same injector (or, by default, none).
#[derive(Debug, Clone, Default)]
pub struct Fs {
    injector: Option<Arc<FaultInjector>>,
}

impl Fs {
    /// The pass-through handle used in production: no injector, no
    /// overhead beyond an `Option` check per op.
    pub fn real() -> Fs {
        Fs::default()
    }

    /// A handle whose ops consult `injector` before touching the disk.
    pub fn faulty(injector: Arc<FaultInjector>) -> Fs {
        Fs {
            injector: Some(injector),
        }
    }

    /// Builds a handle from the `RTIM_FAULT` environment variable, if set
    /// (see [`FaultInjector::from_spec`]).  A malformed spec is an error —
    /// silently ignoring it would turn a fault-matrix run into a no-op.
    pub fn from_env() -> Result<Fs, String> {
        match std::env::var("RTIM_FAULT") {
            Ok(spec) if !spec.trim().is_empty() => {
                Ok(Fs::faulty(FaultInjector::from_spec(&spec)?))
            }
            _ => Ok(Fs::real()),
        }
    }

    /// The attached injector, if any.
    pub fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    #[inline]
    fn check(&self, op: OpKind) -> io::Result<Option<FaultKind>> {
        match &self.injector {
            None => Ok(None),
            Some(inj) => match inj.check(op) {
                Some(FaultKind::ShortWrite) if op == OpKind::Write => {
                    Ok(Some(FaultKind::ShortWrite))
                }
                Some(kind) => Err(kind.error()),
                None => Ok(None),
            },
        }
    }

    /// Creates (truncating) `path` for writing.
    pub fn create(&self, path: &Path) -> io::Result<DurableFile> {
        self.check(OpKind::Create)?;
        Ok(DurableFile {
            file: File::create(path)?,
            fs: self.clone(),
        })
    }

    /// Opens `path` read/write without truncating.
    pub fn open_rw(&self, path: &Path) -> io::Result<DurableFile> {
        self.check(OpKind::Open)?;
        Ok(DurableFile {
            file: OpenOptions::new().read(true).write(true).open(path)?,
            fs: self.clone(),
        })
    }

    /// Reads the entire contents of `path`.
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.check(OpKind::Read)?;
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        Ok(data)
    }

    /// Renames `from` to `to` (atomic within a filesystem).
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check(OpKind::Rename)?;
        std::fs::rename(from, to)
    }

    /// Removes the file at `path`.
    pub fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.check(OpKind::Remove)?;
        std::fs::remove_file(path)
    }

    /// Creates `dir` and its ancestors.
    pub fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.check(OpKind::Mkdir)?;
        std::fs::create_dir_all(dir)
    }

    /// `fsync`s a directory, making completed renames/creates/removes in
    /// it durable against machine crashes.
    pub fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.check(OpKind::SyncDir)?;
        File::open(dir)?.sync_all()
    }

    /// Lists the file paths directly inside `dir` (non-recursive).
    pub fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.check(OpKind::ReadDir)?;
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }
}

/// An open file whose writes, fsyncs and truncations go through the fault
/// layer.
#[derive(Debug)]
pub struct DurableFile {
    file: File,
    fs: Fs,
}

impl DurableFile {
    /// Writes the whole buffer.  Under an injected [`FaultKind::ShortWrite`]
    /// a *prefix* of the buffer reaches the file before the call fails —
    /// the torn-write shape crash recovery must tolerate.
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.fs.check(OpKind::Write)? {
            None => self.file.write_all(buf),
            Some(_short) => {
                let torn = buf.len() / 2;
                if torn > 0 {
                    self.file.write_all(&buf[..torn])?;
                }
                Err(FaultKind::ShortWrite.error())
            }
        }
    }

    /// Forces file contents to stable storage.
    pub fn sync_all(&mut self) -> io::Result<()> {
        self.fs.check(OpKind::Fsync)?;
        self.file.sync_all()
    }

    /// Truncates (or extends) the file to `len` bytes.
    pub fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.fs.check(OpKind::SetLen)?;
        self.file.set_len(len)
    }

    /// Positions the cursor at the end of the file (after a resume
    /// truncation).  Pure cursor arithmetic — not an injectable op.
    pub fn seek_end(&mut self) -> io::Result<u64> {
        self.file.seek(SeekFrom::End(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rtim-faultfs-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_fs_round_trips() {
        let dir = temp_dir("real");
        let path = dir.join("f");
        let fs = Fs::real();
        let mut f = fs.create(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_all().unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"hello");
        fs.rename(&path, &dir.join("g")).unwrap();
        fs.sync_dir(&dir).unwrap();
        assert_eq!(fs.read_dir(&dir).unwrap().len(), 1);
        fs.remove_file(&dir.join("g")).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nth_matching_op_fails_once() {
        let dir = temp_dir("nth");
        let inj = FaultInjector::new(vec![FaultRule::Window {
            op: Some(OpKind::Write),
            kind: FaultKind::Enospc,
            from: 2,
            count: 1,
        }]);
        let fs = Fs::faulty(Arc::clone(&inj));
        let mut f = fs.create(&dir.join("f")).unwrap();
        f.write_all(b"a").unwrap();
        let err = f.write_all(b"b").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        f.write_all(b"c").unwrap(); // one-shot: the 3rd write succeeds
        assert_eq!(inj.injected(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_write_leaves_a_torn_prefix() {
        let dir = temp_dir("short");
        let fs = Fs::faulty(FaultInjector::new(vec![FaultRule::Window {
            op: Some(OpKind::Write),
            kind: FaultKind::ShortWrite,
            from: 1,
            count: 1,
        }]));
        let path = dir.join("f");
        let mut f = fs.create(&path).unwrap();
        assert!(f.write_all(b"abcdefgh").is_err());
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"abcd");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_point_freezes_the_disk() {
        let dir = temp_dir("crash");
        let inj = FaultInjector::new(vec![FaultRule::CrashAt { at: 3 }]);
        let fs = Fs::faulty(Arc::clone(&inj));
        let path = dir.join("f");
        let mut f = fs.create(&path).unwrap(); // op 1
        f.write_all(b"one").unwrap(); // op 2
        assert!(f.write_all(b"two").is_err()); // op 3: crash fires
        assert!(inj.crashed());
        assert!(f.sync_all().is_err());
        assert!(fs.create(&dir.join("g")).is_err());
        // Disk frozen exactly as of op 2.
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        assert!(!dir.join("g").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistent_window_then_clear_via_count() {
        let dir = temp_dir("window");
        let fs = Fs::faulty(FaultInjector::new(vec![FaultRule::Window {
            op: Some(OpKind::Fsync),
            kind: FaultKind::Eio,
            from: 1,
            count: 2,
        }]));
        let mut f = fs.create(&dir.join("f")).unwrap();
        assert!(f.sync_all().is_err());
        assert!(f.sync_all().is_err());
        f.sync_all().unwrap(); // fault window over
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seeded_rule_is_replayable() {
        let decide = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new(vec![FaultRule::Seeded {
                op: None,
                kind: FaultKind::Eio,
                seed,
                per_mille: 400,
            }]);
            (0..64).map(|_| inj.check(OpKind::Write).is_some()).collect()
        };
        let a = decide(7);
        assert_eq!(a, decide(7), "same seed, same schedule");
        assert_ne!(a, decide(8), "different seed, different schedule");
        let hits = a.iter().filter(|&&b| b).count();
        assert!(hits > 10 && hits < 54, "~40% of 64 ops, got {hits}");
    }

    #[test]
    fn spec_grammar_parses() {
        let inj = FaultInjector::from_spec("crash@12").unwrap();
        assert!(matches!(inj.rules[0], FaultRule::CrashAt { at: 12 }));
        let inj = FaultInjector::from_spec("enospc:write@5").unwrap();
        assert!(matches!(
            inj.rules[0],
            FaultRule::Window { op: Some(OpKind::Write), kind: FaultKind::Enospc, from: 5, count: 1 }
        ));
        let inj = FaultInjector::from_spec("eio:fsync@2+").unwrap();
        assert!(matches!(
            inj.rules[0],
            FaultRule::Window { kind: FaultKind::Eio, from: 2, count: u64::MAX, .. }
        ));
        let inj = FaultInjector::from_spec("short:write@3x4,crash@9").unwrap();
        assert!(matches!(inj.rules[0], FaultRule::Window { from: 3, count: 4, .. }));
        assert!(matches!(inj.rules[1], FaultRule::CrashAt { at: 9 }));
        let inj = FaultInjector::from_spec("eio:any~42/250").unwrap();
        assert!(matches!(
            inj.rules[0],
            FaultRule::Seeded { op: None, seed: 42, per_mille: 250, .. }
        ));
        assert!(FaultInjector::from_spec("bogus@3").is_err());
        assert!(FaultInjector::from_spec("eio:teleport@3").is_err());
    }

    #[test]
    fn op_counter_supports_sweeps() {
        let dir = temp_dir("sweep");
        let run = |fs: &Fs| -> io::Result<()> {
            let mut f = fs.create(&dir.join("f"))?;
            f.write_all(b"x")?;
            f.sync_all()?;
            fs.rename(&dir.join("f"), &dir.join("g"))?;
            fs.sync_dir(&dir)?;
            Ok(())
        };
        let inj = FaultInjector::new(vec![]);
        run(&Fs::faulty(Arc::clone(&inj))).unwrap();
        let total = inj.ops();
        assert_eq!(total, 5);
        for at in 1..=total {
            let fs = Fs::faulty(FaultInjector::new(vec![FaultRule::CrashAt { at }]));
            assert!(run(&fs).is_err(), "crash at op {at} must surface");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
