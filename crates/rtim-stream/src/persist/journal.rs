//! The `RTAJ` arrival-order journal: an append-only, crash-tolerant log of
//! ingest batches.
//!
//! The engine pipeline rebases every accepted batch onto the global arrival
//! order; appending those rebased batches here makes the stream durable —
//! a restarted server replays the journal (or, with a snapshot, only its
//! tail past the snapshot watermark) and answers exactly as if it never
//! stopped.
//!
//! ## Layout
//!
//! ```text
//! "RTAJ" magic │ version u8 │ batch*
//! batch = count u32 LE │ count × 20-byte action records (id, user, parent)
//! ```
//!
//! Batches (not bare actions) are the journal unit on purpose: slide
//! boundaries are cut **per ingest call**, so replaying the exact batch
//! sequence reproduces the engine's slide pattern — and therefore its
//! answers — bit for bit, even when clients sent ragged batches.
//!
//! ## Crash tolerance
//!
//! A process killed mid-append leaves a partial batch at the tail.
//! [`read_journal`] stops at the first incomplete or invalid batch and
//! reports the ignored byte count; [`JournalWriter::resume`] truncates that
//! torn tail before appending, so the file never accumulates garbage in the
//! middle.  Every complete batch is validated (ids strictly increasing
//! across the whole journal, parents strictly earlier) — the journal is
//! machine-written, so a violation means corruption and the valid prefix is
//! used.
//!
//! A deployment journal is **segmented** across several such files so
//! snapshots can bound its growth; see [`super::segjournal`].  All file I/O
//! goes through the fault-injectable [`Fs`] layer; the plain-path entry
//! points below are the zero-cost pass-through.

use super::faultfs::{DurableFile, Fs};
use super::state::StateError;
use super::MAX_FRAME_BYTES;
use crate::action::{Action, ActionId, UserId};
use std::io;
use std::path::Path;

/// Magic bytes of the journal format ("RTAJ" = RTim Action Journal).
pub const JOURNAL_MAGIC: &[u8; 4] = b"RTAJ";

/// Version byte of the journal format.
pub const JOURNAL_VERSION: u8 = 1;

/// Bytes of the journal header.
pub(crate) const HEADER_BYTES: u64 = 5;

/// Bytes per action record (shared with `RTAS`/`RTAB`).
const RECORD_BYTES: usize = 20;

/// The parsed contents of a journal file.
#[derive(Debug, Default)]
pub struct JournalContents {
    /// Complete, valid batches in append order.
    pub batches: Vec<Vec<Action>>,
    /// End offset of each batch (parallel to `batches`): the file length
    /// that keeps exactly batches `..= i`.  Recovery uses these to cut a
    /// journal at *any* batch boundary, not only at the torn tail.
    pub batch_ends: Vec<u64>,
    /// Bytes of the valid prefix (header + complete batches); the offset a
    /// resumed writer truncates to.
    pub valid_len: u64,
    /// Bytes ignored past the valid prefix (torn tail from a crash, or
    /// trailing corruption).  0 for a cleanly written journal.
    pub ignored_bytes: u64,
}

impl JournalContents {
    /// Total actions across all valid batches.
    pub fn actions(&self) -> u64 {
        self.batches.iter().map(|b| b.len() as u64).sum()
    }

    /// Id of the first journaled action (0 if the journal is empty).
    pub fn first_id(&self) -> u64 {
        self.batches
            .first()
            .and_then(|b| b.first())
            .map_or(0, |a| a.id.0)
    }

    /// Id of the last journaled action (0 if the journal is empty).
    pub fn last_id(&self) -> u64 {
        self.batches
            .last()
            .and_then(|b| b.last())
            .map_or(0, |a| a.id.0)
    }
}

/// Reads and validates a journal file (pass-through I/O).
///
/// * A missing file is an **empty journal**, not an error (the common cold
///   start).
/// * A torn tail (partial batch from a crash) or trailing corruption is
///   tolerated: parsing stops there and `ignored_bytes` reports how much
///   was dropped.
/// * A bad header is [`StateError::BadHeader`] — the file is not a journal
///   at all, which the caller must treat as unrecoverable rather than as an
///   empty stream.
pub fn read_journal(path: impl AsRef<Path>) -> Result<JournalContents, StateError> {
    read_journal_with(path.as_ref(), &Fs::real())
}

/// [`read_journal`] through an explicit (possibly fault-injected) [`Fs`].
pub fn read_journal_with(path: &Path, fs: &Fs) -> Result<JournalContents, StateError> {
    let data = match fs.read(path) {
        Ok(data) => data,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(JournalContents::default()),
        Err(e) => return Err(e.into()),
    };
    if data.len() < HEADER_BYTES as usize {
        // Even the header never finished: treat as empty, resume rewrites it.
        return Ok(JournalContents {
            ignored_bytes: data.len() as u64,
            ..JournalContents::default()
        });
    }
    if &data[..4] != JOURNAL_MAGIC || data[4] != JOURNAL_VERSION {
        return Err(StateError::BadHeader);
    }
    let mut contents = JournalContents {
        valid_len: HEADER_BYTES,
        ..JournalContents::default()
    };
    let mut pos = HEADER_BYTES as usize;
    let mut last_id = 0u64;
    'batches: while pos + 4 <= data.len() {
        let count = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let body = count.checked_mul(RECORD_BYTES);
        let end = body.and_then(|b| pos.checked_add(4 + b));
        match end {
            Some(end) if end <= data.len() && count > 0 => {
                let mut batch = Vec::with_capacity(count.min(MAX_FRAME_BYTES / RECORD_BYTES));
                let mut cursor = pos + 4;
                for _ in 0..count {
                    let rec = &data[cursor..cursor + RECORD_BYTES];
                    cursor += RECORD_BYTES;
                    let id = u64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
                    let user = u32::from_le_bytes(rec[8..12].try_into().expect("4 bytes"));
                    let parent = u64::from_le_bytes(rec[12..20].try_into().expect("8 bytes"));
                    // The journal holds the rebased global order: strictly
                    // increasing ids, parents strictly earlier.  A violation
                    // means corruption — keep the prefix, drop the rest.
                    if id <= last_id || (parent != 0 && parent >= id) {
                        break 'batches;
                    }
                    last_id = id;
                    batch.push(Action {
                        id: ActionId(id),
                        user: UserId(user),
                        parent: if parent == 0 { None } else { Some(ActionId(parent)) },
                    });
                }
                contents.batches.push(batch);
                contents.batch_ends.push(end as u64);
                contents.valid_len = end as u64;
                pos = end;
            }
            // Incomplete batch (torn tail) or a zero/hostile count.
            _ => break,
        }
    }
    contents.ignored_bytes = data.len() as u64 - contents.valid_len;
    Ok(contents)
}

/// Encodes one batch into its on-disk bytes (count prefix + records).
pub(crate) fn encode_journal_batch(actions: &[Action]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + actions.len() * RECORD_BYTES);
    buf.extend_from_slice(&(actions.len() as u32).to_le_bytes());
    for a in actions {
        buf.extend_from_slice(&a.id.0.to_le_bytes());
        buf.extend_from_slice(&a.user.0.to_le_bytes());
        buf.extend_from_slice(&a.parent.map_or(0, |p| p.0).to_le_bytes());
    }
    buf
}

/// An append-only journal writer.
///
/// Each batch is encoded into a buffer and appended with a **single**
/// write, so a torn append can only tear *inside* one batch (the shape
/// [`read_journal`] tolerates), and the fault layer sees one injectable
/// write per batch.  Appends reach the OS per batch; call
/// [`JournalWriter::sync`] for durability against machine crashes.
#[derive(Debug)]
pub struct JournalWriter {
    file: DurableFile,
    /// Bytes of durable + buffered-to-OS journal so far.
    len: u64,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any existing file) and
    /// writes the header.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JournalWriter> {
        Self::create_with(path.as_ref(), &Fs::real())
    }

    /// [`JournalWriter::create`] through an explicit [`Fs`].
    pub fn create_with(path: &Path, fs: &Fs) -> io::Result<JournalWriter> {
        let mut file = fs.create(path)?;
        let mut header = Vec::with_capacity(HEADER_BYTES as usize);
        header.extend_from_slice(JOURNAL_MAGIC);
        header.push(JOURNAL_VERSION);
        file.write_all(&header)?;
        Ok(JournalWriter {
            file,
            len: HEADER_BYTES,
        })
    }

    /// Opens `path` for appending after recovery: the file is truncated to
    /// `valid_len` (dropping any torn tail reported by [`read_journal`])
    /// and positioned at its end.  A missing or headerless file is created
    /// fresh.
    pub fn resume(path: impl AsRef<Path>, valid_len: u64) -> io::Result<JournalWriter> {
        Self::resume_with(path.as_ref(), valid_len, &Fs::real())
    }

    /// [`JournalWriter::resume`] through an explicit [`Fs`].
    pub fn resume_with(path: &Path, valid_len: u64, fs: &Fs) -> io::Result<JournalWriter> {
        if valid_len < HEADER_BYTES {
            return Self::create_with(path, fs);
        }
        let mut file = fs.open_rw(path)?;
        file.set_len(valid_len)?;
        file.seek_end()?;
        Ok(JournalWriter {
            file,
            len: valid_len,
        })
    }

    /// Appends one batch in a single write.  Empty batches are skipped (a
    /// zero count would read as a torn tail).
    pub fn append_batch(&mut self, actions: &[Action]) -> io::Result<()> {
        if actions.is_empty() {
            return Ok(());
        }
        let buf = encode_journal_batch(actions);
        self.file.write_all(&buf)?;
        self.len += buf.len() as u64;
        Ok(())
    }

    /// Forces the journal to stable storage (`fsync`).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }

    /// Bytes written so far (header + appended batches).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no batch has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len <= HEADER_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::super::faultfs::{FaultInjector, FaultKind, FaultRule, OpKind};
    use super::*;
    use std::fs::OpenOptions;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rtim-journal-{}-{name}.rtaj", std::process::id()));
        p
    }

    #[test]
    fn journal_round_trips_batches() {
        let path = temp_path("round-trip");
        let mut w = JournalWriter::create(&path).unwrap();
        let b1 = vec![Action::root(1u64, 1u32), Action::reply(2u64, 2u32, 1u64)];
        let b2 = vec![Action::reply(3u64, 3u32, 1u64)];
        w.append_batch(&b1).unwrap();
        w.append_batch(&[]).unwrap(); // skipped
        w.append_batch(&b2).unwrap();
        w.sync().unwrap();
        drop(w);
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.batches, vec![b1, b2]);
        assert_eq!(contents.actions(), 3);
        assert_eq!(contents.first_id(), 1);
        assert_eq!(contents.last_id(), 3);
        assert_eq!(contents.ignored_bytes, 0);
        assert_eq!(contents.batch_ends.len(), 2);
        assert_eq!(*contents.batch_ends.last().unwrap(), contents.valid_len);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_is_empty() {
        let contents = read_journal(temp_path("never-created")).unwrap();
        assert!(contents.batches.is_empty());
        assert_eq!(contents.last_id(), 0);
    }

    #[test]
    fn torn_tail_is_ignored_and_resume_truncates_it() {
        let path = temp_path("torn");
        let mut w = JournalWriter::create(&path).unwrap();
        let good = vec![Action::root(1u64, 1u32), Action::root(2u64, 2u32)];
        w.append_batch(&good).unwrap();
        drop(w);
        // Simulate a crash mid-append: a batch header + half a record.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&3u32.to_le_bytes()).unwrap();
            f.write_all(&[0xAB; 11]).unwrap();
        }
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.batches, vec![good.clone()]);
        assert_eq!(contents.ignored_bytes, 15);
        // Resuming truncates the tail; the next append parses cleanly.
        let mut w = JournalWriter::resume(&path, contents.valid_len).unwrap();
        let next = vec![Action::reply(3u64, 3u32, 1u64)];
        w.append_batch(&next).unwrap();
        drop(w);
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.batches, vec![good, next]);
        assert_eq!(contents.ignored_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_records_keep_the_valid_prefix() {
        let path = temp_path("corrupt");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append_batch(&[Action::root(5u64, 1u32)]).unwrap();
        drop(w);
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            // A complete batch whose id goes backwards (corruption).
            f.write_all(&1u32.to_le_bytes()).unwrap();
            f.write_all(&2u64.to_le_bytes()).unwrap();
            f.write_all(&9u32.to_le_bytes()).unwrap();
            f.write_all(&0u64.to_le_bytes()).unwrap();
        }
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.actions(), 1);
        assert!(contents.ignored_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_journal_file_is_a_bad_header() {
        let path = temp_path("not-a-journal");
        std::fs::write(&path, b"definitely not RTAJ").unwrap();
        assert!(matches!(read_journal(&path), Err(StateError::BadHeader)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn headerless_stub_is_treated_as_empty_and_recreated() {
        let path = temp_path("stub");
        std::fs::write(&path, b"RT").unwrap(); // crash before the header finished
        let contents = read_journal(&path).unwrap();
        assert!(contents.batches.is_empty());
        assert_eq!(contents.valid_len, 0);
        let mut w = JournalWriter::resume(&path, contents.valid_len).unwrap();
        w.append_batch(&[Action::root(1u64, 1u32)]).unwrap();
        drop(w);
        assert_eq!(read_journal(&path).unwrap().actions(), 1);
        std::fs::remove_file(&path).ok();
    }

    /// An injected short write tears exactly one batch, which reads back as
    /// a torn tail — the per-batch single-write discipline at work.
    #[test]
    fn injected_short_write_tears_one_batch_only() {
        let path = temp_path("fault-short");
        let fs = Fs::faulty(FaultInjector::new(vec![FaultRule::Window {
            op: Some(OpKind::Write),
            kind: FaultKind::ShortWrite,
            from: 3, // header, batch 1, then tear batch 2
            count: 1,
        }]));
        let mut w = JournalWriter::create_with(&path, &fs).unwrap();
        let b1 = vec![Action::root(1u64, 1u32)];
        w.append_batch(&b1).unwrap();
        assert!(w.append_batch(&[Action::root(2u64, 2u32)]).is_err());
        drop(w);
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.batches, vec![b1]);
        assert!(contents.ignored_bytes > 0, "torn second batch is ignored");
        std::fs::remove_file(&path).ok();
    }

    /// ENOSPC on append surfaces as a typed error and leaves the journal
    /// readable (no partial bytes at all — the write failed atomically).
    #[test]
    fn injected_enospc_keeps_journal_clean() {
        let path = temp_path("fault-enospc");
        let fs = Fs::faulty(FaultInjector::new(vec![FaultRule::Window {
            op: Some(OpKind::Write),
            kind: FaultKind::Enospc,
            from: 2,
            count: 1,
        }]));
        let mut w = JournalWriter::create_with(&path, &fs).unwrap();
        let err = w.append_batch(&[Action::root(1u64, 1u32)]).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        drop(w);
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.actions(), 0);
        assert_eq!(contents.ignored_bytes, 0);
        std::fs::remove_file(&path).ok();
    }
}
