//! Segmented `RTAJ` journals: rotation, compaction, and cross-segment
//! recovery.
//!
//! A single journal file grows without bound.  Deployments instead write a
//! **sequence of segments** in the persistence directory:
//!
//! ```text
//! journal.000001.rtaj   oldest
//! journal.000002.rtaj
//! journal.000003.rtaj   newest — the only segment being appended
//! ```
//!
//! (`journal.rtaj`, the pre-segmentation layout, is read as segment 0, so
//! old directories migrate transparently.)  Each segment is an ordinary
//! [`read_journal`] file; the global arrival order is the concatenation of
//! the segments' batches in sequence order.  Rotation is keyed to
//! snapshots — the engine rotates when it dispatches a snapshot, and once
//! the snapshot is durable every segment whose last action id is ≤ the
//! snapshot watermark is deleted (**compaction**).  A size-based rotation
//! bound exists as a backstop for deployments that snapshot rarely.
//!
//! ## Recovery rules
//!
//! * A **torn tail is legal only in the newest segment** (the only one a
//!   crash can tear).  A torn or corrupt *older* segment keeps its valid
//!   prefix, and every later segment is rejected — their actions are
//!   unreachable past the tear.
//! * Ids must keep increasing **across** segment boundaries.  Gaps are
//!   allowed (a degraded period that later re-armed starts a fresh segment
//!   past the gap; the re-arm snapshot covers the missing span), but an id
//!   regression or overlap rejects the offending segment and the rest.
//! * Rejected segments are renamed aside (`*.orphaned`) before any new
//!   append, so stale high-numbered files can never shadow fresh writes.

use super::faultfs::Fs;
use super::journal::{
    read_journal_with, JournalContents, JournalWriter, HEADER_BYTES,
};
use super::state::StateError;
use crate::action::Action;
use std::io;
use std::path::{Path, PathBuf};

/// File name of the pre-segmentation single-file journal, read as segment 0.
pub const LEGACY_JOURNAL_FILE: &str = "journal.rtaj";

/// Suffix appended when a rejected segment is renamed aside at recovery.
pub const ORPHAN_SUFFIX: &str = "orphaned";

/// File name of segment `seq`.
pub fn segment_file_name(seq: u64) -> String {
    if seq == 0 {
        LEGACY_JOURNAL_FILE.to_string()
    } else {
        format!("journal.{seq:06}.rtaj")
    }
}

/// Parses a directory-entry file name back into a segment sequence number.
/// Non-segment names (snapshots, temp files, orphans) return `None`.
pub fn parse_segment_seq(name: &str) -> Option<u64> {
    if name == LEGACY_JOURNAL_FILE {
        return Some(0);
    }
    let digits = name.strip_prefix("journal.")?.strip_suffix(".rtaj")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// One accepted segment of a journal directory.
#[derive(Debug)]
pub struct Segment {
    /// Sequence number (0 = legacy `journal.rtaj`).
    pub seq: u64,
    /// Full path of the segment file.
    pub path: PathBuf,
    /// The segment's parsed batches.
    pub contents: JournalContents,
}

/// A segment recovery refused to use, with the reason.
#[derive(Debug)]
pub struct RejectedSegment {
    /// Sequence number parsed from the file name.
    pub seq: u64,
    /// Full path of the rejected file.
    pub path: PathBuf,
    /// Why it was rejected.
    pub reason: String,
}

/// The validated contents of a journal directory.
#[derive(Debug, Default)]
pub struct JournalDirContents {
    /// Accepted segments in ascending sequence order.
    pub segments: Vec<Segment>,
    /// Segments that must be orphaned before appending resumes.
    pub rejected: Vec<RejectedSegment>,
    /// Human-readable observations (torn tails, rejections).
    pub notes: Vec<String>,
}

impl JournalDirContents {
    /// Batches of all accepted segments, in global order.
    pub fn batches(&self) -> impl Iterator<Item = &Vec<Action>> {
        self.segments.iter().flat_map(|s| s.contents.batches.iter())
    }

    /// Total actions across accepted segments.
    pub fn actions(&self) -> u64 {
        self.segments.iter().map(|s| s.contents.actions()).sum()
    }

    /// Id of the last accepted action (0 if empty).
    pub fn last_id(&self) -> u64 {
        self.segments
            .iter()
            .rev()
            .map(|s| s.contents.last_id())
            .find(|&id| id != 0)
            .unwrap_or(0)
    }
}

/// Reads and cross-validates every journal segment in `dir`.
///
/// A missing directory is an empty journal.  Unreadable or corrupt
/// segments are *rejected* (not fatal): the valid prefix of the sequence
/// is returned and the rejects are listed for orphaning.  Only a directory
/// listing failure is an error.
pub fn read_journal_dir(dir: &Path, fs: &Fs) -> Result<JournalDirContents, StateError> {
    let mut out = JournalDirContents::default();
    let entries = match fs.read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e.into()),
    };
    let mut files: Vec<(u64, PathBuf)> = entries
        .into_iter()
        .filter_map(|path| {
            let seq = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(parse_segment_seq)?;
            Some((seq, path))
        })
        .collect();
    files.sort();
    let mut last_id = 0u64;
    for (idx, (seq, path)) in files.iter().enumerate() {
        let newest = idx + 1 == files.len();
        // Rejection is per segment, never suffix-severing: id gaps between
        // accepted segments are legal on disk (a degraded-mode re-arm
        // starts a fresh segment and covers the gap with a snapshot), and
        // replay enforces id continuity against the snapshot watermark —
        // so a torn or unreadable middle segment must not discard the
        // durable segments written after it.
        let rejection = match read_journal_with(path, fs) {
            Err(e) => Some(format!("unreadable: {e}")),
            Ok(contents) => {
                let first = contents.first_id();
                if first != 0 && first <= last_id {
                    // Overlap/regression across the boundary: machine-written
                    // segments never do this, so the file is stale or forged.
                    Some(format!(
                        "id overlap: starts at {first}, previous segment ended at {last_id}"
                    ))
                } else {
                    if contents.ignored_bytes > 0 {
                        out.notes.push(format!(
                            "segment {}: ignored {} bytes past the valid prefix{}",
                            path.display(),
                            contents.ignored_bytes,
                            if newest {
                                " (torn tail)"
                            } else {
                                " (torn mid-sequence write)"
                            },
                        ));
                    }
                    if contents.last_id() != 0 {
                        last_id = contents.last_id();
                    }
                    out.segments.push(Segment {
                        seq: *seq,
                        path: path.clone(),
                        contents,
                    });
                    None
                }
            }
        };
        if let Some(reason) = rejection {
            out.notes
                .push(format!("segment {}: rejected: {reason}", path.display()));
            out.rejected.push(RejectedSegment {
                seq: *seq,
                path: path.clone(),
                reason,
            });
        }
    }
    Ok(out)
}

/// A segment already rotated out of the append path; compaction deletes it
/// once a snapshot watermark covers its last action.
#[derive(Debug, Clone)]
pub struct CompletedSegment {
    /// Sequence number.
    pub seq: u64,
    /// Segment file path.
    pub path: PathBuf,
    /// Last action id in the segment (0 = empty segment, always deletable).
    pub last_id: u64,
}

/// Where appending resumes inside an existing journal directory.
#[derive(Debug, Clone)]
pub struct ResumePoint {
    /// Sequence number of the segment to resume.
    pub seq: u64,
    /// Its path.
    pub path: PathBuf,
    /// Truncation offset (drops the torn tail, or everything past a
    /// recovery-detected gap).
    pub valid_len: u64,
}

/// The full plan for re-arming a segmented journal after recovery.
#[derive(Debug, Clone, Default)]
pub struct JournalResume {
    /// Segment to resume appending to (`None` = create a fresh one).
    pub resume: Option<ResumePoint>,
    /// Sequence number for the next *created* segment.
    pub next_seq: u64,
    /// Files to rename aside before any append.
    pub orphans: Vec<PathBuf>,
    /// Accepted segments older than the resume point (compaction
    /// candidates, oldest first).
    pub completed: Vec<CompletedSegment>,
    /// Last valid action id across the accepted segments.
    pub last_id: u64,
}

/// Builds the default resume plan from a directory read: resume the newest
/// accepted segment, orphan every rejected file.  `recover_engine` refines
/// this plan when replay stops early (a mid-sequence gap past the snapshot
/// watermark).
pub fn resume_plan(contents: &JournalDirContents) -> JournalResume {
    let max_seen = contents
        .segments
        .iter()
        .map(|s| s.seq)
        .chain(contents.rejected.iter().map(|r| r.seq))
        .max();
    let mut plan = JournalResume {
        next_seq: max_seen.map_or(1, |m| m + 1),
        orphans: contents.rejected.iter().map(|r| r.path.clone()).collect(),
        last_id: contents.last_id(),
        ..JournalResume::default()
    };
    if let Some((newest, older)) = contents.segments.split_last() {
        plan.resume = Some(ResumePoint {
            seq: newest.seq,
            path: newest.path.clone(),
            valid_len: newest.contents.valid_len,
        });
        plan.completed = older
            .iter()
            .map(|s| CompletedSegment {
                seq: s.seq,
                path: s.path.clone(),
                last_id: s.contents.last_id(),
            })
            .collect();
    }
    plan
}

/// The append side of a segmented journal: one active segment, rotation on
/// demand (or past a size backstop), compaction against snapshot
/// watermarks.
#[derive(Debug)]
pub struct SegmentedJournal {
    dir: PathBuf,
    fs: Fs,
    writer: JournalWriter,
    current_seq: u64,
    current_path: PathBuf,
    next_seq: u64,
    rotate_bytes: u64,
    last_id: u64,
    completed: Vec<CompletedSegment>,
    unsynced_batches: u64,
}

impl SegmentedJournal {
    /// Opens the journal according to `plan`: orphans rejected files, then
    /// resumes the newest accepted segment (truncating its tail to the
    /// plan's `valid_len`) or creates a fresh one.
    ///
    /// `rotate_bytes` is the size backstop (0 = rotate only on snapshots).
    pub fn open(
        dir: &Path,
        fs: &Fs,
        rotate_bytes: u64,
        plan: &JournalResume,
    ) -> io::Result<SegmentedJournal> {
        for orphan in &plan.orphans {
            let mut name = orphan
                .file_name()
                .map(|n| n.to_os_string())
                .unwrap_or_default();
            name.push(".");
            name.push(ORPHAN_SUFFIX);
            fs.rename(orphan, &orphan.with_file_name(name))?;
        }
        if !plan.orphans.is_empty() {
            fs.sync_dir(dir)?;
        }
        let (writer, current_seq, current_path, next_seq) = match &plan.resume {
            Some(point) => (
                JournalWriter::resume_with(&point.path, point.valid_len, fs)?,
                point.seq,
                point.path.clone(),
                plan.next_seq,
            ),
            None => {
                let path = dir.join(segment_file_name(plan.next_seq));
                let writer = JournalWriter::create_with(&path, fs)?;
                fs.sync_dir(dir)?;
                (writer, plan.next_seq, path, plan.next_seq + 1)
            }
        };
        Ok(SegmentedJournal {
            dir: dir.to_path_buf(),
            fs: fs.clone(),
            writer,
            current_seq,
            current_path,
            next_seq,
            rotate_bytes,
            last_id: plan.last_id,
            completed: plan.completed.clone(),
            unsynced_batches: 0,
        })
    }

    /// Convenience for tests and tools: read + plan + open in one call.
    pub fn open_dir(dir: &Path, fs: &Fs, rotate_bytes: u64) -> io::Result<SegmentedJournal> {
        let contents = read_journal_dir(dir, fs)
            .map_err(|e| io::Error::other(format!("journal dir unreadable: {e}")))?;
        Self::open(dir, fs, rotate_bytes, &resume_plan(&contents))
    }

    /// Appends one batch to the active segment, rotating first if the size
    /// backstop was reached.
    pub fn append_batch(&mut self, actions: &[Action]) -> io::Result<()> {
        if actions.is_empty() {
            return Ok(());
        }
        if self.rotate_bytes > 0 && self.writer.len() >= self.rotate_bytes {
            self.rotate()?;
        }
        self.writer.append_batch(actions)?;
        self.last_id = actions.last().expect("non-empty").id.0;
        self.unsynced_batches += 1;
        Ok(())
    }

    /// Closes the active segment (fsync) and starts a fresh one.  The
    /// engine calls this when dispatching a snapshot, so the snapshot's
    /// watermark lands on a segment boundary and compaction can delete
    /// whole segments.  A no-op on an empty active segment.
    pub fn rotate(&mut self) -> io::Result<()> {
        if self.writer.is_empty() {
            return Ok(());
        }
        // Seal the old segment first: if any step fails the writer is
        // untouched and the caller degrades with the journal consistent.
        self.writer.sync()?;
        let path = self.dir.join(segment_file_name(self.next_seq));
        let fresh = JournalWriter::create_with(&path, &self.fs)?;
        self.fs.sync_dir(&self.dir)?;
        self.completed.push(CompletedSegment {
            seq: self.current_seq,
            path: std::mem::replace(&mut self.current_path, path),
            last_id: self.last_id,
        });
        self.writer = fresh;
        self.current_seq = self.next_seq;
        self.next_seq += 1;
        self.unsynced_batches = 0;
        Ok(())
    }

    /// Deletes completed segments fully covered by a durable snapshot at
    /// `watermark` (last action id ≤ watermark).  The active segment is
    /// never deleted, and neither is any completed segment holding actions
    /// past the watermark — those are still needed for replay.  Returns
    /// how many segments were removed.
    pub fn compact(&mut self, watermark: u64) -> io::Result<u64> {
        let mut removed = 0;
        while let Some(seg) = self.completed.first() {
            if seg.last_id > watermark {
                break;
            }
            // Remove before un-listing: if the delete fails the segment
            // stays tracked and a later compaction retries.
            self.fs.remove_file(&seg.path)?;
            self.completed.remove(0);
            removed += 1;
        }
        if removed > 0 {
            self.fs.sync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    /// Re-arms a journal around a fresh segment after a degraded period:
    /// creates segment `seq` and fsyncs its directory entry, carrying the
    /// pre-degrade segments over as compaction candidates.  Nothing is
    /// appended yet — the caller appends and syncs the first batch, then
    /// publishes the snapshot that covers the un-journaled gap.
    pub fn rearm(
        dir: &Path,
        fs: &Fs,
        rotate_bytes: u64,
        seq: u64,
        completed: Vec<CompletedSegment>,
        last_id: u64,
    ) -> io::Result<SegmentedJournal> {
        let path = dir.join(segment_file_name(seq));
        let writer = JournalWriter::create_with(&path, fs)?;
        fs.sync_dir(dir)?;
        Ok(SegmentedJournal {
            dir: dir.to_path_buf(),
            fs: fs.clone(),
            writer,
            current_seq: seq,
            current_path: path,
            next_seq: seq + 1,
            rotate_bytes,
            last_id,
            completed,
            unsynced_batches: 0,
        })
    }

    /// Tears the journal down into degraded-mode bookkeeping: the sequence
    /// number the next fresh segment must use, and every on-disk segment
    /// (the active one included) as a compaction candidate once a later
    /// snapshot covers its ids.
    pub fn decommission(self) -> (u64, Vec<CompletedSegment>) {
        let mut segments = self.completed;
        segments.push(CompletedSegment {
            seq: self.current_seq,
            path: self.current_path,
            last_id: self.last_id,
        });
        (self.next_seq, segments)
    }

    /// Forces the active segment to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.sync()?;
        self.unsynced_batches = 0;
        Ok(())
    }

    /// Batches appended since the last fsync of the active segment —
    /// exactly what a machine crash (not process crash) could lose.
    pub fn unsynced_batches(&self) -> u64 {
        self.unsynced_batches
    }

    /// Segments currently on disk (completed + active).
    pub fn segments(&self) -> u64 {
        self.completed.len() as u64 + 1
    }

    /// Sequence number of the active segment.
    pub fn current_seq(&self) -> u64 {
        self.current_seq
    }

    /// Last appended (or resumed) action id.
    pub fn last_id(&self) -> u64 {
        self.last_id
    }

    /// Whether the active segment has any batches.
    pub fn active_is_empty(&self) -> bool {
        self.writer.is_empty()
    }

    /// Bytes in the active segment.
    pub fn active_len(&self) -> u64 {
        self.writer.len().max(HEADER_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rtim-segjournal-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn roots(ids: std::ops::RangeInclusive<u64>) -> Vec<Action> {
        ids.map(|i| Action::root(i, (i % 97) as u32)).collect()
    }

    #[test]
    fn segment_names_round_trip() {
        assert_eq!(segment_file_name(0), "journal.rtaj");
        assert_eq!(segment_file_name(3), "journal.000003.rtaj");
        assert_eq!(parse_segment_seq("journal.rtaj"), Some(0));
        assert_eq!(parse_segment_seq("journal.000003.rtaj"), Some(3));
        assert_eq!(parse_segment_seq("journal.1234567.rtaj"), Some(1234567));
        assert_eq!(parse_segment_seq("snapshot.rtss"), None);
        assert_eq!(parse_segment_seq("journal.000003.rtaj.orphaned"), None);
        assert_eq!(parse_segment_seq("journal.abc.rtaj"), None);
    }

    #[test]
    fn rotation_splits_and_dir_read_reassembles() {
        let dir = temp_dir("rotate");
        let fs = Fs::real();
        let mut j = SegmentedJournal::open_dir(&dir, &fs, 0).unwrap();
        j.append_batch(&roots(1..=5)).unwrap();
        j.rotate().unwrap();
        j.append_batch(&roots(6..=8)).unwrap();
        j.rotate().unwrap();
        j.append_batch(&roots(9..=9)).unwrap();
        j.sync().unwrap();
        assert_eq!(j.segments(), 3);
        drop(j);
        let contents = read_journal_dir(&dir, &fs).unwrap();
        assert_eq!(contents.segments.len(), 3);
        assert_eq!(contents.actions(), 9);
        assert_eq!(contents.last_id(), 9);
        assert!(contents.rejected.is_empty());
        let all: Vec<u64> = contents
            .batches()
            .flat_map(|b| b.iter().map(|a| a.id.0))
            .collect();
        assert_eq!(all, (1..=9).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn size_backstop_rotates_automatically() {
        let dir = temp_dir("backstop");
        let fs = Fs::real();
        let mut j = SegmentedJournal::open_dir(&dir, &fs, 64).unwrap();
        let mut next = 1;
        for _ in 0..10 {
            j.append_batch(&roots(next..=next + 1)).unwrap();
            next += 2;
        }
        assert!(j.segments() > 1, "64-byte backstop must have rotated");
        drop(j);
        let contents = read_journal_dir(&dir, &fs).unwrap();
        assert_eq!(contents.actions(), 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_deletes_only_covered_segments() {
        let dir = temp_dir("compact");
        let fs = Fs::real();
        let mut j = SegmentedJournal::open_dir(&dir, &fs, 0).unwrap();
        j.append_batch(&roots(1..=4)).unwrap();
        j.rotate().unwrap();
        j.append_batch(&roots(5..=8)).unwrap();
        j.rotate().unwrap();
        j.append_batch(&roots(9..=12)).unwrap();
        // Watermark 6 covers segment 1 (ids 1–4) but NOT segment 2 (5–8).
        assert_eq!(j.compact(6).unwrap(), 1);
        assert_eq!(j.segments(), 2);
        // Watermark 8 now covers segment 2; the active segment survives.
        assert_eq!(j.compact(8).unwrap(), 1);
        assert_eq!(j.segments(), 1);
        j.sync().unwrap();
        drop(j);
        let contents = read_journal_dir(&dir, &fs).unwrap();
        assert_eq!(contents.actions(), 4, "only the active segment remains");
        assert_eq!(contents.last_id(), 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_single_file_reads_as_segment_zero_and_resumes() {
        let dir = temp_dir("legacy");
        let fs = Fs::real();
        let mut w = JournalWriter::create(dir.join(LEGACY_JOURNAL_FILE)).unwrap();
        w.append_batch(&roots(1..=3)).unwrap();
        drop(w);
        let contents = read_journal_dir(&dir, &fs).unwrap();
        assert_eq!(contents.segments.len(), 1);
        assert_eq!(contents.segments[0].seq, 0);
        let mut j = SegmentedJournal::open(&dir, &fs, 0, &resume_plan(&contents)).unwrap();
        j.append_batch(&roots(4..=5)).unwrap();
        j.rotate().unwrap();
        assert_eq!(j.current_seq(), 1, "first rotation leaves the legacy name");
        drop(j);
        let contents = read_journal_dir(&dir, &fs).unwrap();
        assert_eq!(contents.actions(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_in_newest_segment_is_tolerated() {
        let dir = temp_dir("torn-newest");
        let fs = Fs::real();
        let mut j = SegmentedJournal::open_dir(&dir, &fs, 0).unwrap();
        j.append_batch(&roots(1..=4)).unwrap();
        j.rotate().unwrap();
        j.append_batch(&roots(5..=6)).unwrap();
        drop(j);
        // Tear the newest segment.
        let newest = dir.join(segment_file_name(2));
        let mut bytes = std::fs::read(&newest).unwrap();
        bytes.extend_from_slice(&[0xAB; 7]);
        std::fs::write(&newest, bytes).unwrap();
        let contents = read_journal_dir(&dir, &fs).unwrap();
        assert_eq!(contents.actions(), 6);
        assert!(contents.rejected.is_empty());
        assert!(contents.notes.iter().any(|n| n.contains("torn tail")));
        // Resume truncates the tear and appends cleanly.
        let mut j = SegmentedJournal::open(&dir, &fs, 0, &resume_plan(&contents)).unwrap();
        j.append_batch(&roots(7..=7)).unwrap();
        drop(j);
        assert_eq!(read_journal_dir(&dir, &fs).unwrap().actions(), 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_middle_segment_keeps_its_prefix_and_later_segments() {
        let dir = temp_dir("torn-middle");
        let fs = Fs::real();
        let mut j = SegmentedJournal::open_dir(&dir, &fs, 0).unwrap();
        j.append_batch(&roots(1..=4)).unwrap();
        j.rotate().unwrap();
        j.append_batch(&roots(5..=6)).unwrap();
        j.append_batch(&roots(7..=8)).unwrap();
        j.rotate().unwrap();
        j.append_batch(&roots(9..=12)).unwrap();
        drop(j);
        // Tear the MIDDLE segment (seq 2 holds ids 5–8 in two batches):
        // its second batch loses 3 bytes.
        let middle = dir.join(segment_file_name(2));
        let mut bytes = std::fs::read(&middle).unwrap();
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&middle, bytes).unwrap();
        let contents = read_journal_dir(&dir, &fs).unwrap();
        // Seq 1 whole, seq 2's valid prefix (first batch), and — because a
        // snapshot may cover the hole — seq 3 is still accepted: whether
        // its actions are served is decided by replay-time id-continuity
        // enforcement against the snapshot watermark, not at read time.
        assert_eq!(contents.segments.len(), 3);
        assert_eq!(contents.segments[1].contents.last_id(), 6);
        assert_eq!(contents.last_id(), 12);
        assert!(contents.rejected.is_empty());
        assert!(contents
            .notes
            .iter()
            .any(|n| n.contains("torn mid-sequence")));
        // Resume continues after the newest segment.
        let mut j = SegmentedJournal::open(&dir, &fs, 0, &resume_plan(&contents)).unwrap();
        j.append_batch(&roots(13..=14)).unwrap();
        drop(j);
        assert_eq!(read_journal_dir(&dir, &fs).unwrap().last_id(), 14);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_middle_segment_is_rejected_alone_and_orphaned() {
        let dir = temp_dir("corrupt-middle");
        let fs = Fs::real();
        let mut w = JournalWriter::create(dir.join(segment_file_name(1))).unwrap();
        w.append_batch(&roots(1..=4)).unwrap();
        drop(w);
        std::fs::write(dir.join(segment_file_name(2)), b"not a journal").unwrap();
        let mut w = JournalWriter::create(dir.join(segment_file_name(3))).unwrap();
        w.append_batch(&roots(9..=12)).unwrap();
        drop(w);
        let contents = read_journal_dir(&dir, &fs).unwrap();
        assert_eq!(contents.segments.len(), 2);
        assert_eq!(contents.rejected.len(), 1);
        assert_eq!(contents.rejected[0].seq, 2);
        assert_eq!(contents.last_id(), 12);
        // Opening orphans only the corrupt file.
        drop(SegmentedJournal::open(&dir, &fs, 0, &resume_plan(&contents)).unwrap());
        assert!(dir.join("journal.000002.rtaj.orphaned").exists());
        assert!(dir.join(segment_file_name(3)).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rearm_opens_a_fresh_segment_and_decommission_tracks_every_file() {
        let dir = temp_dir("rearm");
        let fs = Fs::real();
        let mut j = SegmentedJournal::open_dir(&dir, &fs, 0).unwrap();
        j.append_batch(&roots(1..=4)).unwrap();
        let (next_seq, stale) = j.decommission();
        assert_eq!(next_seq, 2);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].last_id, 4);
        // A degraded period loses ids 5–9; the re-armed segment resumes at
        // 10 and a snapshot at watermark ≥ 9 covers the gap.
        let mut j = SegmentedJournal::rearm(&dir, &fs, 0, next_seq, stale, 4).unwrap();
        j.append_batch(&roots(10..=12)).unwrap();
        j.sync().unwrap();
        assert_eq!(j.segments(), 2);
        assert_eq!(j.compact(12).unwrap(), 1, "stale pre-degrade segment deleted");
        drop(j);
        let contents = read_journal_dir(&dir, &fs).unwrap();
        assert_eq!(contents.segments.len(), 1);
        assert_eq!(contents.last_id(), 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn id_overlap_across_segments_is_rejected() {
        let dir = temp_dir("overlap");
        let fs = Fs::real();
        let mut w = JournalWriter::create(dir.join(segment_file_name(1))).unwrap();
        w.append_batch(&roots(1..=6)).unwrap();
        drop(w);
        // A stale segment whose ids rewind.
        let mut w = JournalWriter::create(dir.join(segment_file_name(2))).unwrap();
        w.append_batch(&roots(4..=9)).unwrap();
        drop(w);
        let contents = read_journal_dir(&dir, &fs).unwrap();
        assert_eq!(contents.segments.len(), 1);
        assert_eq!(contents.last_id(), 6);
        assert_eq!(contents.rejected.len(), 1);
        assert!(contents.rejected[0].reason.contains("id overlap"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gaps_across_segments_are_legal() {
        let dir = temp_dir("gap");
        let fs = Fs::real();
        let mut w = JournalWriter::create(dir.join(segment_file_name(1))).unwrap();
        w.append_batch(&roots(1..=6)).unwrap();
        drop(w);
        // A post-degraded-period segment: ids resume past a gap.
        let mut w = JournalWriter::create(dir.join(segment_file_name(2))).unwrap();
        w.append_batch(&roots(20..=24)).unwrap();
        drop(w);
        let contents = read_journal_dir(&dir, &fs).unwrap();
        assert_eq!(contents.segments.len(), 2);
        assert_eq!(contents.last_id(), 24);
        assert!(contents.rejected.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_an_empty_journal() {
        let dir = std::env::temp_dir().join(format!("rtim-segjournal-none-{}", std::process::id()));
        let contents = read_journal_dir(&dir, &Fs::real()).unwrap();
        assert_eq!(contents.actions(), 0);
        assert_eq!(resume_plan(&contents).next_seq, 1);
    }
}
