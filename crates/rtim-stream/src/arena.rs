//! Recycling word-buffer arena for slide-time bitmap allocation.
//!
//! The slide loop's allocator traffic is bitmap `Vec<u64>` churn: every
//! small→bitmap promotion of an [`InfluenceSet`](crate::InfluenceSet)
//! allocates, every growth past capacity reallocates, and every expired
//! checkpoint frees thousands of them at once.  [`WordArena`] closes that
//! loop per worker: buffers harvested from dying sets (and from in-place
//! growth) are bucketed by power-of-two capacity class and handed back
//! out — zero-filled — to the next promotion, so steady-state slides stop
//! hitting the global allocator.
//!
//! This is a *recycling pool*, not a literal bump arena: the bitmaps
//! allocated during a slide outlive it (they live inside influence sets
//! until their checkpoint expires), so memory cannot be reclaimed
//! wholesale at a slide boundary.  What resets per slide is the retention
//! policy — [`WordArena::end_slide`] trims each class back to a fixed
//! cap so a burst (e.g. a mass expiry) cannot pin memory forever.
//!
//! Buffers returned by [`WordArena::take_zeroed`] are all-zero with
//! `len == words`; only the *capacity* may exceed the request (rounded to
//! the class size).  `InfluenceSet` equality, iteration and the snapshot
//! codecs are content/length-based, so arena-backed sets are
//! indistinguishable from heap-backed ones — property-tested in
//! `tests/kernel_props.rs`.

/// Largest capacity class retained: `1 << (CLASSES - 1)` words (2 MiB of
/// bitmap).  Larger buffers are simply dropped on recycle.
const CLASSES: usize = 19;

/// Buffers kept per class after [`WordArena::end_slide`] trims.
const RETAIN_PER_CLASS: usize = 64;

/// A per-worker recycling pool of `Vec<u64>` bitmap buffers.
#[derive(Debug, Default)]
pub struct WordArena {
    /// `classes[k]` holds buffers whose capacity is exactly `1 << k`.
    classes: Vec<Vec<Vec<u64>>>,
    takes: u64,
    hits: u64,
}

impl WordArena {
    /// An empty arena (first takes fall through to the global allocator).
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn class_of(words: usize) -> usize {
        words.next_power_of_two().trailing_zeros() as usize
    }

    /// Hands out an all-zero buffer with `len == words` (capacity rounded
    /// up to the power-of-two class), recycled if one is available.
    pub fn take_zeroed(&mut self, words: usize) -> Vec<u64> {
        self.takes += 1;
        let class = Self::class_of(words.max(1));
        if let Some(mut buf) = self
            .classes
            .get_mut(class)
            .and_then(|bucket| bucket.pop())
        {
            self.hits += 1;
            buf.clear();
            buf.resize(words, 0);
            return buf;
        }
        let mut buf = Vec::with_capacity(1 << class);
        buf.resize(words, 0);
        buf
    }

    /// Grows `buf` to `words` zero-extended, recycling the old backing
    /// store when growth forces a new allocation.  No-op if `buf` is
    /// already long enough.
    pub fn grow_zeroed(&mut self, buf: &mut Vec<u64>, words: usize) {
        if words <= buf.len() {
            return;
        }
        if words <= buf.capacity() {
            buf.resize(words, 0);
            return;
        }
        let mut bigger = self.take_zeroed(words);
        bigger[..buf.len()].copy_from_slice(buf);
        let old = std::mem::replace(buf, bigger);
        self.recycle(old);
    }

    /// Returns a buffer to the pool (dropped if over the class ceiling —
    /// the per-slide trim keeps retention bounded either way).
    pub fn recycle(&mut self, buf: Vec<u64>) {
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        // Only exact power-of-two capacities re-enter their class: a
        // recycled buffer must really hold `1 << class` words or
        // `take_zeroed` would under-deliver capacity.
        if !cap.is_power_of_two() {
            return;
        }
        let class = cap.trailing_zeros() as usize;
        if class >= CLASSES {
            return;
        }
        if self.classes.len() <= class {
            self.classes.resize_with(class + 1, Vec::new);
        }
        self.classes[class].push(buf);
    }

    /// Slide-boundary reset: trims every class to its retention cap.
    pub fn end_slide(&mut self) {
        for bucket in &mut self.classes {
            bucket.truncate(RETAIN_PER_CLASS);
        }
    }

    /// `(takes, free-list hits)` served so far (instrumentation/tests).
    pub fn stats(&self) -> (u64, u64) {
        (self.takes, self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_after_recycle() {
        let mut arena = WordArena::new();
        let mut buf = arena.take_zeroed(5);
        assert_eq!(buf, vec![0u64; 5]);
        buf.iter_mut().for_each(|w| *w = u64::MAX);
        arena.recycle(buf);
        // 6 words rounds up to the same capacity class (8) as 5 did.
        let again = arena.take_zeroed(6);
        assert_eq!(again, vec![0u64; 6]);
        assert_eq!(arena.stats(), (2, 1));
    }

    #[test]
    fn classes_round_up_capacity() {
        let mut arena = WordArena::new();
        let buf = arena.take_zeroed(5);
        assert_eq!(buf.capacity(), 8);
        // A recycled 8-cap buffer serves any request in (4, 8].
        arena.recycle(buf);
        let buf = arena.take_zeroed(7);
        assert_eq!(buf.len(), 7);
        assert_eq!(arena.stats().1, 1);
        // ...but not a request for 9 words.
        arena.recycle(buf);
        let buf = arena.take_zeroed(9);
        assert_eq!(buf.capacity(), 16);
        assert_eq!(arena.stats().1, 1);
    }

    #[test]
    fn grow_zeroed_recycles_old_backing() {
        let mut arena = WordArena::new();
        let mut buf = arena.take_zeroed(5);
        buf[0] = 0xff;
        arena.grow_zeroed(&mut buf, 6);
        assert_eq!(buf.len(), 6);
        assert_eq!(buf[0], 0xff);
        assert_eq!(&buf[5..], &[0]);
        // Growth within the class capacity must not allocate a new buffer.
        assert_eq!(arena.stats().0, 1);
        arena.grow_zeroed(&mut buf, 40);
        assert_eq!(buf.len(), 40);
        assert_eq!(buf[0], 0xff);
        // The old 8-cap backing store went back to the pool.
        let reused = arena.take_zeroed(8);
        assert_eq!(reused, vec![0u64; 8]);
        assert_eq!(arena.stats().1, 1);
    }

    #[test]
    fn end_slide_trims_retention() {
        let mut arena = WordArena::new();
        let bufs: Vec<_> = (0..100).map(|_| arena.take_zeroed(4)).collect();
        for b in bufs {
            arena.recycle(b);
        }
        arena.end_slide();
        let retained: usize = arena.classes.iter().map(|b| b.len()).sum();
        assert_eq!(retained, RETAIN_PER_CLASS);
    }

    #[test]
    fn oversized_and_empty_buffers_are_dropped() {
        let mut arena = WordArena::new();
        arena.recycle(Vec::new());
        arena.recycle(Vec::with_capacity(1 << CLASSES));
        arena.recycle(Vec::with_capacity(12)); // not a power of two
        assert!(arena.classes.iter().all(|b| b.is_empty()));
    }
}
