//! Core identifiers and the [`Action`] type.
//!
//! A social stream is an unbounded, time-ordered sequence of *actions*.
//! Following §3 of the paper, an action `a_t = ⟨u, a_{t'}⟩_t` records that
//! user `u` performed an activity at time `t` responding to an earlier action
//! `a_{t'}` (`t' < t`).  An action with no parent is a *root* action
//! `a_t = ⟨u, nil⟩_t` (e.g. an original tweet or a Reddit post).
//!
//! In the sequence-based sliding-window model the "time" of an action is its
//! position in the stream, so [`ActionId`] doubles as the timestamp.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a user in the social network.
///
/// Users are dense `u32` indices (the paper's largest dataset has fewer than
/// three million users, and synthetic graphs are generated with dense ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

impl UserId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl From<u32> for UserId {
    fn from(v: u32) -> Self {
        UserId(v)
    }
}

/// Identifier of an action: its 1-based position (timestamp) in the stream.
///
/// The paper's sequence-based window model identifies actions by arrival
/// order, so the id is also the logical timestamp `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActionId(pub u64);

/// Logical timestamp of an action (alias of [`ActionId`] semantics).
pub type Timestamp = u64;

impl ActionId {
    /// Returns the raw timestamp value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl From<u64> for ActionId {
    fn from(v: u64) -> Self {
        ActionId(v)
    }
}

/// A single social action `a_t = ⟨user, parent⟩_t`.
///
/// `parent == None` marks a root action.  The `id` is assigned by the stream
/// in strictly increasing order; consumers may rely on monotonicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Action {
    /// Position of the action in the stream (the logical timestamp `t`).
    pub id: ActionId,
    /// The user performing the action.
    pub user: UserId,
    /// The action this one responds to, if any (`a_{t'}` with `t' < t`).
    pub parent: Option<ActionId>,
}

impl Action {
    /// Creates a root action (no parent), e.g. an original post.
    pub fn root(id: impl Into<ActionId>, user: impl Into<UserId>) -> Self {
        Action {
            id: id.into(),
            user: user.into(),
            parent: None,
        }
    }

    /// Creates a reply action responding to `parent`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `parent >= id`, which would violate the
    /// causality requirement `t' < t` of the model.
    pub fn reply(
        id: impl Into<ActionId>,
        user: impl Into<UserId>,
        parent: impl Into<ActionId>,
    ) -> Self {
        let id = id.into();
        let parent = parent.into();
        debug_assert!(parent < id, "reply parent must precede the action");
        Action {
            id,
            user: user.into(),
            parent: Some(parent),
        }
    }

    /// `true` if the action does not respond to any earlier action.
    #[inline]
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.parent {
            Some(p) => write!(f, "<{}, {}>{}", self.user, p, self.id.0),
            None => write!(f, "<{}, nil>{}", self.user, self.id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_action_has_no_parent() {
        let a = Action::root(1u64, 3u32);
        assert!(a.is_root());
        assert_eq!(a.user, UserId(3));
        assert_eq!(a.id, ActionId(1));
    }

    #[test]
    fn reply_action_keeps_parent() {
        let a = Action::reply(5u64, 2u32, 1u64);
        assert!(!a.is_root());
        assert_eq!(a.parent, Some(ActionId(1)));
    }

    #[test]
    #[should_panic]
    fn reply_to_future_action_panics_in_debug() {
        let _ = Action::reply(1u64, 2u32, 5u64);
    }

    #[test]
    fn display_formats_match_paper_notation() {
        let root = Action::root(1u64, 1u32);
        let reply = Action::reply(2u64, 2u32, 1u64);
        assert_eq!(root.to_string(), "<u1, nil>1");
        assert_eq!(reply.to_string(), "<u2, a1>2");
    }

    #[test]
    fn ids_are_ordered_by_timestamp() {
        assert!(ActionId(1) < ActionId(2));
        assert!(UserId(1) < UserId(2));
        assert_eq!(ActionId::from(7u64).value(), 7);
        assert_eq!(UserId::from(7u32).index(), 7);
    }
}
