//! Hot-path word kernels: unrolled (and optionally SIMD) bitmap loops.
//!
//! The coverage hot path of the whole workspace is three word loops —
//! `popcount(set & !covered)` (marginal gain), the same with an early-exit
//! threshold, and the absorbing union `covered |= set` — plus the plain
//! population count used when restoring persisted bitmaps.  This module
//! owns all four as explicit kernels so every caller
//! ([`CoverageState`](../../rtim_submodular/coverage/index.html),
//! [`InfluenceSet`](crate::InfluenceSet), the snapshot codecs) runs the
//! same tuned code:
//!
//! * **4-wide unrolling with independent accumulators** — one `u64`
//!   popcount per cycle has a 3-instruction SWAR dependency chain on the
//!   default `x86-64` baseline; four independent accumulators let the
//!   out-of-order core overlap them.
//! * **Counts stay integral until the end** — the unit-weight objective
//!   sums `u32` popcounts in `u64` accumulators and converts to `f64`
//!   once, at the caller.  Unit gains are exact small integers, so integer
//!   reassociation is bit-identical to the old one-word-at-a-time float
//!   accumulation (every intermediate is exactly representable).  Weighted
//!   accumulation does **not** go through these kernels — float order
//!   must stay scalar per-word (see `docs/PERF.md`).
//! * **`simd` feature** — `std::simd` is still unstable on the pinned
//!   stable toolchain, so the gated implementation uses the stable
//!   `std::arch` route instead: `#[target_feature(enable = "popcnt")]`
//!   respecializations of the same kernels (the compiler lowers
//!   `count_ones` to one hardware `popcnt` instead of the ~12-op SWAR
//!   sequence the baseline build must emit) and an AVX2 nibble-lookup
//!   popcount (Muła's `vpshufb` + `vpsadbw` reduction) for long runs,
//!   both dispatched at runtime via `is_x86_feature_detected!`.  All
//!   variants are differentially property-tested against the
//!   [`reference`] scalars in `tests/kernel_props.rs`.
//!
//! ## Early-exit granularity
//!
//! [`and_not_popcount_at_least`] checks the target after each 4-word
//! block (per word only in the tail), not after every word like the old
//! scalar loop.  The truncated return value can therefore differ from the
//! old implementation's — but callers only use it in the predicates
//! `gain >= target` and `gain > 0`, and both are invariant under where
//! the loop stops once the target is reached (the accumulated count is
//! monotone).  The [`reference`] implementation mirrors the block
//! granularity exactly so the differential tests can assert full bit
//! identity, not just predicate equivalence.

/// Population count over a word slice.
///
/// Shared by every "recompute the covered count from a restored bitmap"
/// path (`CoverageState::from_snapshot`, `InfluenceSet::from_words`).
#[inline]
pub fn popcount_words(words: &[u64]) -> usize {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if let Some(n) = simd::popcount_words(words) {
        return n;
    }
    popcount_words_impl(words)
}

/// `popcount(set & !covered)` over two equal-length word slices: how many
/// users of `set` a coverage bitmap does not cover yet.
///
/// Callers with unequal lengths split at the common prefix and add
/// [`popcount_words`] of the uncovered tail (a missing covered word is an
/// all-zero word).
#[inline]
pub fn and_not_popcount(set: &[u64], covered: &[u64]) -> usize {
    debug_assert_eq!(set.len(), covered.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if let Some(n) = simd::and_not_popcount(set, covered) {
        return n;
    }
    and_not_popcount_impl(set, covered)
}

/// [`and_not_popcount`] with an early exit: stops counting as soon as the
/// running count reaches `target`, checking at 4-word block boundaries
/// (per word in the tail).  Returns the possibly-truncated count.
#[inline]
pub fn and_not_popcount_at_least(set: &[u64], covered: &[u64], target: f64) -> usize {
    debug_assert_eq!(set.len(), covered.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if let Some(n) = simd::and_not_popcount_at_least(set, covered, target) {
        return n;
    }
    and_not_popcount_at_least_impl(set, covered, target)
}

/// Absorbing union: `covered[i] |= set[i]`, returning how many bits were
/// newly set.  Equal-length slices; callers resize `covered` first.
#[inline]
pub fn absorb_count(set: &[u64], covered: &mut [u64]) -> usize {
    debug_assert_eq!(set.len(), covered.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if let Some(n) = simd::absorb_count(set, covered) {
        return n;
    }
    absorb_count_impl(set, covered)
}

// ---------------------------------------------------------------------------
// Unrolled implementations (shared verbatim by the `simd` respecializations:
// inside a `#[target_feature(enable = "popcnt")]` caller the inlined
// `count_ones` lowers to the hardware instruction).
// ---------------------------------------------------------------------------

#[inline(always)]
fn popcount_words_impl(words: &[u64]) -> usize {
    let mut chunks = words.chunks_exact(4);
    let (mut a, mut b, mut c, mut d) = (0u64, 0u64, 0u64, 0u64);
    for w in chunks.by_ref() {
        a += w[0].count_ones() as u64;
        b += w[1].count_ones() as u64;
        c += w[2].count_ones() as u64;
        d += w[3].count_ones() as u64;
    }
    let mut tail = 0u64;
    for &w in chunks.remainder() {
        tail += w.count_ones() as u64;
    }
    (a + b + c + d + tail) as usize
}

#[inline(always)]
fn and_not_popcount_impl(set: &[u64], covered: &[u64]) -> usize {
    let n = set.len().min(covered.len());
    let (set, covered) = (&set[..n], &covered[..n]);
    let mut sc = set.chunks_exact(4);
    let mut cc = covered.chunks_exact(4);
    let (mut a, mut b, mut c, mut d) = (0u64, 0u64, 0u64, 0u64);
    for (s, v) in sc.by_ref().zip(cc.by_ref()) {
        a += (s[0] & !v[0]).count_ones() as u64;
        b += (s[1] & !v[1]).count_ones() as u64;
        c += (s[2] & !v[2]).count_ones() as u64;
        d += (s[3] & !v[3]).count_ones() as u64;
    }
    let mut tail = 0u64;
    for (&s, &v) in sc.remainder().iter().zip(cc.remainder()) {
        tail += (s & !v).count_ones() as u64;
    }
    (a + b + c + d + tail) as usize
}

#[inline(always)]
fn and_not_popcount_at_least_impl(set: &[u64], covered: &[u64], target: f64) -> usize {
    let n = set.len().min(covered.len());
    let (set, covered) = (&set[..n], &covered[..n]);
    let mut sc = set.chunks_exact(4);
    let mut cc = covered.chunks_exact(4);
    let mut acc = 0u64;
    for (s, v) in sc.by_ref().zip(cc.by_ref()) {
        let a = (s[0] & !v[0]).count_ones() as u64;
        let b = (s[1] & !v[1]).count_ones() as u64;
        let c = (s[2] & !v[2]).count_ones() as u64;
        let d = (s[3] & !v[3]).count_ones() as u64;
        acc += a + b + c + d;
        if acc as f64 >= target {
            return acc as usize;
        }
    }
    for (&s, &v) in sc.remainder().iter().zip(cc.remainder()) {
        acc += (s & !v).count_ones() as u64;
        if acc as f64 >= target {
            return acc as usize;
        }
    }
    acc as usize
}

#[inline(always)]
fn absorb_count_impl(set: &[u64], covered: &mut [u64]) -> usize {
    let n = set.len().min(covered.len());
    let (set, covered) = (&set[..n], &mut covered[..n]);
    let mut sc = set.chunks_exact(4);
    let mut cc = covered.chunks_exact_mut(4);
    let (mut a, mut b, mut c, mut d) = (0u64, 0u64, 0u64, 0u64);
    for (s, v) in sc.by_ref().zip(cc.by_ref()) {
        a += (s[0] & !v[0]).count_ones() as u64;
        b += (s[1] & !v[1]).count_ones() as u64;
        c += (s[2] & !v[2]).count_ones() as u64;
        d += (s[3] & !v[3]).count_ones() as u64;
        v[0] |= s[0];
        v[1] |= s[1];
        v[2] |= s[2];
        v[3] |= s[3];
    }
    let mut tail = 0u64;
    for (&s, v) in sc.remainder().iter().zip(cc.into_remainder()) {
        tail += (s & !*v).count_ones() as u64;
        *v |= s;
    }
    (a + b + c + d + tail) as usize
}

// ---------------------------------------------------------------------------
// `--features simd`: stable std::arch respecializations.
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd {
    // The only unsafe this feature introduces is (a) the `target_feature`
    // call boundary — discharged by the `is_x86_feature_detected!` guards
    // at every call site in the parent module — and (b) nothing else: the
    // AVX2 body uses value-based intrinsics only (no pointer loads), which
    // are safe inside a matching `#[target_feature]` function.
    #![allow(unsafe_code)]

    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_andnot_si256,
        _mm256_extract_epi64, _mm256_set1_epi8, _mm256_set_epi64x, _mm256_setr_epi8,
        _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi16, _mm256_sad_epu8,
    };

    /// Below this many words the per-call AVX2 setup (vector build +
    /// horizontal reduction) costs more than it saves; use the `popcnt`
    /// kernels instead.
    const AVX2_MIN_WORDS: usize = 16;

    // Safe dispatchers: `None` means "no suitable CPU feature, take the
    // generic kernel".  `is_x86_feature_detected!` caches in std behind an
    // atomic load, so per-call detection is one relaxed load.

    #[inline]
    pub(super) fn popcount_words(words: &[u64]) -> Option<usize> {
        if words.len() >= AVX2_MIN_WORDS && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support verified at runtime just above.
            return Some(unsafe { popcount_words_avx2(words) });
        }
        if std::arch::is_x86_feature_detected!("popcnt") {
            // SAFETY: popcnt support verified at runtime just above.
            return Some(unsafe { popcount_words_popcnt(words) });
        }
        None
    }

    #[inline]
    pub(super) fn and_not_popcount(set: &[u64], covered: &[u64]) -> Option<usize> {
        if set.len() >= AVX2_MIN_WORDS && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support verified at runtime just above.
            return Some(unsafe { and_not_popcount_avx2(set, covered) });
        }
        if std::arch::is_x86_feature_detected!("popcnt") {
            // SAFETY: popcnt support verified at runtime just above.
            return Some(unsafe { and_not_popcount_popcnt(set, covered) });
        }
        None
    }

    #[inline]
    pub(super) fn and_not_popcount_at_least(
        set: &[u64],
        covered: &[u64],
        target: f64,
    ) -> Option<usize> {
        if std::arch::is_x86_feature_detected!("popcnt") {
            // SAFETY: popcnt support verified at runtime just above.
            return Some(unsafe { and_not_popcount_at_least_popcnt(set, covered, target) });
        }
        None
    }

    #[inline]
    pub(super) fn absorb_count(set: &[u64], covered: &mut [u64]) -> Option<usize> {
        if std::arch::is_x86_feature_detected!("popcnt") {
            // SAFETY: popcnt support verified at runtime just above.
            return Some(unsafe { absorb_count_popcnt(set, covered) });
        }
        None
    }

    #[target_feature(enable = "popcnt")]
    fn popcount_words_popcnt(words: &[u64]) -> usize {
        super::popcount_words_impl(words)
    }

    #[target_feature(enable = "popcnt")]
    fn and_not_popcount_popcnt(set: &[u64], covered: &[u64]) -> usize {
        super::and_not_popcount_impl(set, covered)
    }

    #[target_feature(enable = "popcnt")]
    fn and_not_popcount_at_least_popcnt(set: &[u64], covered: &[u64], target: f64) -> usize {
        super::and_not_popcount_at_least_impl(set, covered, target)
    }

    #[target_feature(enable = "popcnt")]
    fn absorb_count_popcnt(set: &[u64], covered: &mut [u64]) -> usize {
        super::absorb_count_impl(set, covered)
    }

    /// Muła nibble-lookup popcount of one 256-bit lane: per-byte counts via
    /// two `vpshufb` table lookups, reduced to four u64 sums by `vpsadbw`.
    #[target_feature(enable = "avx2")]
    fn popcount_m256(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let table = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
        let counts = _mm256_add_epi8(
            _mm256_shuffle_epi8(table, lo),
            _mm256_shuffle_epi8(table, hi),
        );
        _mm256_sad_epu8(counts, _mm256_setzero_si256())
    }

    #[target_feature(enable = "avx2")]
    fn horizontal_sum(acc: __m256i) -> usize {
        (_mm256_extract_epi64(acc, 0)
            + _mm256_extract_epi64(acc, 1)
            + _mm256_extract_epi64(acc, 2)
            + _mm256_extract_epi64(acc, 3)) as usize
    }

    // Lanes are built with `_mm256_set_epi64x` from `chunks_exact(4)` — no
    // pointer loads, so alignment is a non-issue and the body stays safe.

    #[target_feature(enable = "avx2")]
    fn popcount_words_avx2(words: &[u64]) -> usize {
        let mut chunks = words.chunks_exact(4);
        let mut acc = _mm256_setzero_si256();
        for w in chunks.by_ref() {
            let v = _mm256_set_epi64x(w[3] as i64, w[2] as i64, w[1] as i64, w[0] as i64);
            acc = _mm256_add_epi64(acc, popcount_m256(v));
        }
        let mut tail = 0usize;
        for &w in chunks.remainder() {
            tail += w.count_ones() as usize;
        }
        horizontal_sum(acc) + tail
    }

    #[target_feature(enable = "avx2")]
    fn and_not_popcount_avx2(set: &[u64], covered: &[u64]) -> usize {
        let n = set.len().min(covered.len());
        let (set, covered) = (&set[..n], &covered[..n]);
        let mut sc = set.chunks_exact(4);
        let mut cc = covered.chunks_exact(4);
        let mut acc = _mm256_setzero_si256();
        for (s, v) in sc.by_ref().zip(cc.by_ref()) {
            let sv = _mm256_set_epi64x(s[3] as i64, s[2] as i64, s[1] as i64, s[0] as i64);
            let cv = _mm256_set_epi64x(v[3] as i64, v[2] as i64, v[1] as i64, v[0] as i64);
            // andnot(a, b) = !a & b, so pass covered first: set & !covered.
            acc = _mm256_add_epi64(acc, popcount_m256(_mm256_andnot_si256(cv, sv)));
        }
        let mut tail = 0usize;
        for (&s, &v) in sc.remainder().iter().zip(cc.remainder()) {
            tail += (s & !v).count_ones() as usize;
        }
        horizontal_sum(acc) + tail
    }
}

/// One-word-at-a-time scalar reference implementations.
///
/// These are the ground truth the differential property tests compare the
/// unrolled and `simd` kernels against (`tests/kernel_props.rs`).  The
/// early-exit reference mirrors the kernels' block granularity exactly —
/// see the module docs — so the comparison is full bit identity.
pub mod reference {
    /// Scalar [`popcount_words`](super::popcount_words).
    pub fn popcount_words(words: &[u64]) -> usize {
        words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Scalar [`and_not_popcount`](super::and_not_popcount).
    pub fn and_not_popcount(set: &[u64], covered: &[u64]) -> usize {
        set.iter()
            .zip(covered)
            .map(|(&s, &c)| (s & !c).count_ones() as usize)
            .sum()
    }

    /// Scalar [`and_not_popcount_at_least`](super::and_not_popcount_at_least)
    /// with the same 4-word-block early-exit boundaries.
    pub fn and_not_popcount_at_least(set: &[u64], covered: &[u64], target: f64) -> usize {
        let n = set.len().min(covered.len());
        let blocks = n / 4 * 4;
        let mut acc = 0usize;
        for i in 0..blocks {
            acc += (set[i] & !covered[i]).count_ones() as usize;
            if i % 4 == 3 && acc as f64 >= target {
                return acc;
            }
        }
        for i in blocks..n {
            acc += (set[i] & !covered[i]).count_ones() as usize;
            if acc as f64 >= target {
                return acc;
            }
        }
        acc
    }

    /// Scalar [`absorb_count`](super::absorb_count).
    pub fn absorb_count(set: &[u64], covered: &mut [u64]) -> usize {
        set.iter()
            .zip(covered)
            .map(|(&s, c)| {
                let new = (s & !*c).count_ones() as usize;
                *c |= s;
                new
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(n: usize, seed: u64) -> Vec<u64> {
        // Simple xorshift fill — deterministic, covers dense and sparse words.
        let mut x = seed | 1;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if i % 3 == 0 {
                    x
                } else {
                    x & 0x0101_0101_0101_0101
                }
            })
            .collect()
    }

    #[test]
    fn kernels_match_reference_across_boundary_sizes() {
        for n in [0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100] {
            let set = words(n, 0xdead_beef ^ n as u64);
            let covered = words(n, 0x1234_5678 ^ n as u64);
            assert_eq!(popcount_words(&set), reference::popcount_words(&set));
            assert_eq!(
                and_not_popcount(&set, &covered),
                reference::and_not_popcount(&set, &covered),
                "n={n}"
            );
            for target in [0.0, 1.0, 17.0, f64::INFINITY] {
                assert_eq!(
                    and_not_popcount_at_least(&set, &covered, target),
                    reference::and_not_popcount_at_least(&set, &covered, target),
                    "n={n} target={target}"
                );
            }
            let mut a = covered.clone();
            let mut b = covered.clone();
            assert_eq!(absorb_count(&set, &mut a), reference::absorb_count(&set, &mut b));
            assert_eq!(a, b);
            assert_eq!(and_not_popcount(&set, &a), 0, "absorb must cover the set");
        }
    }

    #[test]
    fn at_least_truncation_preserves_predicates() {
        let set = words(23, 42);
        let covered = words(23, 7);
        let full = reference::and_not_popcount(&set, &covered) as f64;
        for target in [0.5, 1.0, 3.0, 10.0, 60.0, 1e9] {
            let got = and_not_popcount_at_least(&set, &covered, target) as f64;
            assert_eq!(got >= target, full >= target, "target={target}");
            assert_eq!(got > 0.0, full > 0.0);
        }
    }
}
