//! Influence sets `I(u)` and their append-only accumulation.
//!
//! Definition 1 of the paper: the influence set of a user `u` with respect to
//! window `W_t` is the set of users who performed an action in `W_t` that was
//! directly or indirectly triggered by an action of `u` (plus `u` itself via
//! its own actions).
//!
//! Two access patterns exist in the system:
//!
//! * **Append-only accumulation** ([`InfluenceAccumulator`]) — inside a
//!   checkpoint, influence sets only ever grow as actions are appended; this
//!   is what makes the set-stream mapping of §4.2 possible.  Crucially,
//!   [`InfluenceAccumulator::apply_into`] grows each affected set by
//!   **exactly one user** (the actor), which is the delta the delta-aware
//!   oracle path (`SsoOracle::process_grow`) exploits.
//! * **From-scratch window computation** ([`window_influence_sets`]) — the
//!   Greedy baseline and the quality-evaluation influence graph need the
//!   exact influence sets of the *current* window, which are recomputed from
//!   the window contents (no incremental expiry is ever attempted — that is
//!   the hard problem the checkpoint frameworks solve).
//!
//! The per-user sets are hybrid [`InfluenceSet`]s (sorted small-vec below a
//! threshold, bitmap above) rather than hash sets; see the
//! [`influence_set`](crate::influence_set) module for the layout rationale.

use crate::action::UserId;
use crate::influence_set::InfluenceSet;
use crate::propagation::PropagationIndex;
use crate::window::SlidingWindow;
use fxhash::FxHashMap;

/// A collection of per-user influence sets.
///
/// The map is keyed by FxHash: the per-user set lookup sits on the feed
/// path (every checkpoint probes it for every updated user of every
/// action), and for 4-byte id keys SipHash costs more than the probe.
#[derive(Debug, Clone, Default)]
pub struct InfluenceSets {
    sets: FxHashMap<UserId, InfluenceSet>,
}

impl InfluenceSets {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// The influence set of `u`, empty if `u` influenced nobody.
    pub fn get(&self, u: UserId) -> Option<&InfluenceSet> {
        self.sets.get(&u)
    }

    /// Cardinality `|I(u)|`.
    pub fn value(&self, u: UserId) -> usize {
        self.sets.get(&u).map_or(0, |s| s.len())
    }

    /// Inserts `influenced` into `I(actor)`, returning `true` if it was new.
    pub fn insert(&mut self, actor: UserId, influenced: UserId) -> bool {
        self.sets.entry(actor).or_default().insert(influenced)
    }

    /// [`Self::insert`] with bitmap allocation routed through a
    /// [`WordArena`](crate::WordArena) (the slide-loop path).
    pub fn insert_in(
        &mut self,
        actor: UserId,
        influenced: UserId,
        arena: &mut crate::WordArena,
    ) -> bool {
        self.sets
            .entry(actor)
            .or_default()
            .insert_in(influenced, arena)
    }

    /// Tears the map down, recycling every bitmap backing store into
    /// `arena` (used when a checkpoint expires).
    pub fn recycle_into(mut self, arena: &mut crate::WordArena) {
        for (_, set) in self.sets.drain() {
            set.recycle_into(arena);
        }
    }

    /// Installs a whole influence set for `user`, returning the previous
    /// set if one existed (the snapshot-restore path; streaming ingestion
    /// grows sets through [`InfluenceSets::insert`] instead).
    pub fn insert_set(&mut self, user: UserId, set: InfluenceSet) -> Option<InfluenceSet> {
        self.sets.insert(user, set)
    }

    /// Users with a non-empty influence set.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.sets.keys().copied()
    }

    /// Number of users with a non-empty influence set.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` if no influence has been recorded.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The influence set of a *set* of users: `I(S) = ∪_{u∈S} I(u)`.
    pub fn union_of<'a>(&self, users: impl IntoIterator<Item = &'a UserId>) -> InfluenceSet {
        let mut out = InfluenceSet::new();
        for u in users {
            if let Some(s) = self.sets.get(u) {
                out.extend(s.iter());
            }
        }
        out
    }

    /// Cardinality of the union influence set `|I(S)|`.
    pub fn coverage<'a>(&self, users: impl IntoIterator<Item = &'a UserId>) -> usize {
        self.union_of(users).len()
    }

    /// Iterates over `(user, influence set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, &InfluenceSet)> {
        self.sets.iter().map(|(u, s)| (*u, s))
    }

    /// Total number of `(influencer, influenced)` facts stored.
    pub fn total_facts(&self) -> usize {
        self.sets.values().map(|s| s.len()).sum()
    }
}

/// Append-only influence accumulation, the state kept by every checkpoint.
///
/// A checkpoint created at time `c` observes only actions with `t > c`
/// (its own append-only sub-stream); feeding every arrival through
/// [`InfluenceAccumulator::apply_into`] yields exactly the influence sets
/// `I_{t[i]}(u)` of the paper (influence restricted to actions the checkpoint
/// has seen).
#[derive(Debug, Clone, Default)]
pub struct InfluenceAccumulator {
    sets: InfluenceSets,
}

impl InfluenceAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rehydrates an accumulator from previously accumulated sets (the
    /// snapshot-restore path of a checkpoint).
    pub fn from_sets(sets: InfluenceSets) -> Self {
        InfluenceAccumulator { sets }
    }

    /// Applies one action performed by `actor` whose reply ancestors were
    /// performed by `ancestor_users`, appending the users whose influence
    /// set actually grew to `grew` (which is **not** cleared first — callers
    /// own the scratch buffer).
    ///
    /// Every user in `{actor} ∪ ancestor_users` influences `actor` through
    /// this action.  Each grown set grew by **exactly one element** — the
    /// actor — which is the single-user delta the delta-aware oracle feed
    /// (`process_grow`) relies on.
    pub fn apply_into(&mut self, actor: UserId, ancestor_users: &[UserId], grew: &mut Vec<UserId>) {
        if self.sets.insert(actor, actor) {
            grew.push(actor);
        }
        for &u in ancestor_users {
            if u != actor && self.sets.insert(u, actor) {
                grew.push(u);
            }
        }
    }

    /// [`Self::apply_into`] with bitmap allocation routed through a
    /// [`WordArena`](crate::WordArena) — the per-worker slide-loop path.
    pub fn apply_into_arena(
        &mut self,
        actor: UserId,
        ancestor_users: &[UserId],
        grew: &mut Vec<UserId>,
        arena: &mut crate::WordArena,
    ) {
        if self.sets.insert_in(actor, actor, arena) {
            grew.push(actor);
        }
        for &u in ancestor_users {
            if u != actor && self.sets.insert_in(u, actor, arena) {
                grew.push(u);
            }
        }
    }

    /// Tears the accumulator down, recycling bitmap backing stores into
    /// `arena` (the checkpoint-expiry path).
    pub fn recycle_into(self, arena: &mut crate::WordArena) {
        self.sets.recycle_into(arena);
    }

    /// Allocating convenience wrapper around [`Self::apply_into`]: returns
    /// the users whose influence set grew as a fresh `Vec`.
    ///
    /// Hot paths (e.g. `Checkpoint::process`) should prefer `apply_into`
    /// with a reused scratch buffer — this wrapper allocates per action.
    pub fn apply(&mut self, actor: UserId, ancestor_users: &[UserId]) -> Vec<UserId> {
        let mut grew = Vec::with_capacity(ancestor_users.len() + 1);
        self.apply_into(actor, ancestor_users, &mut grew);
        grew
    }

    /// Read access to the accumulated influence sets.
    pub fn sets(&self) -> &InfluenceSets {
        &self.sets
    }

    /// Cardinality `|I(u)|` within this accumulator.
    pub fn value(&self, u: UserId) -> usize {
        self.sets.value(u)
    }

    /// The influence set of `u` within this accumulator.
    pub fn influence_set(&self, u: UserId) -> Option<&InfluenceSet> {
        self.sets.get(u)
    }
}

/// Computes the exact window-scoped influence sets `I_t(u)` for every user,
/// from scratch, using the reply ancestry recorded in `index`.
///
/// This is `O(|W_t| · d)` and is used by the Greedy baseline, the quality
/// metric, and tests; the streaming frameworks never call it on the hot path.
pub fn window_influence_sets(window: &SlidingWindow, index: &PropagationIndex) -> InfluenceSets {
    let mut acc = InfluenceAccumulator::new();
    let mut scratch = Vec::new();
    for action in window.iter() {
        let ancestors = index.ancestor_users(action.id).unwrap_or(&[]);
        scratch.clear();
        acc.apply_into(action.user, ancestors, &mut scratch);
    }
    acc.sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;

    fn figure1_actions() -> Vec<Action> {
        vec![
            Action::root(1u64, 1u32),
            Action::reply(2u64, 2u32, 1u64),
            Action::root(3u64, 3u32),
            Action::reply(4u64, 3u32, 1u64),
            Action::reply(5u64, 4u32, 3u64),
            Action::reply(6u64, 1u32, 3u64),
            Action::reply(7u64, 5u32, 3u64),
            Action::reply(8u64, 4u32, 7u64),
            Action::root(9u64, 2u32),
            Action::reply(10u64, 6u32, 9u64),
        ]
    }

    fn setup(upto: usize, window_size: usize) -> (SlidingWindow, PropagationIndex) {
        let mut w = SlidingWindow::new(window_size);
        let mut idx = PropagationIndex::new();
        for a in figure1_actions().into_iter().take(upto) {
            idx.insert(&a);
            w.push(a);
        }
        (w, idx)
    }

    fn set(users: &[u32]) -> InfluenceSet {
        users.iter().map(|&u| UserId(u)).collect()
    }

    #[test]
    fn figure1b_influence_sets_at_time_8() {
        let (w, idx) = setup(8, 8);
        let inf = window_influence_sets(&w, &idx);
        assert_eq!(inf.get(UserId(1)).unwrap(), &set(&[1, 2, 3]));
        assert_eq!(inf.get(UserId(2)).unwrap(), &set(&[2]));
        assert_eq!(inf.get(UserId(3)).unwrap(), &set(&[1, 3, 4, 5]));
        assert_eq!(inf.get(UserId(4)).unwrap(), &set(&[4]));
        assert_eq!(inf.get(UserId(5)).unwrap(), &set(&[4, 5]));
        assert!(inf.get(UserId(6)).is_none());
    }

    #[test]
    fn figure1c_influence_sets_at_time_10() {
        let (w, idx) = setup(10, 8);
        let inf = window_influence_sets(&w, &idx);
        // a1, a2 expired: u2 no longer influenced by u1, but u3 still is
        // (a4 has not expired even though its trigger a1 has).
        assert_eq!(inf.get(UserId(1)).unwrap(), &set(&[1, 3]));
        assert_eq!(inf.get(UserId(2)).unwrap(), &set(&[2, 6]));
        assert_eq!(inf.get(UserId(3)).unwrap(), &set(&[1, 3, 4, 5]));
        assert_eq!(inf.get(UserId(4)).unwrap(), &set(&[4]));
        assert_eq!(inf.get(UserId(5)).unwrap(), &set(&[4, 5]));
        assert_eq!(inf.get(UserId(6)).unwrap(), &set(&[6]));
    }

    #[test]
    fn example2_optimal_coverage_values() {
        let (w, idx) = setup(8, 8);
        let inf = window_influence_sets(&w, &idx);
        // f(I_8({u1,u3})) = 5 covers all active users at time 8.
        assert_eq!(inf.coverage(&[UserId(1), UserId(3)]), 5);

        let (w, idx) = setup(10, 8);
        let inf = window_influence_sets(&w, &idx);
        // f(I_10({u1,u3})) drops to 4, while {u2,u3} covers all 6.
        assert_eq!(inf.coverage(&[UserId(1), UserId(3)]), 5 - 1);
        assert_eq!(inf.coverage(&[UserId(2), UserId(3)]), 6);
    }

    #[test]
    fn accumulator_reports_only_new_growth() {
        let mut acc = InfluenceAccumulator::new();
        let grew = acc.apply(UserId(2), &[UserId(1)]);
        assert_eq!(grew, vec![UserId(2), UserId(1)]);
        // Same action pattern again: nothing new.
        let grew = acc.apply(UserId(2), &[UserId(1)]);
        assert!(grew.is_empty());
        assert_eq!(acc.value(UserId(1)), 1);
        assert_eq!(acc.value(UserId(2)), 1);
    }

    #[test]
    fn apply_into_appends_to_scratch_without_clearing() {
        let mut acc = InfluenceAccumulator::new();
        let mut grew = vec![UserId(99)];
        acc.apply_into(UserId(2), &[UserId(1)], &mut grew);
        assert_eq!(grew, vec![UserId(99), UserId(2), UserId(1)]);
    }

    #[test]
    fn union_and_total_facts() {
        let mut s = InfluenceSets::new();
        s.insert(UserId(1), UserId(2));
        s.insert(UserId(1), UserId(3));
        s.insert(UserId(4), UserId(3));
        assert_eq!(s.total_facts(), 3);
        assert_eq!(s.coverage(&[UserId(1), UserId(4)]), 2);
        assert_eq!(s.union_of(&[UserId(1), UserId(4)]), set(&[2, 3]));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_sets_behave() {
        let s = InfluenceSets::new();
        assert!(s.is_empty());
        assert_eq!(s.value(UserId(1)), 0);
        assert_eq!(s.coverage(&[UserId(1)]), 0);
    }
}
