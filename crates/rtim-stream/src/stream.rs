//! In-memory social streams and batched iteration.
//!
//! Experiments replay a finite, pre-generated action trace; [`SocialStream`]
//! owns such a trace, validates its structural invariants, and exposes
//! batched iteration matching the multi-action window slides of §5.3
//! (each slide delivers `L` new actions).

use crate::action::{Action, ActionId, UserId};
use std::collections::HashSet;

/// Summary statistics of a finite action trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamStats {
    /// Total number of actions.
    pub actions: u64,
    /// Number of distinct users performing at least one action.
    pub distinct_users: u64,
    /// Number of root actions.
    pub roots: u64,
    /// Mean response distance `t - t'` over reply actions.
    pub avg_response_distance: f64,
    /// Maximum user id + 1 (useful for sizing dense arrays).
    pub user_id_bound: u32,
}

/// A finite, in-memory social action stream.
///
/// Actions must have strictly increasing ids and parents must reference
/// earlier actions present in the stream (validated by
/// [`SocialStream::new`]).
#[derive(Debug, Clone, Default)]
pub struct SocialStream {
    actions: Vec<Action>,
}

impl SocialStream {
    /// Wraps a validated action trace.
    ///
    /// # Errors
    /// Returns a description of the first structural violation found:
    /// non-increasing ids or a parent reference to a missing/future action.
    pub fn new(actions: Vec<Action>) -> Result<Self, String> {
        let mut seen: HashSet<ActionId> = HashSet::with_capacity(actions.len());
        let mut last: Option<ActionId> = None;
        for a in &actions {
            if let Some(prev) = last {
                if a.id <= prev {
                    return Err(format!(
                        "action ids must be strictly increasing: {} after {}",
                        a.id, prev
                    ));
                }
            }
            if let Some(p) = a.parent {
                if p >= a.id {
                    return Err(format!("action {} replies to a non-earlier action {}", a.id, p));
                }
                if !seen.contains(&p) {
                    return Err(format!("action {} replies to unknown action {}", a.id, p));
                }
            }
            seen.insert(a.id);
            last = Some(a.id);
        }
        Ok(SocialStream { actions })
    }

    /// Wraps a trace without validation (for generators that construct
    /// streams correct by construction).
    pub fn new_unchecked(actions: Vec<Action>) -> Self {
        SocialStream { actions }
    }

    /// Number of actions in the trace.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The underlying actions, oldest first.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Iterates actions oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Action> {
        self.actions.iter()
    }

    /// Iterates the stream in consecutive batches of `slide` actions
    /// (the last batch may be shorter).
    pub fn batches(&self, slide: usize) -> ActionBatchIter<'_> {
        assert!(slide > 0, "slide length L must be positive");
        ActionBatchIter {
            actions: &self.actions,
            pos: 0,
            slide,
        }
    }

    /// Computes summary statistics of the trace.
    pub fn stats(&self) -> StreamStats {
        let mut users: HashSet<UserId> = HashSet::new();
        let mut roots = 0u64;
        let mut dist_sum = 0u64;
        let mut replies = 0u64;
        let mut bound = 0u32;
        for a in &self.actions {
            users.insert(a.user);
            bound = bound.max(a.user.0 + 1);
            match a.parent {
                None => roots += 1,
                Some(p) => {
                    dist_sum += a.id.0.saturating_sub(p.0);
                    replies += 1;
                }
            }
        }
        StreamStats {
            actions: self.actions.len() as u64,
            distinct_users: users.len() as u64,
            roots,
            avg_response_distance: if replies == 0 {
                0.0
            } else {
                dist_sum as f64 / replies as f64
            },
            user_id_bound: bound,
        }
    }
}

/// Iterator over consecutive slide-sized batches of a [`SocialStream`].
#[derive(Debug, Clone)]
pub struct ActionBatchIter<'a> {
    actions: &'a [Action],
    pos: usize,
    slide: usize,
}

impl<'a> Iterator for ActionBatchIter<'a> {
    type Item = &'a [Action];

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.actions.len() {
            return None;
        }
        let end = (self.pos + self.slide).min(self.actions.len());
        let batch = &self.actions[self.pos..end];
        self.pos = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<Action> {
        vec![
            Action::root(1u64, 1u32),
            Action::reply(2u64, 2u32, 1u64),
            Action::root(3u64, 3u32),
            Action::reply(4u64, 3u32, 1u64),
            Action::reply(5u64, 4u32, 3u64),
        ]
    }

    #[test]
    fn validation_accepts_well_formed_traces() {
        let s = SocialStream::new(trace()).unwrap();
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn validation_rejects_non_increasing_ids() {
        let mut t = trace();
        t[2] = Action::root(2u64, 9u32);
        assert!(SocialStream::new(t).is_err());
    }

    #[test]
    fn validation_rejects_unknown_parent() {
        let t = vec![Action::root(1u64, 1u32), Action::reply(3u64, 2u32, 2u64)];
        assert!(SocialStream::new(t).is_err());
    }

    #[test]
    fn batches_cover_stream_exactly_once() {
        let s = SocialStream::new(trace()).unwrap();
        let batches: Vec<_> = s.batches(2).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 2);
        assert_eq!(batches[2].len(), 1);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, s.len());
    }

    #[test]
    fn stats_summarize_trace() {
        let s = SocialStream::new(trace()).unwrap();
        let st = s.stats();
        assert_eq!(st.actions, 5);
        assert_eq!(st.distinct_users, 4);
        assert_eq!(st.roots, 2);
        assert_eq!(st.user_id_bound, 5);
        // reply distances: 1, 3, 2 -> mean 2.0
        assert!((st.avg_response_distance - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_slide_panics() {
        let s = SocialStream::new(trace()).unwrap();
        let _ = s.batches(0);
    }
}
