//! Hybrid user-ID set: sorted small-vec below a threshold, dense bitmap above.
//!
//! Influence sets are the unit of work of the entire coverage hot path: every
//! action appends to them, every checkpoint oracle probes and unions them.
//! The original implementation used `HashSet<UserId>`, paying a SipHash plus
//! a pointer chase per probe.  [`InfluenceSet`] replaces it with two
//! hardware-friendly layouts:
//!
//! * **Small** — a sorted `Vec<UserId>` while the set holds at most
//!   [`InfluenceSet::SMALL_MAX`] users.  Real cascades are shallow (Table 3
//!   of the paper reports average depths below 5), so the overwhelming
//!   majority of influence sets live and die in this representation: one
//!   cache line, branch-predictable binary search, zero hashing.
//! * **Bits** — a `Vec<u64>` bitmap indexed by `UserId::index()` once the
//!   set outgrows the small threshold.  Membership is a shift-and-mask,
//!   unions and intersections are word-level `AND`/`OR`/`popcount` — this is
//!   what makes the word-level coverage operations in `rtim-submodular`
//!   possible.
//!
//! The bitmap is sized by the **largest id stored**, which is why the engine
//! interns raw user ids into a dense `0..n` space before anything reaches
//! the hot path (see `rtim-core`'s `UserInterner`): with dense ids a bitmap
//! costs one bit per user ever seen, independent of how sparse the raw id
//! space of the trace is.
//!
//! Iteration order is **ascending by id in both representations**, so every
//! float accumulation over an `InfluenceSet` is deterministic — a property
//! the bit-identical sequential/sharded execution contract relies on.

use crate::action::UserId;

/// A set of user ids with a hybrid sorted-vec / bitmap layout.
///
/// See the [module docs](self) for the design rationale.
#[derive(Debug, Clone)]
pub struct InfluenceSet {
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    /// Sorted ascending, deduplicated.
    Small(Vec<UserId>),
    /// Bit `i` of word `i / 64` set ⇔ `UserId(i)` present; `len` caches the
    /// population count.
    Bits { words: Vec<u64>, len: usize },
}

/// Borrowed view of an [`InfluenceSet`]'s storage, letting consumers (the
/// coverage state in `rtim-submodular`) run word-level operations without
/// re-deriving the representation.
#[derive(Debug, Clone, Copy)]
pub enum SetView<'a> {
    /// Sorted slice of user ids.
    Small(&'a [UserId]),
    /// Bitmap words (bit `i` of word `w` ⇔ `UserId(w * 64 + i)`).
    Bits(&'a [u64]),
}

impl InfluenceSet {
    /// Maximum cardinality kept in the sorted small-vec representation;
    /// inserting a new id into a set of this size attempts promotion to a
    /// bitmap.
    ///
    /// 32 ids keep the small representation within two cache lines while
    /// still covering the vast majority of real influence sets (shallow
    /// cascades).  The promotion boundary is covered by property tests.
    pub const SMALL_MAX: usize = 32;

    /// Density guard for promotion: the bitmap is adopted only when it
    /// costs at most this many 64-bit words per present element.  Dense
    /// (interned) id spaces pass this immediately at the `SMALL_MAX`
    /// boundary; raw-id consumers (the Greedy baseline and quality metric
    /// run without an interner) with sparse billion-range ids keep the
    /// sorted-vec layout instead of allocating `max_id / 8` bytes — slower,
    /// but correct and memory-safe.  Re-checked on every insert, so a set
    /// promotes as soon as it grows dense enough.
    pub const WORDS_PER_ELEMENT_MAX: usize = 8;

    /// Creates an empty set (small representation).
    pub fn new() -> Self {
        InfluenceSet {
            repr: Repr::Small(Vec::new()),
        }
    }

    /// Creates an empty set that starts out as a bitmap with capacity for
    /// ids below `universe` (avoids repeated regrowth when the final size is
    /// known, e.g. when unioning many sets over an interned id space).
    pub fn with_universe(universe: usize) -> Self {
        InfluenceSet {
            repr: Repr::Bits {
                words: vec![0u64; universe.div_ceil(64)],
                len: 0,
            },
        }
    }

    /// Number of users in the set.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Small(v) => v.len(),
            Repr::Bits { len, .. } => *len,
        }
    }

    /// `true` if the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if `user` is in the set.
    #[inline]
    pub fn contains(&self, user: UserId) -> bool {
        match &self.repr {
            Repr::Small(v) => v.binary_search(&user).is_ok(),
            Repr::Bits { words, .. } => {
                let i = user.index();
                words
                    .get(i / 64)
                    .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
            }
        }
    }

    /// Inserts `user`, returning `true` if it was not present before.
    ///
    /// Promotes the representation to a bitmap when the small-vec exceeds
    /// [`Self::SMALL_MAX`] **and** the ids are dense enough for the bitmap
    /// to be worth its memory (see [`Self::WORDS_PER_ELEMENT_MAX`]).
    pub fn insert(&mut self, user: UserId) -> bool {
        self.insert_impl(user, None)
    }

    /// [`Self::insert`] with bitmap allocation (promotion and growth)
    /// routed through a [`WordArena`](crate::WordArena) — the slide-loop
    /// path.  The resulting set is content-identical to a heap-backed one
    /// (only the backing store's capacity provenance differs; equality,
    /// iteration and the snapshot codec are all content/length-based).
    pub fn insert_in(&mut self, user: UserId, arena: &mut crate::WordArena) -> bool {
        self.insert_impl(user, Some(arena))
    }

    fn insert_impl(&mut self, user: UserId, arena: Option<&mut crate::WordArena>) -> bool {
        match &mut self.repr {
            Repr::Small(v) => match v.binary_search(&user) {
                Ok(_) => false,
                Err(pos) => {
                    let len_after = v.len() + 1;
                    let max_id = v.last().map_or(0, |u| u.index()).max(user.index());
                    let words_needed = max_id / 64 + 1;
                    if v.len() < Self::SMALL_MAX
                        || words_needed > Self::WORDS_PER_ELEMENT_MAX * len_after
                    {
                        v.insert(pos, user);
                    } else {
                        let mut words = match arena {
                            Some(a) => a.take_zeroed(words_needed),
                            None => vec![0u64; words_needed],
                        };
                        for &u in v.iter() {
                            set_bit(&mut words, u.index());
                        }
                        set_bit(&mut words, user.index());
                        self.repr = Repr::Bits {
                            words,
                            len: len_after,
                        };
                    }
                    true
                }
            },
            Repr::Bits { words, len } => {
                let i = user.index();
                let (w, bit) = (i / 64, 1u64 << (i % 64));
                if words.len() <= w {
                    match arena {
                        Some(a) => a.grow_zeroed(words, w + 1),
                        None => words.resize(w + 1, 0),
                    }
                }
                if words[w] & bit != 0 {
                    false
                } else {
                    words[w] |= bit;
                    *len += 1;
                    true
                }
            }
        }
    }

    /// A borrowed view of the underlying representation for word-level
    /// consumers.
    #[inline]
    pub fn view(&self) -> SetView<'_> {
        match &self.repr {
            Repr::Small(v) => SetView::Small(v),
            Repr::Bits { words, .. } => SetView::Bits(words),
        }
    }

    /// Iterates the users in ascending id order (both representations).
    pub fn iter(&self) -> SetIter<'_> {
        match &self.repr {
            Repr::Small(v) => SetIter::Small(v.iter()),
            Repr::Bits { words, .. } => SetIter::Bits {
                words,
                word_idx: 0,
                current: words.first().copied().unwrap_or(0),
            },
        }
    }

    /// `true` once the set has been promoted to the bitmap representation
    /// (introspection for tests and benchmarks).
    pub fn is_bitmap(&self) -> bool {
        matches!(self.repr, Repr::Bits { .. })
    }

    /// Rebuilds a small-representation set from an already sorted,
    /// deduplicated id list (the state codec's restore path — validation
    /// happens at decode time).
    pub(crate) fn from_sorted_vec(users: Vec<UserId>) -> Self {
        debug_assert!(users.windows(2).all(|w| w[0] < w[1]), "unsorted restore");
        InfluenceSet {
            repr: Repr::Small(users),
        }
    }

    /// Rebuilds a bitmap-representation set from its words (the state
    /// codec's restore path); the cached length is recomputed by popcount.
    pub(crate) fn from_words(words: Vec<u64>) -> Self {
        let len = crate::kernels::popcount_words(&words);
        InfluenceSet {
            repr: Repr::Bits { words, len },
        }
    }

    /// Tears the set down, recycling a bitmap backing store into `arena`
    /// (small representations just drop).  Used when a checkpoint expires
    /// so its thousands of bitmaps feed the next slide's promotions.
    pub fn recycle_into(self, arena: &mut crate::WordArena) {
        if let Repr::Bits { words, .. } = self.repr {
            arena.recycle(words);
        }
    }
}

#[inline]
fn set_bit(words: &mut Vec<u64>, i: usize) {
    let w = i / 64;
    if words.len() <= w {
        words.resize(w + 1, 0);
    }
    words[w] |= 1u64 << (i % 64);
}

impl Default for InfluenceSet {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for InfluenceSet {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for InfluenceSet {}

impl FromIterator<UserId> for InfluenceSet {
    fn from_iter<I: IntoIterator<Item = UserId>>(iter: I) -> Self {
        let mut s = InfluenceSet::new();
        for u in iter {
            s.insert(u);
        }
        s
    }
}

impl Extend<UserId> for InfluenceSet {
    fn extend<I: IntoIterator<Item = UserId>>(&mut self, iter: I) {
        for u in iter {
            self.insert(u);
        }
    }
}

impl<'a> IntoIterator for &'a InfluenceSet {
    type Item = UserId;
    type IntoIter = SetIter<'a>;

    fn into_iter(self) -> SetIter<'a> {
        self.iter()
    }
}

/// Ascending-order iterator over an [`InfluenceSet`].
#[derive(Debug, Clone)]
pub enum SetIter<'a> {
    /// Iterating the sorted small-vec.
    Small(std::slice::Iter<'a, UserId>),
    /// Iterating set bits of the bitmap.
    Bits {
        /// All words of the bitmap.
        words: &'a [u64],
        /// Index of the word `current` was loaded from.
        word_idx: usize,
        /// Remaining (not yet yielded) bits of the current word.
        current: u64,
    },
}

impl Iterator for SetIter<'_> {
    type Item = UserId;

    fn next(&mut self) -> Option<UserId> {
        match self {
            SetIter::Small(it) => it.next().copied(),
            SetIter::Bits {
                words,
                word_idx,
                current,
            } => {
                while *current == 0 {
                    *word_idx += 1;
                    if *word_idx >= words.len() {
                        return None;
                    }
                    *current = words[*word_idx];
                }
                let bit = current.trailing_zeros() as usize;
                *current &= *current - 1;
                Some(UserId((*word_idx * 64 + bit) as u32))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(set: &InfluenceSet) -> Vec<u32> {
        set.iter().map(|u| u.0).collect()
    }

    #[test]
    fn small_insert_keeps_sorted_dedup() {
        let mut s = InfluenceSet::new();
        assert!(s.insert(UserId(5)));
        assert!(s.insert(UserId(1)));
        assert!(!s.insert(UserId(5)));
        assert!(s.insert(UserId(3)));
        assert_eq!(ids(&s), vec![1, 3, 5]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(UserId(3)));
        assert!(!s.contains(UserId(4)));
        assert!(!s.is_bitmap());
    }

    #[test]
    fn promotion_preserves_contents_and_order() {
        let mut s = InfluenceSet::new();
        // Insert SMALL_MAX + 3 distinct ids in scrambled order.
        let n = (InfluenceSet::SMALL_MAX + 3) as u32;
        for i in 0..n {
            let id = (i * 37) % 1009;
            assert!(s.insert(UserId(id)));
        }
        assert!(s.is_bitmap());
        assert_eq!(s.len(), n as usize);
        let got = ids(&s);
        let mut want: Vec<u32> = (0..n).map(|i| (i * 37) % 1009).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        // Duplicates after promotion are rejected.
        assert!(!s.insert(UserId(0)));
    }

    #[test]
    fn sparse_ids_defer_promotion() {
        // Billion-range ids: a bitmap would cost ~max_id/8 bytes, so the
        // density guard keeps the sorted-vec layout past SMALL_MAX...
        let mut s = InfluenceSet::new();
        let n = (InfluenceSet::SMALL_MAX * 2) as u32;
        for i in 0..n {
            assert!(s.insert(UserId(i * 50_000_017 + 17)));
        }
        assert!(!s.is_bitmap(), "sparse set should stay sorted-vec");
        assert_eq!(s.len(), n as usize);
        assert!(s.contains(UserId(17)));
        // ...while a dense block of ids promotes as soon as the set grows
        // dense enough to amortize the words.
        let mut d = InfluenceSet::new();
        for i in 0..n {
            d.insert(UserId(i));
        }
        assert!(d.is_bitmap(), "dense set should promote");
    }

    #[test]
    fn bitmap_grows_to_high_ids() {
        let mut s = InfluenceSet::with_universe(10);
        assert!(s.is_bitmap());
        assert!(s.insert(UserId(100_000)));
        assert!(s.contains(UserId(100_000)));
        assert_eq!(s.len(), 1);
        assert_eq!(ids(&s), vec![100_000]);
    }

    #[test]
    fn equality_is_representation_independent() {
        let small: InfluenceSet = [1u32, 2, 3].into_iter().map(UserId).collect();
        let mut big = InfluenceSet::with_universe(64);
        for i in [3u32, 1, 2] {
            big.insert(UserId(i));
        }
        assert!(big.is_bitmap() && !small.is_bitmap());
        assert_eq!(small, big);
        big.insert(UserId(9));
        assert_ne!(small, big);
    }

    #[test]
    fn empty_set_behaves() {
        let s = InfluenceSet::new();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(UserId(0)));
        assert_eq!(s, InfluenceSet::default());
    }

    #[test]
    fn view_matches_repr() {
        let small: InfluenceSet = [7u32].into_iter().map(UserId).collect();
        assert!(matches!(small.view(), SetView::Small(v) if v == [UserId(7)]));
        let big = InfluenceSet::with_universe(64);
        assert!(matches!(big.view(), SetView::Bits(_)));
    }
}
