//! Machine-readable recovery-performance reports (`BENCH_recover.json`).
//!
//! The recovery artifact captures the three numbers that justify the
//! snapshot subsystem: how fast snapshots are written (actions covered per
//! second of capture + atomic write), how large they are relative to the
//! live state they serialize, and how much faster a snapshot-based cold
//! start reaches serving than a full-journal replay.
//!
//! Like the other `BENCH_*.json` artifacts, the document is written by a
//! small hand-rolled writer (the vendored `serde` is a no-op stub) and
//! versioned via the `schema` field (`rtim-bench-recover/v2`); CI
//! smoke-runs the emission path and uploads the artifact.
//!
//! Version 2 added the journal-rotation axis (each run records how many
//! segments the cold start replayed across) and the background-snapshot
//! stall probe (per-batch round-trip p99 with and without background
//! snapshots — off-engine-thread snapshot writes must not stall slides).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Schema identifier of the emitted JSON document.
pub const RECOVER_SCHEMA: &str = "rtim-bench-recover/v2";

/// One recovery measurement: warm an engine, snapshot it, then cold-start
/// twice (with and without the snapshot) from the same journal.
#[derive(Debug, Clone)]
pub struct RecoverRun {
    /// Run label, e.g. `"sic_t1"`.
    pub name: String,
    /// Framework name (`"SIC"` / `"IC"`).
    pub framework: String,
    /// Worker threads backing the checkpoint set (1 = sequential).
    pub threads: usize,
    /// Total actions in the journaled trace.
    pub actions: u64,
    /// Actions covered by the snapshot (the watermark).
    pub snapshot_watermark: u64,
    /// Nanoseconds to capture the engine state ([`rtim_core::SimEngine::snapshot`]).
    pub capture_nanos: u64,
    /// Nanoseconds to encode + atomically write the snapshot file.
    pub write_nanos: u64,
    /// Encoded snapshot size in bytes.
    pub snapshot_bytes: u64,
    /// Total journal bytes across all segments (the full-replay input).
    pub journal_bytes: u64,
    /// Journal segment files the cold start replayed across (1 = no
    /// rotation happened before the crash).
    pub segments: u64,
    /// Live-state size proxy: total `(influencer, influenced)` facts
    /// retained across the window's exact influence sets at snapshot time.
    pub window_facts: u64,
    /// Checkpoints captured in the snapshot.
    pub checkpoints: u64,
    /// Cold start to first answered query, using snapshot + journal tail.
    pub cold_start_snapshot_nanos: u64,
    /// Cold start to first answered query, replaying the whole journal.
    pub cold_start_full_nanos: u64,
    /// `cold_start_full_nanos / cold_start_snapshot_nanos`.
    pub speedup: f64,
    /// `true` iff both cold starts answered bit-identically to the
    /// uninterrupted engine.
    pub identical: bool,
}

impl RecoverRun {
    /// Snapshot write throughput in actions covered per second (capture +
    /// encode + write).
    pub fn snapshot_actions_per_sec(&self) -> f64 {
        let nanos = self.capture_nanos + self.write_nanos;
        if nanos == 0 {
            0.0
        } else {
            self.snapshot_watermark as f64 / (nanos as f64 / 1e9)
        }
    }
}

/// The background-snapshot stall probe: the same trace pushed through the
/// live pipeline twice — once with background snapshots off, once with
/// them on — measuring the per-batch ingest round-trip p99 caller-side.
/// Snapshot capture happens on the engine thread but encoding and file
/// I/O run on the writer thread, so the two percentiles should be close.
#[derive(Debug, Clone)]
pub struct StallProbe {
    /// Probe label, e.g. `"sic_t1"`.
    pub name: String,
    /// Round-trip samples per side (one per ingest batch).
    pub samples: u64,
    /// Background snapshots requested during the snapshot side.
    pub snapshot_cadence_slides: u64,
    /// p99 per-batch round-trip, background snapshots disabled.
    pub baseline_p99_nanos: u64,
    /// p99 per-batch round-trip, background snapshots every
    /// `snapshot_cadence_slides` slides.
    pub snapshot_p99_nanos: u64,
    /// `snapshot_p99_nanos / baseline_p99_nanos`.
    pub ratio: f64,
}

/// The complete `BENCH_recover.json` document.
#[derive(Debug, Clone, Default)]
pub struct RecoverBenchReport {
    /// Measured runs, in execution order.
    pub runs: Vec<RecoverRun>,
    /// Background-snapshot stall probes, in execution order.
    pub stalls: Vec<StallProbe>,
}

impl RecoverBenchReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders the document as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(RECOVER_SCHEMA));
        out.push_str("  \"runs\": [");
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"name\": {}, ", json_str(&run.name));
            let _ = write!(out, "\"framework\": {}, ", json_str(&run.framework));
            let _ = write!(out, "\"threads\": {}, ", run.threads);
            let _ = write!(out, "\"actions\": {}, ", run.actions);
            let _ = write!(out, "\"snapshot_watermark\": {}, ", run.snapshot_watermark);
            let _ = write!(out, "\"capture_nanos\": {}, ", run.capture_nanos);
            let _ = write!(out, "\"write_nanos\": {}, ", run.write_nanos);
            let _ = write!(
                out,
                "\"snapshot_actions_per_sec\": {}, ",
                json_f64(run.snapshot_actions_per_sec())
            );
            let _ = write!(out, "\"snapshot_bytes\": {}, ", run.snapshot_bytes);
            let _ = write!(out, "\"journal_bytes\": {}, ", run.journal_bytes);
            let _ = write!(out, "\"segments\": {}, ", run.segments);
            let _ = write!(out, "\"window_facts\": {}, ", run.window_facts);
            let _ = write!(out, "\"checkpoints\": {}, ", run.checkpoints);
            let _ = write!(
                out,
                "\"cold_start_snapshot_nanos\": {}, ",
                run.cold_start_snapshot_nanos
            );
            let _ = write!(
                out,
                "\"cold_start_full_nanos\": {}, ",
                run.cold_start_full_nanos
            );
            let _ = write!(out, "\"speedup\": {}, ", json_f64(run.speedup));
            let _ = write!(out, "\"identical\": {}", run.identical);
            out.push('}');
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"stalls\": [");
        for (i, probe) in self.stalls.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"name\": {}, ", json_str(&probe.name));
            let _ = write!(out, "\"samples\": {}, ", probe.samples);
            let _ = write!(
                out,
                "\"snapshot_cadence_slides\": {}, ",
                probe.snapshot_cadence_slides
            );
            let _ = write!(out, "\"baseline_p99_nanos\": {}, ", probe.baseline_p99_nanos);
            let _ = write!(out, "\"snapshot_p99_nanos\": {}, ", probe.snapshot_p99_nanos);
            let _ = write!(out, "\"ratio\": {}", json_f64(probe.ratio));
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the document to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// JSON string literal with the escapes the labels here can contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite JSON number (JSON has no NaN/Inf; those become null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> RecoverRun {
        RecoverRun {
            name: "sic_t1".into(),
            framework: "SIC".into(),
            threads: 1,
            actions: 100_000,
            snapshot_watermark: 90_000,
            capture_nanos: 500_000,
            write_nanos: 1_500_000,
            snapshot_bytes: 2_000_000,
            journal_bytes: 2_100_000,
            segments: 4,
            window_facts: 300_000,
            checkpoints: 12,
            cold_start_snapshot_nanos: 50_000_000,
            cold_start_full_nanos: 400_000_000,
            speedup: 8.0,
            identical: true,
        }
    }

    #[test]
    fn json_carries_schema_runs_and_balanced_braces() {
        let report = RecoverBenchReport {
            runs: vec![run()],
            stalls: vec![StallProbe {
                name: "sic_t1".into(),
                samples: 200,
                snapshot_cadence_slides: 8,
                baseline_p99_nanos: 1_000_000,
                snapshot_p99_nanos: 1_050_000,
                ratio: 1.05,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"rtim-bench-recover/v2\""));
        assert!(json.contains("\"name\": \"sic_t1\""));
        assert!(json.contains("\"speedup\": 8"));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"segments\": 4"));
        assert!(json.contains("\"snapshot_p99_nanos\": 1050000"));
        assert!(json.contains("\"ratio\": 1.05"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn snapshot_throughput_is_derived() {
        let r = run();
        assert!((r.snapshot_actions_per_sec() - 45_000_000.0).abs() < 1.0);
        let zero = RecoverRun {
            capture_nanos: 0,
            write_nanos: 0,
            ..run()
        };
        assert_eq!(zero.snapshot_actions_per_sec(), 0.0);
    }
}
