//! The paper's quality metric (§6.1).
//!
//! "When a set of seed users is returned by each approach at time `t`, we
//! evaluate the influence spread of the users under the WC model with
//! 10,000 rounds of Monte-Carlo simulation on the corresponding influence
//! graph `G_t`.  Finally, we use the average influence spread of all windows
//! for each approach as the quality metric."
//!
//! [`evaluate_average_spread`] replays the stream, rebuilds the window
//! influence graph at the evaluated slides, and averages the Monte-Carlo
//! spread of the seeds each method reported at those slides.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtim_core::SimConfig;
use rtim_graph::{build_window_graph, monte_carlo_spread};
use rtim_stream::{PropagationIndex, SlidingWindow, SocialStream, UserId};

/// Averages the WC-model Monte-Carlo spread of per-slide seed sets.
///
/// * `seeds_per_slide` — the seeds each method reported after each slide
///   (as produced by [`crate::runner::MethodRun::seeds_per_slide`]).
/// * `mc_rounds` — Monte-Carlo rounds per evaluation (paper: 10 000).
/// * `eval_every` — evaluate every `eval_every`-th slide (1 = every slide);
///   evaluation starts once the window is full.
pub fn evaluate_average_spread(
    stream: &SocialStream,
    config: SimConfig,
    seeds_per_slide: &[Vec<UserId>],
    mc_rounds: usize,
    eval_every: usize,
    seed: u64,
) -> f64 {
    let eval_every = eval_every.max(1);
    let mut window = SlidingWindow::new(config.window_size);
    let mut index = PropagationIndex::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let warmup = config.checkpoint_capacity();

    let mut total = 0.0;
    let mut evaluated = 0usize;
    for (slide_idx, batch) in stream.batches(config.slide).enumerate() {
        for action in batch {
            index.insert(action);
            window.push(*action);
        }
        if slide_idx >= seeds_per_slide.len() {
            break;
        }
        let full = slide_idx + 1 >= warmup;
        if !full || !(slide_idx + 1 - warmup).is_multiple_of(eval_every) {
            continue;
        }
        let seeds = &seeds_per_slide[slide_idx];
        if seeds.is_empty() {
            evaluated += 1;
            continue;
        }
        let graph = build_window_graph(&window, &index);
        total += monte_carlo_spread(&graph, seeds, mc_rounds, &mut rng);
        evaluated += 1;
    }
    if evaluated == 0 {
        0.0
    } else {
        total / evaluated as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_framework, run_method, BaselineBudget, MethodKind};
    use rtim_core::FrameworkKind;
    use rtim_datagen::{DatasetConfig, DatasetKind, Scale};

    fn tiny_stream() -> SocialStream {
        DatasetConfig::new(DatasetKind::SynN, Scale::Small)
            .with_users(300)
            .with_actions(2_000)
            .generate()
    }

    #[test]
    fn spread_of_streaming_methods_is_positive_and_bounded() {
        let stream = tiny_stream();
        let config = rtim_core::SimConfig::new(5, 0.2, 400, 50);
        let run = run_framework(FrameworkKind::Sic, config, &stream);
        let spread =
            evaluate_average_spread(&stream, config, &run.seeds_per_slide, 100, 2, 42);
        assert!(spread > 0.0);
        // Spread can never exceed the window size (at most N active users).
        assert!(spread <= 400.0);
    }

    #[test]
    fn greedy_quality_is_at_least_sic_quality_on_average() {
        let stream = tiny_stream();
        let config = rtim_core::SimConfig::new(5, 0.3, 400, 50);
        let sic = run_framework(FrameworkKind::Sic, config, &stream);
        let budget = BaselineBudget::default();
        let greedy = run_method(MethodKind::Greedy, config, &stream, budget, 7);
        let s_sic =
            evaluate_average_spread(&stream, config, &sic.seeds_per_slide, 200, 2, 42);
        let s_greedy =
            evaluate_average_spread(&stream, config, &greedy.seeds_per_slide, 200, 2, 42);
        // Greedy recomputes the (1-1/e) answer on the exact window, so its
        // average spread should not be much below SIC's (and usually above).
        assert!(
            s_greedy >= 0.75 * s_sic,
            "greedy spread {s_greedy} vs sic spread {s_sic}"
        );
    }

    #[test]
    fn empty_seed_lists_yield_zero() {
        let stream = tiny_stream();
        let config = rtim_core::SimConfig::new(5, 0.2, 400, 50);
        let empty: Vec<Vec<UserId>> = vec![Vec::new(); 40];
        let spread = evaluate_average_spread(&stream, config, &empty, 50, 1, 1);
        assert_eq!(spread, 0.0);
    }
}
