//! Shared workload of the `coverage_ops` micro-comparison: the bitmap
//! [`CoverageState`] against the retained hash-set baseline
//! ([`HashCoverageState`]).
//!
//! Both the Criterion bench (`benches/coverage_ops.rs`) and the
//! `bench_feed` binary (which records the numbers into `BENCH_feed.json`)
//! drive exactly this workload, so the microbench and the tracked artifact
//! can never drift apart.  The op mix mimics what a SieveStreaming instance
//! does per element: a marginal-gain probe for every arriving set, an
//! absorb for the admitted ones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtim_stream::{InfluenceSet, UserId};
use rtim_submodular::{CoverageState, HashCoverageState, UnitWeight};
use std::time::Instant;

/// Generates `n` influence sets over `0..universe` whose sizes follow the
/// shallow-cascade profile of the real datasets (mostly small-vec sets, a
/// tail of bitmap-promoted ones).
pub fn coverage_workload(n: usize, universe: u32, seed: u64) -> Vec<InfluenceSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Cubic profile: mostly tiny sets, occasional sets of ~100
            // (past the small-vec promotion threshold).
            let size = 1 + (rng.gen::<f64>().powi(3) * 100.0) as usize;
            (0..size)
                .map(|_| UserId(rng.gen_range(0..universe)))
                .collect()
        })
        .collect()
}

/// The two coverage implementations under comparison, unified so both
/// passes are guaranteed to run the **same** op mix (changing the mix in
/// one but not the other would silently skew the tracked speedup).
trait ComparedCoverage: Default {
    fn marginal_gain(&self, set: &InfluenceSet) -> f64;
    fn absorb(&mut self, set: &InfluenceSet) -> f64;
}

impl ComparedCoverage for CoverageState {
    fn marginal_gain(&self, set: &InfluenceSet) -> f64 {
        CoverageState::marginal_gain(self, &UnitWeight, set)
    }
    fn absorb(&mut self, set: &InfluenceSet) -> f64 {
        CoverageState::absorb(self, &UnitWeight, set)
    }
}

impl ComparedCoverage for HashCoverageState {
    fn marginal_gain(&self, set: &InfluenceSet) -> f64 {
        HashCoverageState::marginal_gain(self, &UnitWeight, set)
    }
    fn absorb(&mut self, set: &InfluenceSet) -> f64 {
        HashCoverageState::absorb(self, &UnitWeight, set)
    }
}

/// The single op mix both implementations run: a marginal-gain probe per
/// arriving set, an absorb for every other one (the SieveStreaming shape).
/// Returns a checksum (so the work cannot be optimized away) and the op
/// count.
fn run_pass<C: ComparedCoverage>(sets: &[InfluenceSet]) -> (f64, u64) {
    let mut cov = C::default();
    let mut sum = 0.0;
    let mut ops = 0u64;
    for (i, s) in sets.iter().enumerate() {
        sum += cov.marginal_gain(s);
        ops += 1;
        if i % 2 == 0 {
            sum += cov.absorb(s);
            ops += 1;
        }
    }
    (sum, ops)
}

/// One pass of the op mix against the bitmap coverage state.
pub fn bitmap_pass(sets: &[InfluenceSet]) -> (f64, u64) {
    run_pass::<CoverageState>(sets)
}

/// The identical pass against the retained hash-set baseline.
pub fn hashset_pass(sets: &[InfluenceSet]) -> (f64, u64) {
    run_pass::<HashCoverageState>(sets)
}

/// Times `iters` repetitions of a pass, returning `(ns_per_op, total_ops)`.
pub fn time_pass(iters: u32, mut pass: impl FnMut() -> (f64, u64)) -> (f64, u64) {
    let mut checksum = 0.0;
    let mut total_ops = 0u64;
    let started = Instant::now();
    for _ in 0..iters {
        let (sum, ops) = pass();
        checksum += sum;
        total_ops += ops;
    }
    let nanos = started.elapsed().as_nanos() as f64;
    // Fold the checksum into a side effect the optimizer must respect.
    std::hint::black_box(checksum);
    (
        if total_ops == 0 {
            0.0
        } else {
            nanos / total_ops as f64
        },
        total_ops,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_mixes_small_and_bitmap_sets() {
        let sets = coverage_workload(400, 5_000, 7);
        assert_eq!(sets.len(), 400);
        assert!(sets.iter().any(|s| s.is_bitmap()), "no promoted sets");
        assert!(sets.iter().any(|s| !s.is_bitmap()), "no small sets");
    }

    #[test]
    fn both_passes_compute_identical_checksums() {
        let sets = coverage_workload(200, 2_000, 42);
        let (a, ops_a) = bitmap_pass(&sets);
        let (b, ops_b) = hashset_pass(&sets);
        assert_eq!(a, b, "bitmap and hash-set disagree on the workload");
        assert_eq!(ops_a, ops_b);
        assert!(ops_a > 200);
    }

    #[test]
    fn time_pass_reports_ops() {
        let sets = coverage_workload(50, 500, 1);
        let (ns, ops) = time_pass(2, || bitmap_pass(&sets));
        assert!(ns >= 0.0);
        assert_eq!(ops, 2 * bitmap_pass(&sets).1);
    }
}
