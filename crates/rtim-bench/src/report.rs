//! Plain-text reporting shared by the experiment binaries.
//!
//! Each figure of the paper is a set of series (one per method) over a
//! swept parameter; [`Series`] captures that structure and
//! [`format_series`] renders it as an aligned text table with one row per
//! parameter value and one column per series — the exact data a plotting
//! script would consume.

use std::fmt::Write as _;

/// One line in a figure: a named series of (x, y) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series name (e.g. a method name).
    pub name: String,
    /// The y values, aligned with the sweep's x values.
    pub values: Vec<f64>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Series {
            name: name.into(),
            values,
        }
    }
}

/// Formats a figure: `x_label` column followed by one column per series.
pub fn format_series(title: &str, x_label: &str, xs: &[String], series: &[Series]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "{x_label:>12}");
    for s in series {
        let _ = write!(out, " {:>14}", s.name);
    }
    let _ = writeln!(out);
    for (i, x) in xs.iter().enumerate() {
        let _ = write!(out, "{x:>12}");
        for s in series {
            match s.values.get(i) {
                Some(v) => {
                    let _ = write!(out, " {:>14}", format_value(*v));
                }
                None => {
                    let _ = write!(out, " {:>14}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Formats a plain table with a header row and aligned columns.
pub fn format_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    for (i, h) in header.iter().enumerate() {
        let _ = write!(out, "{:>w$}  ", h, w = widths[i]);
    }
    let _ = writeln!(out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", cell, w = widths.get(i).copied().unwrap_or(8));
        }
        let _ = writeln!(out);
    }
    out
}

/// Human-friendly numeric formatting: large values get thousands separators
/// dropped in favour of `k`/`M` suffixes, small values keep two decimals.
pub fn format_value(v: f64) -> String {
    if !v.is_finite() {
        return "inf".to_string();
    }
    let a = v.abs();
    if a >= 1_000_000.0 {
        format!("{:.2}M", v / 1_000_000.0)
    } else if a >= 10_000.0 {
        format!("{:.1}k", v / 1_000.0)
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_table_is_aligned_and_complete() {
        let xs = vec!["0.1".to_string(), "0.2".to_string()];
        let series = vec![
            Series::new("SIC", vec![100.0, 200.0]),
            Series::new("IC", vec![90.0]),
        ];
        let out = format_series("Figure X", "beta", &xs, &series);
        assert!(out.contains("# Figure X"));
        assert!(out.contains("SIC"));
        assert!(out.contains("100"));
        // Missing second value of IC is rendered as '-'.
        assert!(out.contains('-'));
        assert_eq!(out.lines().count(), 4);
    }

    #[test]
    fn value_formatting_uses_suffixes() {
        assert_eq!(format_value(1_500_000.0), "1.50M");
        assert_eq!(format_value(25_000.0), "25.0k");
        assert_eq!(format_value(123.4), "123");
        assert_eq!(format_value(4.5678), "4.57");
        assert_eq!(format_value(f64::INFINITY), "inf");
    }

    #[test]
    fn plain_table_renders_rows() {
        let out = format_table(
            "Table 3",
            &["Dataset", "Users"],
            &[vec!["Reddit".into(), "2628904".into()]],
        );
        assert!(out.contains("Reddit"));
        assert!(out.contains("Users"));
    }
}
