//! # rtim-bench
//!
//! Experiment harness reproducing every table and figure of §6 of the paper.
//!
//! * [`params`] — the parameter grid of Table 4 and the scaled-down default
//!   experiment sizes used by the bundled binaries.
//! * [`runner`] — drives a method (SIC, IC, Greedy, IMM, UBI) over a
//!   generated stream, measuring the metrics the paper reports: average SIM
//!   influence value, number of maintained checkpoints, and throughput
//!   (actions per second of processing time).
//! * [`quality`] — the paper's quality metric: the seeds reported at each
//!   window are evaluated by Monte-Carlo simulation under the Weighted
//!   Cascade model on that window's influence graph, and averaged.
//! * [`report`] — plain-text table/series output shared by the experiment
//!   binaries (`src/bin/fig*.rs`, `src/bin/table*.rs`).
//!
//! The Criterion benches under `benches/` measure the same operations at
//! micro scale (per-slide latencies, per-element oracle updates, graph
//! operations); the binaries regenerate the full figures/tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod covbench;
pub mod experiments;
pub mod feedjson;
pub mod params;
pub mod quality;
pub mod recoverjson;
pub mod report;
pub mod runner;
pub mod servejson;
pub mod stats;

pub use covbench::{bitmap_pass, coverage_workload, hashset_pass, time_pass};
pub use experiments::{BetaSweep, CommonArgs, MethodSweep, COMMON_KEYS};
pub use feedjson::{
    BaselineSample, CoverageOpsSample, FeedBenchReport, FeedRun, TraceOverheadSample, FEED_SCHEMA,
};
pub use recoverjson::{RecoverBenchReport, RecoverRun, StallProbe, RECOVER_SCHEMA};
pub use servejson::{ServeBenchReport, ServeRun, ServeSetup, SERVE_SCHEMA};
pub use params::{ExperimentParams, ParamGrid};
pub use quality::evaluate_average_spread;
pub use report::{format_series, format_table, Series};
pub use runner::{run_method, BaselineBudget, MethodKind, MethodRun};
pub use stats::LatencyStats;
