//! Experiment parameters (Table 4) and scaled defaults.
//!
//! The paper's grid: `k ∈ {5, 25, 50, 75, 100}`, `β ∈ {0.1..0.5}`,
//! `N ∈ {100K..1M}`, `L ∈ {1K..10K}`, `|U| ∈ {1M..5M}` with defaults
//! `k = 50`, `β = 0.1`, `N = 250K`, `L = 5K`, `|U| = 2M`.
//!
//! The bundled experiment binaries default to a proportionally scaled-down
//! grid (`scale_factor`) so the whole suite completes on a laptop in
//! minutes; pass `--scale paper` to reproduce the original sizes.

use rtim_datagen::{DatasetConfig, DatasetKind, Scale};
use serde::{Deserialize, Serialize};

/// The full parameter grid of Table 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamGrid {
    /// Seed-set sizes `k`.
    pub k: Vec<usize>,
    /// Trade-off parameters `β`.
    pub beta: Vec<f64>,
    /// Window sizes `N`.
    pub window: Vec<usize>,
    /// Slide lengths `L`.
    pub slide: Vec<usize>,
    /// User counts `|U|` (synthetic datasets only).
    pub users: Vec<u32>,
}

impl ParamGrid {
    /// The paper's grid (Table 4).
    pub fn paper() -> Self {
        ParamGrid {
            k: vec![5, 25, 50, 75, 100],
            beta: vec![0.1, 0.2, 0.3, 0.4, 0.5],
            window: vec![100_000, 250_000, 500_000, 750_000, 1_000_000],
            slide: vec![1_000, 2_500, 5_000, 7_500, 10_000],
            users: vec![1_000_000, 2_000_000, 3_000_000, 4_000_000, 5_000_000],
        }
    }

    /// The grid scaled by `factor` (sizes rounded, k and β unchanged).
    pub fn scaled(factor: f64) -> Self {
        let f = factor.clamp(1e-5, 1.0);
        let paper = Self::paper();
        ParamGrid {
            k: paper.k,
            beta: paper.beta,
            window: paper.window.iter().map(|&n| scale_usize(n, f)).collect(),
            slide: paper.slide.iter().map(|&l| scale_usize(l, f)).collect(),
            users: paper
                .users
                .iter()
                .map(|&u| (u as f64 * f).ceil().max(100.0) as u32)
                .collect(),
        }
    }
}

fn scale_usize(v: usize, f: f64) -> usize {
    ((v as f64 * f).ceil() as usize).max(10)
}

/// One experiment's fully resolved parameters (defaults of Table 4 at the
/// requested scale, each overridable from the command line).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// Dataset to generate.
    pub dataset: DatasetKind,
    /// Stream scale (fraction of paper size).
    pub scale: Scale,
    /// Seed-set size `k` (paper default 50).
    pub k: usize,
    /// Trade-off `β` (paper default 0.1).
    pub beta: f64,
    /// Window size `N`.
    pub window: usize,
    /// Slide length `L`.
    pub slide: usize,
    /// Monte-Carlo rounds used by the quality metric (paper: 10 000).
    pub mc_rounds: usize,
    /// Evaluate the quality metric every this many slides (1 = every slide).
    pub eval_every: usize,
    /// RNG seed for evaluation and baselines.
    pub seed: u64,
}

impl ExperimentParams {
    /// Laptop-scale defaults: the Table-4 defaults multiplied by the scale
    /// fraction, on the given dataset.
    pub fn small(dataset: DatasetKind) -> Self {
        Self::at_scale(dataset, Scale::Small)
    }

    /// Defaults proportional to the requested scale.
    pub fn at_scale(dataset: DatasetKind, scale: Scale) -> Self {
        let f = scale.fraction();
        ExperimentParams {
            dataset,
            scale,
            k: 50,
            beta: 0.1,
            window: scale_usize(250_000, f),
            slide: scale_usize(5_000, f),
            mc_rounds: if f >= 1.0 { 10_000 } else { 500 },
            eval_every: 4,
            seed: 0xE0_5EED,
        }
    }

    /// The dataset configuration implied by these parameters.
    pub fn dataset_config(&self) -> DatasetConfig {
        DatasetConfig::new(self.dataset, self.scale)
    }

    /// The SIM configuration implied by these parameters.
    pub fn sim_config(&self) -> rtim_core::SimConfig {
        rtim_core::SimConfig::new(self.k, self.beta, self.window, self.slide)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_matches_table4() {
        let g = ParamGrid::paper();
        assert_eq!(g.k, vec![5, 25, 50, 75, 100]);
        assert_eq!(g.window[1], 250_000);
        assert_eq!(g.slide[2], 5_000);
        assert_eq!(g.users.len(), 5);
    }

    #[test]
    fn scaled_grid_shrinks_sizes_only() {
        let g = ParamGrid::scaled(0.01);
        assert_eq!(g.k, ParamGrid::paper().k);
        assert_eq!(g.window[1], 2_500);
        assert!(g.users[0] <= 10_000);
    }

    #[test]
    fn params_default_to_table4_defaults() {
        let p = ExperimentParams::at_scale(DatasetKind::SynO, Scale::Paper);
        assert_eq!(p.k, 50);
        assert_eq!(p.window, 250_000);
        assert_eq!(p.slide, 5_000);
        assert_eq!(p.mc_rounds, 10_000);
        let c = p.sim_config();
        assert_eq!(c.checkpoint_capacity(), 50);
    }

    #[test]
    fn small_params_are_proportional() {
        let p = ExperimentParams::small(DatasetKind::Reddit);
        assert_eq!(p.window, 500);
        assert_eq!(p.slide, 10);
        assert_eq!(p.sim_config().checkpoint_capacity(), 50);
    }
}
