//! Figure 9 — throughput of all methods with varying k.
//!
//! Expected shape: all methods slow down as k grows; SIC dominates IC, and
//! both dominate Greedy/IMM by roughly two orders of magnitude; UBI sits in
//! between but well below SIC.
//!
//! ```text
//! cargo run --release -p rtim-bench --bin fig9_throughput_vs_k -- --dataset syn-n
//! ```

use rtim_bench::cli::Args;
use rtim_bench::{format_series, CommonArgs, MethodKind, MethodSweep, COMMON_KEYS};

fn main() {
    let args = match Args::parse(COMMON_KEYS) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let mut common = CommonArgs::resolve(&args);
    if common.budget.max_slides == 0 {
        common.budget.max_slides = 12;
    }
    let ks = [5usize, 25, 50, 75, 100];
    let xs: Vec<String> = ks.iter().map(|k| k.to_string()).collect();

    for dataset in &common.datasets.clone() {
        let stream = common.generate(*dataset);
        let params = common.params;
        let sweep = MethodSweep::run(
            &MethodKind::all(),
            &xs,
            common.budget,
            |_| stream.clone(),
            |xi| {
                let mut p = params;
                p.k = ks[xi];
                p
            },
        );
        println!(
            "{}",
            format_series(
                &format!(
                    "Figure 9 ({}): throughput (actions/s) vs k (N={}, L={}, beta={})",
                    dataset.name(),
                    params.window,
                    params.slide,
                    params.beta
                ),
                "k",
                &xs,
                &sweep.throughput_series(),
            )
        );
    }
}
