//! Figure 6 — number of checkpoints maintained by IC and SIC vs β.
//!
//! Expected shape: IC keeps a constant ⌈N/L⌉ checkpoints regardless of β;
//! SIC keeps O(log N / β) — decreasing in β and far below IC.
//!
//! ```text
//! cargo run --release -p rtim-bench --bin fig6_checkpoints_vs_beta
//! ```

use rtim_bench::cli::Args;
use rtim_bench::{format_series, BetaSweep, CommonArgs, COMMON_KEYS};

fn main() {
    let args = match Args::parse(COMMON_KEYS) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let common = CommonArgs::resolve(&args);
    let betas = [0.1, 0.2, 0.3, 0.4, 0.5];

    for dataset in &common.datasets {
        let stream = common.generate(*dataset);
        let sweep = BetaSweep::run(&stream, &common.params, &betas);
        println!(
            "{}",
            format_series(
                &format!(
                    "Figure 6 ({}): average number of checkpoints vs beta (ceil(N/L) = {})",
                    dataset.name(),
                    common.params.sim_config().checkpoint_capacity()
                ),
                "beta",
                &sweep.x_labels(),
                &sweep.series(|r| r.avg_checkpoints),
            )
        );
    }
}
