//! Figure 10 — throughput of all methods with varying window size N.
//!
//! The swept N values are the Table-4 grid scaled by the requested scale
//! (paper: 100K–1M).  Expected shape: every method slows as N grows; SIC
//! degrades slowest (its checkpoint count grows only logarithmically in N);
//! IC and SIC converge when N is small enough that ⌈N/L⌉ is itself small.
//!
//! ```text
//! cargo run --release -p rtim-bench --bin fig10_throughput_vs_n -- --dataset syn-n
//! ```

use rtim_bench::cli::Args;
use rtim_bench::{format_series, CommonArgs, MethodKind, MethodSweep, ParamGrid, COMMON_KEYS};
use rtim_core::{FrameworkKind, SimEngine};

fn main() {
    let args = match Args::parse(COMMON_KEYS) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let mut common = CommonArgs::resolve(&args);
    if common.budget.max_slides == 0 {
        common.budget.max_slides = 8;
    }
    let grid = ParamGrid::scaled(common.params.scale.fraction());
    let xs: Vec<String> = grid.window.iter().map(|n| n.to_string()).collect();

    for dataset in &common.datasets.clone() {
        let stream = common.generate(*dataset);
        let params = common.params;
        let sweep = MethodSweep::run(
            &MethodKind::all(),
            &xs,
            common.budget,
            |_| stream.clone(),
            |xi| {
                let mut p = params;
                p.window = grid.window[xi];
                p.slide = p.slide.min(p.window).max(1);
                p
            },
        );
        println!(
            "{}",
            format_series(
                &format!(
                    "Figure 10 ({}): throughput (actions/s) vs window size N (k={}, L={}, beta={})",
                    dataset.name(),
                    params.k,
                    params.slide,
                    params.beta
                ),
                "N",
                &xs,
                &sweep.throughput_series(),
            )
        );
        // Latency split at the default N, straight from the engine's own
        // per-slide instrumentation: the real-time budget is spent feeding
        // checkpoints, not answering queries.
        let report = SimEngine::new(params.sim_config(), FrameworkKind::Sic).run_stream(&stream);
        println!(
            "SIC at N={}: feed {:.1} ms, query {:.1} ms over {} slides ({:.0} actions/s)\n",
            params.window,
            report.feed_nanos() as f64 / 1e6,
            report.query_nanos() as f64 / 1e6,
            report.slides.len(),
            report.throughput(),
        );
    }
}
