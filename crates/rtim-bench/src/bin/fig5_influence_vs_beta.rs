//! Figure 5 — influence values of IC and SIC with varying β.
//!
//! For each dataset, sweeps β ∈ {0.1, 0.2, 0.3, 0.4, 0.5} and reports the
//! average SIM influence value (the objective value of the answer averaged
//! over all full windows).  Expected shape: IC ≥ SIC, both decreasing in β,
//! with SIC within ~5 % of IC and degrading fastest on SYN-N.
//!
//! ```text
//! cargo run --release -p rtim-bench --bin fig5_influence_vs_beta
//! ```

use rtim_bench::cli::Args;
use rtim_bench::{format_series, BetaSweep, CommonArgs, COMMON_KEYS};

fn main() {
    let args = match Args::parse(COMMON_KEYS) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let common = CommonArgs::resolve(&args);
    let betas = [0.1, 0.2, 0.3, 0.4, 0.5];

    for dataset in &common.datasets {
        let stream = common.generate(*dataset);
        let sweep = BetaSweep::run(&stream, &common.params, &betas);
        println!(
            "{}",
            format_series(
                &format!(
                    "Figure 5 ({}): average influence value vs beta (k={}, N={}, L={})",
                    dataset.name(),
                    common.params.k,
                    common.params.window,
                    common.params.slide
                ),
                "beta",
                &sweep.x_labels(),
                &sweep.series(|r| r.avg_value),
            )
        );
    }
}
