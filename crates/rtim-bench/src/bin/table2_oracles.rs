//! Table 2 (ablation) — candidate checkpoint oracles.
//!
//! The paper lists four candidate checkpoint oracles with their theoretical
//! quality and update cost.  This binary measures them empirically inside
//! the SIC framework on the same stream: average SIM influence value,
//! throughput, and the theoretical ratio for reference.
//!
//! ```text
//! cargo run --release -p rtim-bench --bin table2_oracles -- --dataset syn-n
//! ```

use rtim_bench::cli::Args;
use rtim_bench::{format_table, run_method, BaselineBudget, CommonArgs, MethodKind, COMMON_KEYS};
use rtim_submodular::OracleKind;

fn main() {
    let args = match Args::parse(COMMON_KEYS) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let common = CommonArgs::resolve(&args);
    let dataset = common.datasets[0];
    let stream = common.generate(dataset);
    let params = common.params;

    let mut rows = Vec::new();
    for oracle in OracleKind::all() {
        let config = params.sim_config().with_oracle(oracle);
        let run = run_method(
            MethodKind::Sic,
            config,
            &stream,
            BaselineBudget::default(),
            params.seed,
        );
        rows.push(vec![
            oracle.name().to_string(),
            format!("{:.3}", oracle.approximation_ratio(config.oracle_config())),
            format!("{:.1}", run.avg_value),
            format!("{:.0}", run.throughput),
            format!("{:.1}", run.avg_checkpoints),
        ]);
    }
    println!(
        "{}",
        format_table(
            &format!(
                "Table 2 (ablation): checkpoint oracles inside SIC on {} (k={}, beta={}, N={}, L={})",
                dataset.name(),
                params.k,
                params.beta,
                params.window,
                params.slide
            ),
            &["Oracle", "Theor. ratio", "Avg. value", "Throughput (act/s)", "Avg. checkpoints"],
            &rows,
        )
    );
}
