//! Figure 8 — solution quality (WC Monte-Carlo influence spread) of all
//! methods with varying k.
//!
//! For each dataset and k ∈ {5, 25, 50, 75, 100}, every method's per-window
//! seeds are evaluated by Monte-Carlo simulation under the Weighted Cascade
//! model on that window's influence graph and averaged.  Expected shape:
//! Greedy/IC/SIC within ~10 % of IMM across all k; UBI competitive for
//! small k (≤ 25) and degrading as k grows.
//!
//! The static baselines are expensive; `--max-slides` (default 12) caps how
//! many windows they are asked to answer (their per-window cost is
//! stationary so the average is unaffected).
//!
//! ```text
//! cargo run --release -p rtim-bench --bin fig8_quality_vs_k -- --dataset syn-n
//! ```

use rtim_bench::cli::Args;
use rtim_bench::{format_series, CommonArgs, MethodKind, MethodSweep, COMMON_KEYS};

fn main() {
    let args = match Args::parse(COMMON_KEYS) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let mut common = CommonArgs::resolve(&args);
    if common.budget.max_slides == 0 {
        common.budget.max_slides = 12;
    }
    let ks = [5usize, 25, 50, 75, 100];
    let xs: Vec<String> = ks.iter().map(|k| k.to_string()).collect();

    for dataset in &common.datasets.clone() {
        let stream = common.generate(*dataset);
        let params = common.params;
        let sweep = MethodSweep::run(
            &MethodKind::all(),
            &xs,
            common.budget,
            |_| stream.clone(),
            |xi| {
                let mut p = params;
                p.k = ks[xi];
                p
            },
        );
        let quality = sweep.quality_series(
            |_| stream.clone(),
            |xi| {
                let mut p = params;
                p.k = ks[xi];
                p
            },
        );
        println!(
            "{}",
            format_series(
                &format!(
                    "Figure 8 ({}): average influence spread (WC, {} MC rounds) vs k",
                    dataset.name(),
                    params.mc_rounds
                ),
                "k",
                &xs,
                &quality,
            )
        );
    }
}
