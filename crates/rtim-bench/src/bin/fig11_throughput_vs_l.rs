//! Figure 11 — throughput of all methods with varying slide length L.
//!
//! The swept L values are the Table-4 grid scaled by the requested scale
//! (paper: 1K–10K).  Expected shape: IC and SIC throughput grows with L
//! (fewer checkpoints, less per-action overhead), roughly linearly for IC;
//! SIC stays above IC; the static baselines barely benefit.
//!
//! ```text
//! cargo run --release -p rtim-bench --bin fig11_throughput_vs_l -- --dataset syn-n
//! ```

use rtim_bench::cli::Args;
use rtim_bench::{format_series, CommonArgs, MethodKind, MethodSweep, ParamGrid, COMMON_KEYS};

fn main() {
    let args = match Args::parse(COMMON_KEYS) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let mut common = CommonArgs::resolve(&args);
    if common.budget.max_slides == 0 {
        common.budget.max_slides = 8;
    }
    let grid = ParamGrid::scaled(common.params.scale.fraction());
    let xs: Vec<String> = grid.slide.iter().map(|l| l.to_string()).collect();

    for dataset in &common.datasets.clone() {
        let stream = common.generate(*dataset);
        let params = common.params;
        let sweep = MethodSweep::run(
            &MethodKind::all(),
            &xs,
            common.budget,
            |_| stream.clone(),
            |xi| {
                let mut p = params;
                p.slide = grid.slide[xi].min(p.window).max(1);
                p
            },
        );
        println!(
            "{}",
            format_series(
                &format!(
                    "Figure 11 ({}): throughput (actions/s) vs slide length L (k={}, N={}, beta={})",
                    dataset.name(),
                    params.k,
                    params.window,
                    params.beta
                ),
                "L",
                &xs,
                &sweep.throughput_series(),
            )
        );
    }
}
