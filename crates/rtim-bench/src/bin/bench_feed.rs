//! Emits the machine-readable feed-performance artifact `BENCH_feed.json`.
//!
//! Runs SIC and IC through [`rtim_core::SimEngine::run_stream`] on a
//! synthetic stream (per-slide `feed_nanos`/`query_nanos` come from the
//! engine's own instrumentation) and the `coverage_ops` micro-comparison of
//! the bitmap coverage state against the retained hash-set baseline, then
//! writes everything as JSON so the perf trajectory can be tracked across
//! PRs on the same machine.
//!
//! ```text
//! cargo run --release -p rtim-bench --bin bench_feed -- \
//!     --dataset syn-n --actions 2000 --users 500 --window 400 --slide 100 \
//!     --threads 4 --out BENCH_feed.json
//! ```

use rtim_bench::cli::Args;
use rtim_bench::{
    bitmap_pass, coverage_workload, hashset_pass, time_pass, CommonArgs, CoverageOpsSample,
    FeedBenchReport, FeedRun, COMMON_KEYS,
};
use rtim_core::{FrameworkKind, SimEngine};

fn main() {
    let keys: Vec<&str> = COMMON_KEYS
        .iter()
        .copied()
        .chain(["threads", "out", "cov-sets", "cov-iters"])
        .collect();
    let args = match Args::parse(&keys) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let common = CommonArgs::resolve(&args);
    let threads: usize = args.get_or("threads", 1usize).max(1);
    let out = args.get("out").unwrap_or("BENCH_feed.json").to_string();
    let cov_sets: usize = args.get_or("cov-sets", 400usize);
    let cov_iters: u32 = args.get_or("cov-iters", 5u32);

    let dataset = common.datasets[0];
    let stream = common.generate(dataset);
    let params = &common.params;

    let mut report = FeedBenchReport::new();

    // Framework feed runs: sequential always, plus the pool when asked.
    let mut thread_counts = vec![1usize];
    if threads > 1 {
        thread_counts.push(threads);
    }
    for kind in [FrameworkKind::Sic, FrameworkKind::Ic] {
        for &t in &thread_counts {
            let config = params.sim_config().with_threads(t);
            let mut engine = SimEngine::new(config, kind);
            let run = engine.run_stream(&stream);
            let name = format!(
                "{}_{}_t{}",
                kind.name().to_ascii_lowercase(),
                dataset.name().to_ascii_lowercase(),
                t
            );
            report.runs.push(FeedRun::from_report(name, kind.name(), t, &run));
        }
    }

    // coverage_ops: bitmap vs the retained hash-set baseline on the shared
    // workload (identical op sequence; see rtim_bench::covbench).
    let sets = coverage_workload(cov_sets, 5_000, params.seed);
    let (bitmap_ns, bitmap_ops) = time_pass(cov_iters, || bitmap_pass(&sets));
    let (hash_ns, hash_ops) = time_pass(cov_iters, || hashset_pass(&sets));
    report.coverage_ops.push(CoverageOpsSample {
        op: "mixed_marginal_absorb".into(),
        implementation: "bitmap".into(),
        ns_per_op: bitmap_ns,
        ops: bitmap_ops,
    });
    report.coverage_ops.push(CoverageOpsSample {
        op: "mixed_marginal_absorb".into(),
        implementation: "hashset".into(),
        ns_per_op: hash_ns,
        ops: hash_ops,
    });

    if let Err(e) = report.write(&out) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }

    for run in &report.runs {
        println!(
            "{:>16}  slides {:>5}  feed/slide {:>12.0} ns  {:>12.0} actions/s",
            run.name, run.slides, run.feed_nanos_per_slide_mean, run.elements_per_sec
        );
    }
    println!(
        "coverage_ops: bitmap {bitmap_ns:.1} ns/op, hashset {hash_ns:.1} ns/op, speedup {}",
        report
            .bitmap_speedup()
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "n/a".into())
    );
    println!("wrote {out}");
}
