//! Emits the machine-readable feed-performance artifact `BENCH_feed.json`.
//!
//! Runs SIC and IC through [`rtim_core::SimEngine::run_stream`] on a
//! synthetic stream (per-slide `feed_nanos`/`query_nanos` come from the
//! engine's own instrumentation) and the `coverage_ops` micro-comparison of
//! the bitmap coverage state against the retained hash-set baseline, then
//! writes everything as schema-v2 JSON so the perf trajectory can be
//! tracked across PRs on the same machine.
//!
//! `--hot-frac P` additionally replays the stream with `P` percent of the
//! actions remapped onto a handful of hot users — the skewed workload the
//! pool's timing-driven placement exists for — and records the resulting
//! `shard_migrations` / EWMA spread per run.
//!
//! ```text
//! cargo run --release -p rtim-bench --bin bench_feed -- \
//!     --dataset syn-n --actions 2000 --users 500 --window 400 --slide 100 \
//!     --threads 4 --hot-frac 30 --out BENCH_feed.json
//! ```

use rtim_bench::cli::Args;
use rtim_bench::{
    bitmap_pass, coverage_workload, hashset_pass, time_pass, BaselineSample, CommonArgs,
    CoverageOpsSample, FeedBenchReport, FeedRun, TraceOverheadSample, COMMON_KEYS,
};
use rtim_core::{
    EngineHandle, FrameworkKind, HandleOptions, SimEngine, SpanCtx, TraceConfig,
};
use rtim_stream::{SocialStream, UserId};

/// Number of distinct hot users the `--hot-frac` remap concentrates on.
const HOT_USERS: u32 = 4;

/// Sampling rate of the trace-overhead differential (1-in-N).
const TRACE_SAMPLE: u32 = 64;

/// Reference per-slide feed times measured on this repository's CI/dev
/// machine at the PR 6 head (commit 4ee98f3), with the canonical artifact
/// arguments below.  Attached to the report only when the current
/// invocation matches those arguments — trajectory numbers from different
/// workloads are not comparable.
const PR6_BASELINE_SOURCE: &str = "PR6 @ 4ee98f3 (pre-kernel scalar hot path)";
const PR6_BASELINE: &[(&str, f64)] = &[
    ("sic_syn-n_t1", 13_442_587.725),
    ("sic_syn-n_t4", 12_644_833.175),
    ("ic_syn-n_t1", 12_092_878.15),
    ("ic_syn-n_t4", 12_942_741.025),
];

/// The canonical artifact arguments the PR 6 baseline was recorded with:
/// `--dataset syn-n --actions 20000 --users 2000 --window 4000 --slide 500
/// --threads 4`.
fn matches_baseline_workload(common: &CommonArgs, threads: usize) -> bool {
    common.actions == Some(20_000)
        && common.users == Some(2_000)
        && common.params.window == 4_000
        && common.params.slide == 500
        && threads == 4
}

/// Remaps `percent`% of the actions (every ⌊100/percent⌋-th, deterministic)
/// onto [`HOT_USERS`] users, concentrating influence-set growth — and
/// therefore checkpoint feed time — on whichever shards own the oldest
/// checkpoints.  Ids and reply structure are untouched, so the stream
/// stays valid.
fn hotify(stream: &SocialStream, percent: u32) -> SocialStream {
    let actions: Vec<_> = stream
        .iter()
        .enumerate()
        .map(|(i, a)| {
            if (i as u64 * percent as u64) % 100 < percent as u64 {
                rtim_stream::Action {
                    user: UserId(a.user.0 % HOT_USERS),
                    ..*a
                }
            } else {
                *a
            }
        })
        .collect();
    SocialStream::new(actions).expect("user remap preserves stream validity")
}

/// One trace-overhead leg: the stream pushed through the
/// [`EngineHandle`] pipeline (the instrumented hot path, not the
/// in-process [`SimEngine`]) in one-slide batches, returning the engine
/// feed nanoseconds.  `trace` enables the flight recorder; a sampled
/// span rides on every [`TRACE_SAMPLE`]-th batch, exactly like a
/// front-end at 1-in-N sampling.
fn traced_feed_nanos(
    config: rtim_core::SimConfig,
    stream: &SocialStream,
    batch: usize,
    trace: Option<TraceConfig>,
) -> u64 {
    let mut options = HandleOptions::default().with_capacity(64);
    if let Some(trace) = trace {
        options = options.with_tracing(trace);
    }
    let handle = EngineHandle::spawn(config, FrameworkKind::Sic, options);
    let recorder = handle.trace_recorder();
    let mut sender = handle.sender();
    for (i, chunk) in stream.actions().chunks(batch.max(1)).enumerate() {
        let span = match &recorder {
            Some(r) if (i as u32).is_multiple_of(TRACE_SAMPLE) => {
                let now = r.now_nanos();
                SpanCtx {
                    conn: 0,
                    corr: i as u32,
                    kind: 0x01, // ingest
                    sampled: true,
                    start_nanos: now,
                    parse_nanos: 0,
                    enqueue_nanos: now,
                }
            }
            _ => SpanCtx::default(),
        };
        sender.ingest_traced(chunk.to_vec(), span).expect("ingest");
    }
    handle.shutdown().stats.feed_nanos
}

fn main() {
    let keys: Vec<&str> = COMMON_KEYS
        .iter()
        .copied()
        .chain(["threads", "out", "cov-sets", "cov-iters", "hot-frac"])
        .collect();
    let args = match Args::parse(&keys) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let common = CommonArgs::resolve(&args);
    let threads: usize = args.get_or("threads", 1usize).max(1);
    let out = args.get("out").unwrap_or("BENCH_feed.json").to_string();
    let cov_sets: usize = args.get_or("cov-sets", 400usize);
    let cov_iters: u32 = args.get_or("cov-iters", 5u32);
    let hot_frac: u32 = args.get_or("hot-frac", 0u32).min(100);

    let dataset = common.datasets[0];
    let stream = common.generate(dataset);
    let params = &common.params;

    let mut report = FeedBenchReport::new();
    report.simd = cfg!(feature = "simd");

    // Framework feed runs: sequential always, plus the pool when asked.
    let mut thread_counts = vec![1usize];
    if threads > 1 {
        thread_counts.push(threads);
    }
    for kind in [FrameworkKind::Sic, FrameworkKind::Ic] {
        for &t in &thread_counts {
            let config = params.sim_config().with_threads(t);
            let mut engine = SimEngine::new(config, kind);
            let run = engine.run_stream(&stream);
            let name = format!(
                "{}_{}_t{}",
                kind.name().to_ascii_lowercase(),
                dataset.name().to_ascii_lowercase(),
                t
            );
            report.runs.push(
                FeedRun::from_report(name, kind.name(), t, &run)
                    .with_pool_stats(engine.pool_stats()),
            );
        }
    }

    // Hot-key skew runs: the same stream with a fraction of the actions
    // concentrated on a few users, replayed at the full thread count so
    // the adaptive placement has shards to migrate between.
    if hot_frac > 0 && threads > 1 {
        let hot = hotify(&stream, hot_frac);
        for kind in [FrameworkKind::Sic, FrameworkKind::Ic] {
            let config = params.sim_config().with_threads(threads);
            let mut engine = SimEngine::new(config, kind);
            let run = engine.run_stream(&hot);
            let name = format!(
                "{}_{}_hot{}_t{}",
                kind.name().to_ascii_lowercase(),
                dataset.name().to_ascii_lowercase(),
                hot_frac,
                threads
            );
            report.runs.push(
                FeedRun::from_report(name, kind.name(), threads, &run)
                    .with_pool_stats(engine.pool_stats()),
            );
        }
    }

    if matches_baseline_workload(&common, threads) {
        for &(name, mean) in PR6_BASELINE {
            report.baselines.push(BaselineSample {
                name: name.into(),
                feed_nanos_per_slide_mean: mean,
                source: PR6_BASELINE_SOURCE.into(),
            });
        }
    }

    // coverage_ops: bitmap vs the retained hash-set baseline on the shared
    // workload (identical op sequence; see rtim_bench::covbench).
    let sets = coverage_workload(cov_sets, 5_000, params.seed);
    let (bitmap_ns, bitmap_ops) = time_pass(cov_iters, || bitmap_pass(&sets));
    let (hash_ns, hash_ops) = time_pass(cov_iters, || hashset_pass(&sets));
    report.coverage_ops.push(CoverageOpsSample {
        op: "mixed_marginal_absorb".into(),
        implementation: "bitmap".into(),
        ns_per_op: bitmap_ns,
        ops: bitmap_ops,
    });
    report.coverage_ops.push(CoverageOpsSample {
        op: "mixed_marginal_absorb".into(),
        implementation: "hashset".into(),
        ns_per_op: hash_ns,
        ops: hash_ops,
    });

    // trace_overhead: the same stream through the pipeline hot path with
    // tracing disabled and again at 1-in-64 sampling.  The disabled leg
    // runs first so the traced leg cannot borrow its cache warmth.
    let batch = params.slide;
    let disabled = traced_feed_nanos(params.sim_config(), &stream, batch, None);
    let sampled = traced_feed_nanos(
        params.sim_config(),
        &stream,
        batch,
        Some(TraceConfig::sampled(TRACE_SAMPLE, 50)),
    );
    report.trace_overhead = Some(TraceOverheadSample {
        sample: TRACE_SAMPLE,
        actions: stream.len() as u64,
        feed_nanos_disabled: disabled,
        feed_nanos_sampled: sampled,
        overhead_ratio: if disabled > 0 {
            sampled as f64 / disabled as f64
        } else {
            0.0
        },
    });

    if let Err(e) = report.write(&out) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }

    for run in &report.runs {
        let vs = report
            .speedup_vs_baseline(&run.name)
            .map(|s| format!("  {s:.2}x vs baseline"))
            .unwrap_or_default();
        println!(
            "{:>20}  slides {:>5}  feed/slide {:>12.0} ns  {:>12.0} actions/s  migrations {:>3}{}",
            run.name,
            run.slides,
            run.feed_nanos_per_slide_mean,
            run.elements_per_sec,
            run.shard_migrations,
            vs
        );
    }
    println!(
        "coverage_ops: bitmap {bitmap_ns:.1} ns/op, hashset {hash_ns:.1} ns/op, speedup {}",
        report
            .bitmap_speedup()
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "n/a".into())
    );
    if let Some(t) = &report.trace_overhead {
        println!(
            "trace_overhead: 1-in-{} sampling {:.3}x of disabled ({} vs {} feed ns)",
            t.sample, t.overhead_ratio, t.feed_nanos_sampled, t.feed_nanos_disabled
        );
    }
    println!("wrote {out}");
}
