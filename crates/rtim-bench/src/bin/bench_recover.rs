//! Emits the machine-readable recovery-performance artifact
//! `BENCH_recover.json` (schema `rtim-bench-recover/v2`).
//!
//! For each framework × pool-thread × rotation configuration the harness
//! lives one full server life around the real recovery machinery:
//!
//! 1. journal a generated trace batch by batch — split across 1 or 4
//!    rotated segments — while warming an engine on its first ~90%, then
//!    time a snapshot (capture + atomic write);
//! 2. keep feeding the uninterrupted engine to the end (the reference
//!    answer), with the post-snapshot tail in its own segment, exactly
//!    like a live server that rotates at each snapshot;
//! 3. cold-start twice from the same directory through
//!    [`rtim_core::recover_engine`] — once with the snapshot
//!    (journal-tail replay only) and once without it (full replay across
//!    every segment) — timing each to its first answered query;
//! 4. record snapshot size vs. the journal and live state, the cold-start
//!    speedup, and whether all three answers were bit-identical.
//!
//! A final stall probe pushes the trace through the live pipeline twice —
//! background snapshots off, then on a cadence of ~3 snapshots per run —
//! and records the caller-side per-slide round-trip p99 of each: snapshot
//! encoding and file I/O run on a dedicated writer thread, so the two
//! percentiles should be close (capture still runs on the engine thread
//! and shows up at p100, but is too rare to move p99 at realistic
//! cadences).
//!
//! ```text
//! cargo run --release -p rtim-bench --bin bench_recover -- \
//!     --dataset syn-n --actions 100000 --users 5000 --window 20000 \
//!     --slide 1000 --threads 4 --out BENCH_recover.json
//! ```

use rtim_bench::cli::Args;
use rtim_bench::{CommonArgs, RecoverBenchReport, RecoverRun, StallProbe, COMMON_KEYS};
use rtim_core::{
    recover_engine, write_snapshot_atomic, EngineHandle, FrameworkKind, HandleOptions,
    PersistOptions, SimConfig, SimEngine, Solution, SNAPSHOT_FILE,
};
use rtim_stream::{segment_file_name, Action, JournalWriter};
use std::path::Path;
use std::time::Instant;

fn main() {
    let keys: Vec<&str> = COMMON_KEYS
        .iter()
        .copied()
        .chain(["threads", "batch", "out"])
        .collect();
    let args = match Args::parse(&keys) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let common = CommonArgs::resolve(&args);
    let threads: usize = args.get_or("threads", 1usize).max(1);
    let batch: usize = args.get_or("batch", 0usize);
    let out = args.get("out").unwrap_or("BENCH_recover.json").to_string();

    let params = &common.params;
    // L-aligned batches keep the recovered slide pattern identical to the
    // uninterrupted engine's (the documented determinism regime).
    let batch = if batch == 0 { 5 * params.slide } else { batch };
    let dataset = common.datasets[0];
    let stream = common.generate(dataset);
    let actions = stream.actions();

    // Snapshot point: ~90% of the trace, rounded down to a whole batch.
    let cut = (actions.len() * 9 / 10) / batch * batch;
    if cut == 0 {
        eprintln!("trace too small: need at least one full batch before the snapshot point");
        std::process::exit(2);
    }

    let dir = std::env::temp_dir().join(format!("rtim-bench-recover-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let mut report = RecoverBenchReport::new();
    let mut thread_counts = vec![1usize];
    if threads > 1 {
        thread_counts.push(threads);
    }

    for kind in [FrameworkKind::Sic, FrameworkKind::Ic] {
        for &t in &thread_counts {
            for pre_cut_segments in [1usize, 4] {
                let config = params.sim_config().with_threads(t);
                let run = measure_run(
                    &dir,
                    config,
                    kind,
                    t,
                    actions,
                    cut,
                    batch,
                    pre_cut_segments,
                );
                println!(
                    "{:>12}  snap {:>9} B in {:>7.2} ms  {} segs  cold-start snap {:>8.2} ms \
                     vs full {:>8.2} ms ({:>5.2}x)  identical: {}",
                    run.name,
                    run.snapshot_bytes,
                    (run.capture_nanos + run.write_nanos) as f64 / 1e6,
                    run.segments,
                    run.cold_start_snapshot_nanos as f64 / 1e6,
                    run.cold_start_full_nanos as f64 / 1e6,
                    run.speedup,
                    run.identical,
                );
                report.runs.push(run);
            }
        }
    }

    // Stall probe at each thread count, SIC (the heavier framework).
    // One-slide laps: "slide-time p99" is the claim the writer thread has
    // to defend.
    for &t in &thread_counts {
        let config = params.sim_config().with_threads(t);
        let probe = measure_stall(&dir, config, t, actions, params.slide);
        println!(
            "{:>12}  stall p99 {:>8.2} ms baseline vs {:>8.2} ms with snapshots \
             ({:.3}x, {} samples)",
            probe.name,
            probe.baseline_p99_nanos as f64 / 1e6,
            probe.snapshot_p99_nanos as f64 / 1e6,
            probe.ratio,
            probe.samples,
        );
        report.stalls.push(probe);
    }
    std::fs::remove_dir_all(&dir).ok();

    if report.runs.iter().any(|r| !r.identical) {
        eprintln!("DIVERGENCE: a recovered engine did not answer bit-identically");
        report.write(&out).ok();
        std::process::exit(1);
    }
    if let Err(e) = report.write(&out) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}

/// One recovery life: journal `actions[..cut]` across `pre_cut_segments`
/// rotated segment files, snapshot at the cut (timed), journal the tail
/// into its own segment, then cold-start with and without the snapshot.
#[allow(clippy::too_many_arguments)]
fn measure_run(
    root: &Path,
    config: SimConfig,
    kind: FrameworkKind,
    threads: usize,
    actions: &[Action],
    cut: usize,
    batch: usize,
    pre_cut_segments: usize,
) -> RecoverRun {
    let name = format!(
        "{}_t{threads}_s{pre_cut_segments}",
        kind.name().to_ascii_lowercase()
    );
    let run_dir = root.join(&name);
    std::fs::remove_dir_all(&run_dir).ok();
    std::fs::create_dir_all(&run_dir).expect("create run dir");

    // Life 1: journal every batch, rotating so the pre-cut stream spans
    // `pre_cut_segments` files, while warming the uninterrupted engine.
    let pre_batches: Vec<&[Action]> = actions[..cut].chunks(batch).collect();
    let per_segment = pre_batches.len().div_ceil(pre_cut_segments);
    let mut engine = SimEngine::new(config, kind);
    for (seg, seg_batches) in pre_batches.chunks(per_segment.max(1)).enumerate() {
        let path = run_dir.join(segment_file_name(seg as u64 + 1));
        let mut journal = JournalWriter::create(&path).expect("create segment");
        for chunk in seg_batches {
            journal.append_batch(chunk).expect("journal append");
            engine.ingest_batch(chunk);
        }
    }

    // Snapshot: capture, then encode + atomic write.
    let snapshot_path = run_dir.join(SNAPSHOT_FILE);
    let window_facts = engine.window_influence_sets().total_facts() as u64;
    let started = Instant::now();
    let snapshot = engine.snapshot().expect("built-in engines snapshot");
    let capture_nanos = started.elapsed().as_nanos() as u64;
    let checkpoints = snapshot.framework.set.checkpoints.len() as u64;
    let watermark = snapshot.watermark;
    let started = Instant::now();
    let snapshot_bytes =
        write_snapshot_atomic(&snapshot_path, &snapshot).expect("write snapshot");
    let write_nanos = started.elapsed().as_nanos() as u64;

    // Finish the uninterrupted life; a live server rotates at the
    // snapshot, so the tail goes to a fresh segment.
    let tail_path = run_dir.join(segment_file_name(pre_cut_segments as u64 + 1));
    let mut journal = JournalWriter::create(&tail_path).expect("create tail segment");
    for chunk in actions[cut..].chunks(batch) {
        journal.append_batch(chunk).expect("journal append");
        engine.ingest_batch(chunk);
    }
    drop(journal);
    let reference = engine.query();

    let mut journal_bytes = 0u64;
    let mut segments = 0u64;
    for entry in std::fs::read_dir(&run_dir).expect("list run dir") {
        let entry = entry.expect("dir entry");
        if entry.file_name().to_string_lossy().ends_with(".rtaj") {
            segments += 1;
            journal_bytes += entry.metadata().map_or(0, |m| m.len());
        }
    }

    // Cold start A: snapshot + journal-tail replay, to first query.
    let started = Instant::now();
    let outcome = recover_engine(config, kind, &run_dir);
    let with_snapshot = outcome.engine.query();
    let cold_start_snapshot_nanos = started.elapsed().as_nanos() as u64;
    assert!(outcome.used_snapshot, "snapshot was not used");

    // Cold start B: full replay across every segment (snapshot removed).
    std::fs::remove_file(&snapshot_path).expect("drop snapshot");
    let started = Instant::now();
    let outcome = recover_engine(config, kind, &run_dir);
    let full_replay = outcome.engine.query();
    let cold_start_full_nanos = started.elapsed().as_nanos() as u64;
    assert!(!outcome.used_snapshot);

    let identical =
        bit_identical(&with_snapshot, &reference) && bit_identical(&full_replay, &reference);
    let speedup = if cold_start_snapshot_nanos == 0 {
        0.0
    } else {
        cold_start_full_nanos as f64 / cold_start_snapshot_nanos as f64
    };
    std::fs::remove_dir_all(&run_dir).ok();

    RecoverRun {
        name,
        framework: kind.name().into(),
        threads,
        actions: actions.len() as u64,
        snapshot_watermark: watermark,
        capture_nanos,
        write_nanos,
        snapshot_bytes,
        journal_bytes,
        segments,
        window_facts,
        checkpoints,
        cold_start_snapshot_nanos,
        cold_start_full_nanos,
        speedup,
        identical,
    }
}

/// Pushes the trace through the live pipeline twice — background
/// snapshots off, then on a cadence that fires ~3 snapshots over the run
/// — and returns the caller-side per-batch round-trip p99 of each side.
/// Snapshot capture runs on the engine thread, so a lap that dispatches a
/// snapshot pays for it; at any realistic cadence those laps are rarer
/// than 1-in-100 and p99 stays flat, which is exactly the property this
/// probe guards.
fn measure_stall(
    root: &Path,
    config: SimConfig,
    threads: usize,
    actions: &[Action],
    batch: usize,
) -> StallProbe {
    const REPS: usize = 3;
    let name = format!("sic_t{threads}");
    let slides = (actions.len() / config.slide.max(1)) as u64;
    let snapshot_cadence = (slides / 3).max(1);
    let mut p99s = [u64::MAX; 2];
    let mut samples = 0u64;
    // Best-of-3 per side: the p99 tail is where scheduler noise lives, and
    // the minimum over repetitions is the standard way to see through it.
    for rep in 0..REPS {
        for (side, cadence) in [(0usize, 0u64), (1, snapshot_cadence)] {
            let probe_dir = root.join(format!("stall_{name}_{side}_{rep}"));
            std::fs::remove_dir_all(&probe_dir).ok();
            let persist =
                PersistOptions::new(&probe_dir).with_snapshot_every_slides(cadence);
            let handle = EngineHandle::spawn(
                config,
                FrameworkKind::Sic,
                HandleOptions::default().with_persistence(persist),
            );
            let mut sender = handle.sender();
            let mut laps = Vec::with_capacity(actions.len() / batch + 1);
            for chunk in actions.chunks(batch) {
                let started = Instant::now();
                sender.ingest(chunk.to_vec()).expect("ingest");
                // The stats round trip fences the batch: the engine has
                // finished its slides (and dispatched any snapshot) when
                // the reply arrives, so the lap covers real slide time.
                let _ = sender.stats().expect("stats");
                laps.push(started.elapsed().as_nanos() as u64);
            }
            handle.shutdown();
            std::fs::remove_dir_all(&probe_dir).ok();
            laps.sort_unstable();
            samples = laps.len() as u64;
            let idx = (laps.len().saturating_sub(1)) * 99 / 100;
            p99s[side] = p99s[side].min(laps.get(idx).copied().unwrap_or(0));
        }
    }
    let ratio = if p99s[0] == 0 {
        0.0
    } else {
        p99s[1] as f64 / p99s[0] as f64
    };
    StallProbe {
        name,
        samples,
        snapshot_cadence_slides: snapshot_cadence,
        baseline_p99_nanos: p99s[0],
        snapshot_p99_nanos: p99s[1],
        ratio,
    }
}

/// Bit-level solution equality (seed order and value bits).
fn bit_identical(a: &Solution, b: &Solution) -> bool {
    a.seeds == b.seeds && a.value.to_bits() == b.value.to_bits()
}
