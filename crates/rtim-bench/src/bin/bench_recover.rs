//! Emits the machine-readable recovery-performance artifact
//! `BENCH_recover.json` (schema `rtim-bench-recover/v1`).
//!
//! For each framework × pool-thread configuration the harness lives one
//! full server life around the real recovery machinery:
//!
//! 1. journal a generated trace batch by batch while warming an engine on
//!    its first ~90%, then time a snapshot (capture + atomic write);
//! 2. keep feeding the uninterrupted engine to the end (the reference
//!    answer);
//! 3. cold-start twice from the same files through
//!    [`rtim_core::recover_engine`] — once with the snapshot (journal-tail
//!    replay only) and once without it (full-journal replay) — timing each
//!    to its first answered query;
//! 4. record snapshot size vs. the journal and live state, the cold-start
//!    speedup, and whether all three answers were bit-identical.
//!
//! ```text
//! cargo run --release -p rtim-bench --bin bench_recover -- \
//!     --dataset syn-n --actions 100000 --users 5000 --window 20000 \
//!     --slide 1000 --threads 4 --out BENCH_recover.json
//! ```

use rtim_bench::cli::Args;
use rtim_bench::{CommonArgs, RecoverBenchReport, RecoverRun, COMMON_KEYS};
use rtim_core::{
    recover_engine, write_snapshot_atomic, FrameworkKind, SimEngine, Solution,
};
use rtim_stream::persist::journal::JournalWriter;
use std::time::Instant;

fn main() {
    let keys: Vec<&str> = COMMON_KEYS
        .iter()
        .copied()
        .chain(["threads", "batch", "out"])
        .collect();
    let args = match Args::parse(&keys) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let common = CommonArgs::resolve(&args);
    let threads: usize = args.get_or("threads", 1usize).max(1);
    let batch: usize = args.get_or("batch", 0usize);
    let out = args.get("out").unwrap_or("BENCH_recover.json").to_string();

    let params = &common.params;
    // L-aligned batches keep the recovered slide pattern identical to the
    // uninterrupted engine's (the documented determinism regime).
    let batch = if batch == 0 { 5 * params.slide } else { batch };
    let dataset = common.datasets[0];
    let stream = common.generate(dataset);
    let actions = stream.actions();

    // Snapshot point: ~90% of the trace, rounded down to a whole batch.
    let cut = (actions.len() * 9 / 10) / batch * batch;
    if cut == 0 {
        eprintln!("trace too small: need at least one full batch before the snapshot point");
        std::process::exit(2);
    }

    let dir = std::env::temp_dir().join(format!("rtim-bench-recover-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let mut report = RecoverBenchReport::new();
    let mut thread_counts = vec![1usize];
    if threads > 1 {
        thread_counts.push(threads);
    }

    for kind in [FrameworkKind::Sic, FrameworkKind::Ic] {
        for &t in &thread_counts {
            let config = params.sim_config().with_threads(t);
            let snapshot_path = dir.join(format!("{}_{t}.rtss", kind.name()));
            let journal_path = dir.join(format!("{}_{t}.rtaj", kind.name()));

            // Life 1: journal every batch, warm the engine to the cut.
            let mut journal = JournalWriter::create(&journal_path).expect("create journal");
            let mut engine = SimEngine::new(config, kind);
            for chunk in actions[..cut].chunks(batch) {
                journal.append_batch(chunk).expect("journal append");
                engine.ingest_batch(chunk);
            }

            // Snapshot: capture, then encode + atomic write.
            let window_facts = engine.window_influence_sets().total_facts() as u64;
            let started = Instant::now();
            let snapshot = engine.snapshot().expect("built-in engines snapshot");
            let capture_nanos = started.elapsed().as_nanos() as u64;
            let checkpoints = snapshot.framework.set.checkpoints.len() as u64;
            let watermark = snapshot.watermark;
            let started = Instant::now();
            let snapshot_bytes =
                write_snapshot_atomic(&snapshot_path, &snapshot).expect("write snapshot");
            let write_nanos = started.elapsed().as_nanos() as u64;

            // Finish the uninterrupted life (journal stays ahead of the
            // snapshot, exactly like a live server).
            for chunk in actions[cut..].chunks(batch) {
                journal.append_batch(chunk).expect("journal append");
                engine.ingest_batch(chunk);
            }
            drop(journal);
            let reference = engine.query();
            let journal_bytes = std::fs::metadata(&journal_path).map_or(0, |m| m.len());

            // Cold start A: snapshot + journal-tail replay, to first query.
            let started = Instant::now();
            let outcome = recover_engine(config, kind, &snapshot_path, &journal_path);
            let with_snapshot = outcome.engine.query();
            let cold_start_snapshot_nanos = started.elapsed().as_nanos() as u64;
            assert!(outcome.used_snapshot, "snapshot was not used");

            // Cold start B: full-journal replay (no snapshot file).
            let started = Instant::now();
            let outcome = recover_engine(
                config,
                kind,
                dir.join("no-such-snapshot.rtss"),
                &journal_path,
            );
            let full_replay = outcome.engine.query();
            let cold_start_full_nanos = started.elapsed().as_nanos() as u64;

            let identical = bit_identical(&with_snapshot, &reference)
                && bit_identical(&full_replay, &reference);
            let speedup = if cold_start_snapshot_nanos == 0 {
                0.0
            } else {
                cold_start_full_nanos as f64 / cold_start_snapshot_nanos as f64
            };

            let run = RecoverRun {
                name: format!("{}_t{t}", kind.name().to_ascii_lowercase()),
                framework: kind.name().into(),
                threads: t,
                actions: actions.len() as u64,
                snapshot_watermark: watermark,
                capture_nanos,
                write_nanos,
                snapshot_bytes,
                journal_bytes,
                window_facts,
                checkpoints,
                cold_start_snapshot_nanos,
                cold_start_full_nanos,
                speedup,
                identical,
            };
            println!(
                "{:>8}  snap {:>9} B in {:>7.2} ms  cold-start snap {:>8.2} ms vs full {:>8.2} ms \
                 ({:>5.2}x)  identical: {}",
                run.name,
                run.snapshot_bytes,
                (run.capture_nanos + run.write_nanos) as f64 / 1e6,
                run.cold_start_snapshot_nanos as f64 / 1e6,
                run.cold_start_full_nanos as f64 / 1e6,
                run.speedup,
                run.identical,
            );
            report.runs.push(run);
        }
    }
    std::fs::remove_dir_all(&dir).ok();

    if report.runs.iter().any(|r| !r.identical) {
        eprintln!("DIVERGENCE: a recovered engine did not answer bit-identically");
        report.write(&out).ok();
        std::process::exit(1);
    }
    if let Err(e) = report.write(&out) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}

/// Bit-level solution equality (seed order and value bits).
fn bit_identical(a: &Solution, b: &Solution) -> bool {
    a.seeds == b.seeds && a.value.to_bits() == b.value.to_bits()
}
