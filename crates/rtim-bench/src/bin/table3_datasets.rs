//! Table 3 — dataset statistics.
//!
//! Generates the four evaluation datasets (Reddit-like, Twitter-like,
//! SYN-O, SYN-N) at the requested scale and prints their statistics in the
//! format of Table 3 of the paper: users, actions, average response
//! distance and average cascade depth.
//!
//! ```text
//! cargo run --release -p rtim-bench --bin table3_datasets -- --scale small
//! ```

use rtim_bench::cli::Args;
use rtim_bench::{format_table, CommonArgs, COMMON_KEYS};
use rtim_datagen::dataset_statistics;

fn main() {
    let args = match Args::parse(COMMON_KEYS) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let common = CommonArgs::resolve(&args);

    let mut rows = Vec::new();
    for dataset in &common.datasets {
        let stream = common.generate(*dataset);
        let stats = dataset_statistics(dataset.name(), &stream);
        rows.push(vec![
            stats.name.clone(),
            stats.users.to_string(),
            stats.actions.to_string(),
            format!("{:.1}", stats.avg_response_distance),
            format!("{:.2}", stats.avg_depth),
            format!("{:.2}", stats.root_fraction),
        ]);
    }
    println!(
        "{}",
        format_table(
            "Table 3: statistics on datasets (generated at the requested scale)",
            &["Dataset", "Users", "Actions", "Resp. dist.", "Avg. depth", "Root frac."],
            &rows,
        )
    );
    println!(
        "Paper reference (full scale): Reddit 2,628,904 users / 48,104,875 actions / 404,714.9 / 4.58;\n\
         Twitter 2,881,154 / 9,724,908 / 294,609.4 / 1.87; SYN 1–5M users / 10,000,000 actions / 500,000 or 5,000 / ~2.5"
    );
}
