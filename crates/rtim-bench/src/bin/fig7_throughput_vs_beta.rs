//! Figure 7 — throughput of IC and SIC with varying β.
//!
//! Expected shape: both improve as β grows (fewer SieveStreaming instances
//! per checkpoint); SIC is consistently above IC with the gap widening in β
//! (fewer checkpoints).
//!
//! ```text
//! cargo run --release -p rtim-bench --bin fig7_throughput_vs_beta
//! ```

use rtim_bench::cli::Args;
use rtim_bench::{format_series, BetaSweep, CommonArgs, COMMON_KEYS};

fn main() {
    let args = match Args::parse(COMMON_KEYS) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let common = CommonArgs::resolve(&args);
    let betas = [0.1, 0.2, 0.3, 0.4, 0.5];

    for dataset in &common.datasets {
        let stream = common.generate(*dataset);
        let sweep = BetaSweep::run(&stream, &common.params, &betas);
        println!(
            "{}",
            format_series(
                &format!(
                    "Figure 7 ({}): throughput (actions/s) vs beta (k={}, N={}, L={})",
                    dataset.name(),
                    common.params.k,
                    common.params.window,
                    common.params.slide
                ),
                "beta",
                &sweep.x_labels(),
                &sweep.series(|r| r.throughput),
            )
        );
    }
}
