//! Figure 12 — throughput of all methods with varying number of users |U|
//! on the two synthetic datasets.
//!
//! The swept |U| values are the Table-4 grid scaled by the requested scale
//! (paper: 1M–5M users, 10M actions).  Expected shape: with N fixed, larger
//! |U| makes the per-window influence graph sparser, so SIC/IC/UBI speed up
//! while Greedy/IMM (whose cost scales with |U| / graph size) slow down or
//! stay flat; SIC remains on top throughout.
//!
//! ```text
//! cargo run --release -p rtim-bench --bin fig12_throughput_vs_users
//! ```

use rtim_bench::cli::Args;
use rtim_bench::{format_series, CommonArgs, MethodKind, MethodSweep, ParamGrid, COMMON_KEYS};
use rtim_core::{FrameworkKind, SimEngine};
use rtim_datagen::{DatasetConfig, DatasetKind};

fn main() {
    let args = match Args::parse(COMMON_KEYS) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let mut common = CommonArgs::resolve(&args);
    if common.budget.max_slides == 0 {
        common.budget.max_slides = 8;
    }
    let grid = ParamGrid::scaled(common.params.scale.fraction());
    let xs: Vec<String> = grid.users.iter().map(|u| u.to_string()).collect();

    // Only the synthetic datasets support sweeping |U| (as in the paper).
    let datasets: Vec<DatasetKind> = common
        .datasets
        .iter()
        .copied()
        .filter(|d| matches!(d, DatasetKind::SynO | DatasetKind::SynN))
        .collect();
    let datasets = if datasets.is_empty() {
        vec![DatasetKind::SynO, DatasetKind::SynN]
    } else {
        datasets
    };

    for dataset in datasets {
        let params = common.params;
        let scale = params.scale;
        let actions_override = common.actions;
        let sweep = MethodSweep::run(
            &MethodKind::all(),
            &xs,
            common.budget,
            |xi| {
                let mut cfg = DatasetConfig::new(dataset, scale).with_users(grid.users[xi]);
                if let Some(a) = actions_override {
                    cfg = cfg.with_actions(a);
                }
                cfg.generate()
            },
            |_| params,
        );
        println!(
            "{}",
            format_series(
                &format!(
                    "Figure 12 ({}): throughput (actions/s) vs number of users (k={}, N={}, L={})",
                    dataset.name(),
                    params.k,
                    params.window,
                    params.slide
                ),
                "|U|",
                &xs,
                &sweep.throughput_series(),
            )
        );
        // Latency split at the default |U|, straight from the engine's own
        // per-slide instrumentation (feed vs. query time).
        let probe_stream = common.generate(dataset);
        let report =
            SimEngine::new(params.sim_config(), FrameworkKind::Sic).run_stream(&probe_stream);
        println!(
            "SIC at default |U|: feed {:.1} ms, query {:.1} ms over {} slides ({:.0} actions/s)\n",
            report.feed_nanos() as f64 / 1e6,
            report.query_nanos() as f64 / 1e6,
            report.slides.len(),
            report.throughput(),
        );
    }
}
