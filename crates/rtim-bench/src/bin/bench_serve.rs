//! Emits the machine-readable serving-performance artifact
//! `BENCH_serve.json` (schema `rtim-bench-serve/v1`).
//!
//! Starts an in-process `rtim-server` on an ephemeral loopback port, drives
//! it with N concurrent protocol clients (each streaming its own generated
//! trace in framed batches, with one observer issuing periodic `QUERY`s),
//! then drains and records the sustained end-to-end actions/sec alongside
//! the engine-side counters.
//!
//! ```text
//! cargo run --release -p rtim-bench --bin bench_serve -- \
//!     --dataset syn-n --actions 20000 --users 2000 --window 2000 --slide 100 \
//!     --clients 4 --threads 2 --batch 500 --capacity 32 --out BENCH_serve.json
//! ```

use rtim_bench::cli::Args;
use rtim_bench::{CommonArgs, ServeBenchReport, ServeRun, COMMON_KEYS};
use rtim_core::FrameworkKind;
use rtim_datagen::DatasetConfig;
use rtim_server::{RtimClient, RtimServer, ServerConfig};
use std::time::Instant;

fn main() {
    let keys: Vec<&str> = COMMON_KEYS
        .iter()
        .copied()
        .chain(["threads", "clients", "batch", "capacity", "out"])
        .collect();
    let args = match Args::parse(&keys) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let common = CommonArgs::resolve(&args);
    let threads: usize = args.get_or("threads", 1usize).max(1);
    let clients: usize = args.get_or("clients", 4usize).max(1);
    let batch: usize = args.get_or("batch", 0usize);
    let capacity: usize = args.get_or("capacity", 32usize).max(1);
    let out = args.get("out").unwrap_or("BENCH_serve.json").to_string();

    let params = &common.params;
    // Default batch: 5 slides per frame, aligned with L so the server's
    // slide cuts match an offline replay.
    let batch = if batch == 0 { 5 * params.slide } else { batch };
    let dataset = common.datasets[0];

    let mut report = ServeBenchReport::new();
    let mut thread_counts = vec![1usize];
    if threads > 1 {
        thread_counts.push(threads);
    }

    for kind in [FrameworkKind::Sic, FrameworkKind::Ic] {
        for &t in &thread_counts {
            let config = params.sim_config().with_threads(t);
            let server = RtimServer::bind(
                "127.0.0.1:0",
                ServerConfig::new(config, kind).with_queue_capacity(capacity),
            )
            .expect("bind loopback server");
            let addr = server.local_addr();

            // Generate every client's trace BEFORE starting the clock —
            // the artifact measures the serving pipeline, not datagen.
            // Each client streams its own trace (its own id space); seeds
            // differ so the traces differ.
            let traces: Vec<_> = (0..clients)
                .map(|c| {
                    let mut cfg = DatasetConfig::new(dataset, params.scale);
                    if let Some(a) = common.actions {
                        cfg = cfg.with_actions(a);
                    }
                    if let Some(u) = common.users {
                        cfg = cfg.with_users(u);
                    }
                    cfg.with_seed(params.seed + 31 * c as u64).generate()
                })
                .collect();

            let started = Instant::now();
            let workers: Vec<_> = traces
                .into_iter()
                .enumerate()
                .map(|(c, trace)| {
                    std::thread::spawn(move || {
                        let mut client = RtimClient::connect(addr).expect("connect");
                        let mut busy = 0u64;
                        let mut queries = 0u64;
                        for (i, chunk) in trace.actions().chunks(batch).enumerate() {
                            busy += client.ingest_blocking(chunk).expect("ingest");
                            // The first client doubles as the observer.
                            if c == 0 && i % 8 == 7 {
                                let _ = client.query().expect("query");
                                queries += 1;
                            }
                        }
                        (busy, queries)
                    })
                })
                .collect();
            let mut busy_retries = 0u64;
            let mut queries = 0u64;
            for worker in workers {
                let (busy, q) = worker.join().expect("client thread panicked");
                busy_retries += busy;
                queries += q;
            }
            let server_report = server.shutdown();
            let wall_nanos = started.elapsed().as_nanos() as u64;

            let name = format!(
                "{}_c{}_t{}",
                kind.name().to_ascii_lowercase(),
                clients,
                t
            );
            let run = ServeRun::new(
                name,
                kind.name(),
                t,
                clients,
                batch,
                capacity,
                &server_report.stats,
                wall_nanos,
                busy_retries,
                queries,
            );
            println!(
                "{:>12}  {:>9} actions  {:>12.0} actions/s  max depth {:>3}  busy {:>6}",
                run.name, run.actions, run.actions_per_sec, run.max_queue_depth, run.busy_retries
            );
            report.runs.push(run);
        }
    }

    if let Err(e) = report.write(&out) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}
