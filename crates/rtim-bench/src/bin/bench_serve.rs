//! Emits the machine-readable serving-performance artifact
//! `BENCH_serve.json` (schema `rtim-bench-serve/v4`).
//!
//! Starts an in-process `rtim-server` on an ephemeral loopback port and
//! measures two things:
//!
//! 1. **Baseline grid** (carried over from v1): framework × pool threads
//!    with `--clients` concurrent full-trace clients in lockstep
//!    (window 1), one doubling as a `QUERY` observer.
//! 2. **Connection-scaling series** (new in v2): one shared trace split
//!    across `--connections` sockets (default 1, 8, 64, 256, 1024), each
//!    streamed with `--in-flight` pipelined `INGEST` frames (default 1
//!    and 16) through the readiness-driven event-loop front-end.  A small
//!    pool of driver threads multiplexes the sockets so the client side
//!    stays out of the way on small machines.  One thread-per-connection
//!    run rides along as a differential point while that front-end
//!    remains selectable.
//!
//! Every scaling run enables the `/metrics` sidecar and polls it from a
//! concurrent scraper thread for the whole serving phase (new in v3):
//! each response must be well-formed Prometheus text carrying the feed /
//! query / queue-depth summaries, and the completed scrape count lands in
//! the artifact — scrape-under-load is part of the measured scenario, not
//! a separate smoke.  Every scaling run also enables request tracing at
//! 1-in-64 sampling with a 50 ms slow-op threshold (new in v4) and takes
//! one wire `TRACE` dump after the serving phase; the per-stage span
//! totals land in the artifact as `stage_*_nanos` alongside
//! `trace_events` / `slow_ops`.
//!
//! ```text
//! cargo run --release -p rtim-bench --bin bench_serve -- \
//!     --dataset syn-n --actions 204800 --users 2000 --window 2000 --slide 100 \
//!     --clients 4 --threads 2 --batch 500 --capacity 32 \
//!     --connections 1,8,64,256,1024 --in-flight 1,16 --out BENCH_serve.json
//! ```

use rtim_bench::cli::Args;
use rtim_bench::{CommonArgs, ServeBenchReport, ServeSetup, COMMON_KEYS};
use rtim_core::FrameworkKind;
use rtim_datagen::DatasetConfig;
use rtim_server::protocol::encode_frame;
use rtim_server::{Frame, FrontEnd, RtimClient, RtimServer, ServerConfig};
use rtim_stream::Action;
use std::collections::VecDeque;
use std::io::Write as _;
use std::time::Instant;

/// Driver threads multiplexing the scaling-series sockets.
const DRIVERS: usize = 4;

fn parse_list(args: &Args, key: &str, default: &[usize]) -> Vec<usize> {
    match args.get(key) {
        None => default.to_vec(),
        Some(raw) => {
            let list: Vec<usize> = raw
                .split(',')
                .filter(|s| !s.is_empty())
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&v| v > 0)
                .collect();
            if list.is_empty() {
                default.to_vec()
            } else {
                list
            }
        }
    }
}

fn main() {
    let keys: Vec<&str> = COMMON_KEYS
        .iter()
        .copied()
        .chain([
            "threads",
            "clients",
            "batch",
            "capacity",
            "connections",
            "in-flight",
            "out",
        ])
        .collect();
    let args = match Args::parse(&keys) {
        Ok(a) => a,
        Err(usage) => {
            eprintln!("{usage}");
            std::process::exit(2);
        }
    };
    let common = CommonArgs::resolve(&args);
    let threads: usize = args.get_or("threads", 1usize).max(1);
    let clients: usize = args.get_or("clients", 4usize).max(1);
    let batch: usize = args.get_or("batch", 0usize);
    let capacity: usize = args.get_or("capacity", 32usize).max(1);
    let connection_counts = parse_list(&args, "connections", &[1, 8, 64, 256, 1024]);
    let windows = parse_list(&args, "in-flight", &[1, 16]);
    let out = args.get("out").unwrap_or("BENCH_serve.json").to_string();

    let params = &common.params;
    // Default batch: 5 slides per frame, aligned with L so the server's
    // slide cuts match an offline replay.
    let batch = if batch == 0 { 5 * params.slide } else { batch };
    let dataset = common.datasets[0];

    let mut report = ServeBenchReport::new();
    let mut thread_counts = vec![1usize];
    if threads > 1 {
        thread_counts.push(threads);
    }

    // ---- baseline grid: framework × pool threads, lockstep clients ----
    for kind in [FrameworkKind::Sic, FrameworkKind::Ic] {
        for &t in &thread_counts {
            let config = params.sim_config().with_threads(t);
            let server = RtimServer::bind(
                "127.0.0.1:0",
                ServerConfig::new(config, kind).with_queue_capacity(capacity),
            )
            .expect("bind loopback server");
            let addr = server.local_addr();

            // Generate every client's trace BEFORE starting the clock —
            // the artifact measures the serving pipeline, not datagen.
            // Each client streams its own trace (its own id space); seeds
            // differ so the traces differ.
            let traces: Vec<_> = (0..clients)
                .map(|c| {
                    let mut cfg = DatasetConfig::new(dataset, params.scale);
                    if let Some(a) = common.actions {
                        cfg = cfg.with_actions(a);
                    }
                    if let Some(u) = common.users {
                        cfg = cfg.with_users(u);
                    }
                    cfg.with_seed(params.seed + 31 * c as u64).generate()
                })
                .collect();

            let started = Instant::now();
            let workers: Vec<_> = traces
                .into_iter()
                .enumerate()
                .map(|(c, trace)| {
                    std::thread::spawn(move || {
                        let mut client = RtimClient::connect(addr).expect("connect");
                        let mut busy = 0u64;
                        let mut queries = 0u64;
                        for (i, chunk) in trace.actions().chunks(batch).enumerate() {
                            busy += client.ingest_blocking(chunk).expect("ingest");
                            // The first client doubles as the observer.
                            if c == 0 && i % 8 == 7 {
                                let _ = client.query().expect("query");
                                queries += 1;
                            }
                        }
                        (busy, queries)
                    })
                })
                .collect();
            let mut busy_retries = 0u64;
            let mut queries = 0u64;
            for worker in workers {
                let (busy, q) = worker.join().expect("client thread panicked");
                busy_retries += busy;
                queries += q;
            }
            let server_report = server.shutdown();
            let wall_nanos = started.elapsed().as_nanos() as u64;

            let setup = ServeSetup {
                name: format!("{}_el_c{}_t{}", kind.name().to_ascii_lowercase(), clients, t),
                framework: kind.name().to_string(),
                front_end: "event-loop".to_string(),
                threads: t,
                connections: clients,
                in_flight: 1,
                batch,
                capacity,
            };
            let run = setup.finish(&server_report.stats, wall_nanos, busy_retries, queries);
            print_run(&run);
            report.runs.push(run);
        }
    }

    // ---- connection-scaling series: shared trace over N sockets ----
    // Smaller frames than the baseline grid: the pipelining win is the
    // round trips it hides, so the axis uses one-slide batches.
    let scale_batch = params.slide.max(1);
    let mut cfg = DatasetConfig::new(dataset, params.scale);
    if let Some(a) = common.actions {
        cfg = cfg.with_actions(a);
    }
    if let Some(u) = common.users {
        cfg = cfg.with_users(u);
    }
    let trace = cfg.with_seed(params.seed).generate();
    let actions = trace.actions();

    // Differential thread-per-connection point: the largest configured
    // count we are still willing to spawn server threads for.
    let threaded_at = connection_counts.iter().copied().filter(|&c| c <= 64).max();

    for &connections in &connection_counts {
        for &window in &windows {
            let run = scaling_run(
                params.sim_config().with_threads(threads),
                FrontEnd::EventLoop { threads: 2 },
                "event-loop",
                threads,
                capacity,
                actions,
                connections,
                window,
                scale_batch,
            );
            print_run(&run);
            report.runs.push(run);
        }
        if Some(connections) == threaded_at {
            let run = scaling_run(
                params.sim_config().with_threads(threads),
                FrontEnd::ThreadPerConnection,
                "threaded",
                threads,
                capacity,
                actions,
                connections,
                1,
                scale_batch,
            );
            print_run(&run);
            report.runs.push(run);
        }
    }

    if let Err(e) = report.write(&out) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}

/// One scaling-series measurement: the trace split across `connections`
/// sockets, each keeping `window` `INGEST` frames in flight, multiplexed
/// by a small pool of driver threads.
#[allow(clippy::too_many_arguments)]
fn scaling_run(
    config: rtim_core::SimConfig,
    front_end: FrontEnd,
    front_end_name: &str,
    threads: usize,
    capacity: usize,
    actions: &[Action],
    connections: usize,
    window: usize,
    batch: usize,
) -> rtim_bench::ServeRun {
    let server = RtimServer::bind(
        "127.0.0.1:0",
        ServerConfig::new(config, FrameworkKind::Sic)
            .with_queue_capacity(capacity)
            .with_front_end(front_end)
            .with_metrics("127.0.0.1:0")
            .with_tracing(rtim_core::TraceConfig::sampled(64, 50)),
    )
    .expect("bind loopback server");
    let addr = server.local_addr();
    let scrape_addr = server.metrics_addr().expect("metrics sidecar enabled");

    // Contiguous slices: ids stay strictly increasing inside every
    // connection's private sender space; cross-slice replies resolve
    // through the server's orphan remapping like any cross-client reply.
    let per_conn = actions.len().div_ceil(connections);
    let slices: Vec<&[Action]> = actions.chunks(per_conn.max(1)).collect();

    // Connect everything before the clock starts; the artifact measures
    // streaming, not connection setup.
    let mut conns: Vec<PipeConn<'_>> = slices
        .iter()
        .map(|slice| PipeConn {
            client: RtimClient::connect(addr).expect("connect"),
            chunks: slice.chunks(batch),
            in_flight: VecDeque::with_capacity(window),
            next_corr: 1,
            busy: 0,
            done: false,
        })
        .collect();

    let drivers = DRIVERS.min(conns.len()).max(1);
    let started = Instant::now();
    // A scraper polls `/metrics` for the whole serving phase — scraping
    // under load is part of the measured scenario (it must neither fail
    // nor perturb the run).
    let scrape_done = std::sync::atomic::AtomicBool::new(false);
    let (busy_retries, scrapes): (u64, u64) = std::thread::scope(|scope| {
        let scraper = scope.spawn(|| {
            let mut scrapes = 0u64;
            while !scrape_done.load(std::sync::atomic::Ordering::Acquire) {
                validate_scrape(&scrape(scrape_addr));
                scrapes += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            scrapes
        });
        let mut handles = Vec::with_capacity(drivers);
        // Deal the sockets round-robin across the driver pool.
        let mut hands: Vec<Vec<PipeConn<'_>>> = (0..drivers).map(|_| Vec::new()).collect();
        for (i, conn) in conns.drain(..).enumerate() {
            hands[i % drivers].push(conn);
        }
        for hand in hands {
            handles.push(scope.spawn(move || drive(hand, window)));
        }
        let busy = handles.into_iter().map(|h| h.join().expect("driver")).sum();
        scrape_done.store(true, std::sync::atomic::Ordering::Release);
        (busy, scraper.join().expect("scraper"))
    });
    // The scaling series clocks the *serving phase*: every frame written
    // and every `ACK` absorbed.  The engine drain that follows is the
    // same work regardless of connections/window, so including it (as
    // the baseline grid does) would flatten the front-end differences
    // this axis exists to show.
    let wall_nanos = started.elapsed().as_nanos() as u64;
    // One wire TRACE dump after the serving phase: per-stage totals and
    // the slow-op count land in the artifact (events are skipped — the
    // stage totals are cumulative, the ring is just the newest window).
    let trace_dump = RtimClient::connect(addr)
        .expect("connect trace")
        .trace(0, false)
        .expect("TRACE dump");
    let server_report = server.shutdown();

    assert_eq!(
        server_report.stats.actions,
        actions.len() as u64,
        "scaling run lost actions"
    );
    ServeSetup {
        name: format!(
            "sic_{}_x{}_w{}_t{}",
            if front_end_name == "event-loop" { "el" } else { "tpc" },
            connections,
            window,
            threads
        ),
        framework: FrameworkKind::Sic.name().to_string(),
        front_end: front_end_name.to_string(),
        threads,
        connections,
        in_flight: window,
        batch,
        capacity,
    }
    .finish(&server_report.stats, wall_nanos, busy_retries, 0)
    .with_scrapes(scrapes)
    .with_trace(&trace_dump)
}

/// One blocking `GET /metrics` round trip, returning the raw response.
fn scrape(addr: std::net::SocketAddr) -> String {
    use std::io::Read as _;
    let mut conn = std::net::TcpStream::connect(addr).expect("connect scrape");
    conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("write scrape");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read scrape");
    response
}

/// Asserts one scrape response is well-formed Prometheus text: a 200
/// status, the expected summaries present, and every body line either a
/// comment or `name[{labels}] value` with a parseable value.
fn validate_scrape(response: &str) {
    assert!(
        response.starts_with("HTTP/1.0 200 OK"),
        "scrape failed: {response}"
    );
    let body = response
        .split_once("\r\n\r\n")
        .expect("headerless scrape response")
        .1;
    for required in [
        "rtim_feed_nanos{quantile=\"0.5\"}",
        "rtim_feed_nanos{quantile=\"0.95\"}",
        "rtim_feed_nanos{quantile=\"0.99\"}",
        "rtim_query_nanos{quantile=\"0.99\"}",
        "rtim_queue_depth{quantile=\"0.99\"}",
        "rtim_durability_state",
    ] {
        assert!(body.contains(required), "scrape missing {required}:\n{body}");
    }
    for line in body.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
        let (_, value) = line.rsplit_once(' ').expect("sample line without value");
        assert!(
            value.parse::<f64>().is_ok() || value == "NaN",
            "unparseable sample value in {line:?}"
        );
    }
}

/// One socket's streaming state inside a driver's hand.
struct PipeConn<'a> {
    client: RtimClient,
    chunks: std::slice::Chunks<'a, Action>,
    /// Correlation ids of unacknowledged `INGEST` frames, oldest first.
    in_flight: VecDeque<u32>,
    next_corr: u32,
    busy: u64,
    /// Chunks exhausted and every `ACK` absorbed.
    done: bool,
}

impl PipeConn<'_> {
    /// Blocks until the oldest in-flight frame is acknowledged.
    fn absorb_one(&mut self) {
        let expected = self.in_flight.pop_front().expect("nothing in flight");
        match self.client.read_reply().expect("read reply") {
            Frame::Ack { corr, .. } => {
                assert_eq!(corr, Some(expected), "acks arrived out of order")
            }
            other => panic!("unexpected reply to pipelined ingest: {other:?}"),
        }
    }
}

/// Round-robin multiplexer: each visit moves one socket forward by one
/// frame (window permitting), so every socket keeps its pipeline full
/// without any socket starving the others.
fn drive(mut hand: Vec<PipeConn<'_>>, window: usize) -> u64 {
    let mut open = hand.len();
    while open > 0 {
        for conn in &mut hand {
            if conn.done {
                continue;
            }
            match conn.chunks.next() {
                Some(chunk) => {
                    if window <= 1 {
                        // Lockstep: one frame, one ack (absorbing BUSY
                        // retries on the threaded front-end).
                        conn.busy += conn.client.ingest_blocking(chunk).expect("ingest");
                    } else {
                        if conn.in_flight.len() >= window {
                            conn.absorb_one();
                        }
                        let corr = conn.next_corr;
                        conn.next_corr = conn.next_corr.wrapping_add(1);
                        let frame = encode_frame(&Frame::Ingest {
                            actions: chunk.to_vec(),
                            corr: Some(corr),
                        });
                        conn.client
                            .raw_stream()
                            .write_all(&frame)
                            .expect("write ingest");
                        conn.in_flight.push_back(corr);
                    }
                }
                None => {
                    while !conn.in_flight.is_empty() {
                        conn.absorb_one();
                    }
                    conn.done = true;
                    open -= 1;
                }
            }
        }
    }
    hand.iter().map(|c| c.busy).sum()
}

fn print_run(run: &rtim_bench::ServeRun) {
    println!(
        "{:>18}  {:>9} actions  {:>12.0} actions/s  max depth {:>3}  busy {:>6}",
        run.setup.name, run.actions, run.actions_per_sec, run.max_queue_depth, run.busy_retries
    );
}
