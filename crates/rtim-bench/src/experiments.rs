//! Shared experiment sweeps used by the figure/table binaries.
//!
//! Every figure of §6 is a sweep of one parameter with all other parameters
//! at their Table-4 defaults; these helpers run the sweeps and return the
//! per-method series so that the binaries only parse arguments and print.

use crate::cli::Args;
use crate::params::ExperimentParams;
use crate::quality::evaluate_average_spread;
use crate::report::Series;
use crate::runner::{run_method, BaselineBudget, MethodKind, MethodRun};
use rtim_datagen::{DatasetConfig, DatasetKind, Scale};
use rtim_stream::SocialStream;

/// Argument keys understood by every experiment binary.
pub const COMMON_KEYS: &[&str] = &[
    "dataset", "datasets", "scale", "k", "beta", "window", "slide", "actions", "users",
    "mc-rounds", "eval-every", "max-slides", "seed", "oracle",
];

/// Parameters resolved from the command line for one experiment binary.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Fully resolved per-run parameters (Table-4 defaults at the requested
    /// scale unless overridden).
    pub params: ExperimentParams,
    /// Datasets to sweep (default: all four).
    pub datasets: Vec<DatasetKind>,
    /// Baseline resource budget.
    pub budget: BaselineBudget,
    /// Dataset size overrides.
    pub actions: Option<u64>,
    /// Dataset user-count override.
    pub users: Option<u32>,
}

impl CommonArgs {
    /// Resolves common arguments with laptop-scale defaults.
    pub fn resolve(args: &Args) -> CommonArgs {
        let scale = args
            .get("scale")
            .and_then(Scale::parse)
            .unwrap_or(Scale::Small);
        let dataset = args
            .get("dataset")
            .and_then(DatasetKind::parse)
            .unwrap_or(DatasetKind::SynN);
        let mut params = ExperimentParams::at_scale(dataset, scale);
        params.k = args.get_or("k", params.k);
        params.beta = args.get_or("beta", params.beta);
        params.window = args.get_or("window", params.window);
        params.slide = args.get_or("slide", params.slide).max(1);
        params.mc_rounds = args.get_or("mc-rounds", params.mc_rounds);
        params.eval_every = args.get_or("eval-every", params.eval_every).max(1);
        params.seed = args.get_or("seed", params.seed);

        let datasets = match args.get("datasets") {
            Some(list) => list
                .split(',')
                .filter_map(DatasetKind::parse)
                .collect::<Vec<_>>(),
            None => match args.get("dataset") {
                Some(_) => vec![dataset],
                None => DatasetKind::all().to_vec(),
            },
        };
        let budget = BaselineBudget {
            max_slides: args.get_or("max-slides", 0usize),
            ..BaselineBudget::default()
        };
        CommonArgs {
            params,
            datasets: if datasets.is_empty() {
                DatasetKind::all().to_vec()
            } else {
                datasets
            },
            budget,
            actions: args.get("actions").and_then(|v| v.parse().ok()),
            users: args.get("users").and_then(|v| v.parse().ok()),
        }
    }

    /// Generates the stream for a dataset with the resolved overrides.
    pub fn generate(&self, dataset: DatasetKind) -> SocialStream {
        let mut cfg = DatasetConfig::new(dataset, self.params.scale);
        if let Some(a) = self.actions {
            cfg = cfg.with_actions(a);
        }
        if let Some(u) = self.users {
            cfg = cfg.with_users(u);
        }
        cfg.generate()
    }
}

/// Result of a β sweep on one dataset: IC and SIC runs per β (Figures 5–7).
#[derive(Debug, Clone)]
pub struct BetaSweep {
    /// The swept β values.
    pub betas: Vec<f64>,
    /// IC run per β.
    pub ic: Vec<MethodRun>,
    /// SIC run per β.
    pub sic: Vec<MethodRun>,
}

impl BetaSweep {
    /// Runs IC and SIC for each β on the given stream.
    pub fn run(stream: &SocialStream, params: &ExperimentParams, betas: &[f64]) -> BetaSweep {
        let mut ic = Vec::with_capacity(betas.len());
        let mut sic = Vec::with_capacity(betas.len());
        for &beta in betas {
            let mut p = *params;
            p.beta = beta;
            let config = p.sim_config();
            sic.push(run_method(
                MethodKind::Sic,
                config,
                stream,
                BaselineBudget::default(),
                p.seed,
            ));
            ic.push(run_method(
                MethodKind::Ic,
                config,
                stream,
                BaselineBudget::default(),
                p.seed,
            ));
        }
        BetaSweep {
            betas: betas.to_vec(),
            ic,
            sic,
        }
    }

    /// Extracts one metric as printable series (SIC first, like the paper).
    pub fn series(&self, metric: impl Fn(&MethodRun) -> f64) -> Vec<Series> {
        vec![
            Series::new("SIC", self.sic.iter().map(&metric).collect()),
            Series::new("IC", self.ic.iter().map(&metric).collect()),
        ]
    }

    /// The β values as x-axis labels.
    pub fn x_labels(&self) -> Vec<String> {
        self.betas.iter().map(|b| format!("{b}")).collect()
    }
}

/// Result of a sweep over an arbitrary parameter for a set of methods
/// (Figures 8–12): one `MethodRun` per (method, swept value).
#[derive(Debug, Clone)]
pub struct MethodSweep {
    /// Labels of the swept values (x axis).
    pub x_labels: Vec<String>,
    /// Methods in presentation order.
    pub methods: Vec<MethodKind>,
    /// `runs[m][x]` — the run of method `m` at swept value `x`.
    pub runs: Vec<Vec<MethodRun>>,
}

impl MethodSweep {
    /// Runs every method for every swept value.  `configure` maps a swept
    /// value index to the parameters for that run; `streams` yields the
    /// stream for that index (several sweeps reuse one stream, Figure 12
    /// regenerates per point).
    pub fn run(
        methods: &[MethodKind],
        xs: &[String],
        budget: BaselineBudget,
        mut stream_for: impl FnMut(usize) -> SocialStream,
        mut params_for: impl FnMut(usize) -> ExperimentParams,
    ) -> MethodSweep {
        let mut runs = vec![Vec::with_capacity(xs.len()); methods.len()];
        for (xi, _) in xs.iter().enumerate() {
            let stream = stream_for(xi);
            let params = params_for(xi);
            let config = params.sim_config();
            for (mi, &method) in methods.iter().enumerate() {
                runs[mi].push(run_method(method, config, &stream, budget, params.seed));
            }
        }
        MethodSweep {
            x_labels: xs.to_vec(),
            methods: methods.to_vec(),
            runs,
        }
    }

    /// Throughput series per method (the metric of Figures 9–12).
    pub fn throughput_series(&self) -> Vec<Series> {
        self.methods
            .iter()
            .enumerate()
            .map(|(mi, m)| {
                Series::new(
                    m.name(),
                    self.runs[mi].iter().map(|r| r.throughput).collect(),
                )
            })
            .collect()
    }

    /// Quality series per method: average WC Monte-Carlo spread of the
    /// reported seeds (the metric of Figure 8).  Requires the streams and
    /// parameters used during the sweep to rebuild the evaluation graphs.
    pub fn quality_series(
        &self,
        mut stream_for: impl FnMut(usize) -> SocialStream,
        mut params_for: impl FnMut(usize) -> ExperimentParams,
    ) -> Vec<Series> {
        let mut series = Vec::with_capacity(self.methods.len());
        for (mi, m) in self.methods.iter().enumerate() {
            let mut values = Vec::with_capacity(self.x_labels.len());
            for xi in 0..self.x_labels.len() {
                let stream = stream_for(xi);
                let params = params_for(xi);
                let run = &self.runs[mi][xi];
                values.push(evaluate_average_spread(
                    &stream,
                    params.sim_config(),
                    &run.seeds_per_slide,
                    params.mc_rounds,
                    params.eval_every,
                    params.seed,
                ));
            }
            series.push(Series::new(m.name(), values));
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> ExperimentParams {
        let mut p = ExperimentParams::small(DatasetKind::SynN);
        p.k = 5;
        p.window = 300;
        p.slide = 50;
        p.mc_rounds = 50;
        p
    }

    fn tiny_stream() -> SocialStream {
        DatasetConfig::new(DatasetKind::SynN, Scale::Small)
            .with_users(200)
            .with_actions(1_200)
            .generate()
    }

    #[test]
    fn beta_sweep_produces_aligned_series() {
        let stream = tiny_stream();
        let sweep = BetaSweep::run(&stream, &tiny_params(), &[0.1, 0.5]);
        assert_eq!(sweep.betas.len(), 2);
        let value_series = sweep.series(|r| r.avg_value);
        assert_eq!(value_series.len(), 2);
        assert_eq!(value_series[0].values.len(), 2);
        // SIC maintains no more checkpoints than IC at the same β, modulo
        // the expired sentinel Λ[x0] that only SIC keeps (relevant on tiny
        // windows like this one; on paper-scale windows SIC is far below).
        let cp = sweep.series(|r| r.avg_checkpoints);
        for i in 0..2 {
            assert!(cp[0].values[i] <= cp[1].values[i] + 1.0);
        }
        assert_eq!(sweep.x_labels(), vec!["0.1", "0.5"]);
    }

    #[test]
    fn method_sweep_runs_streaming_methods() {
        let stream = tiny_stream();
        let params = tiny_params();
        let xs = vec!["5".to_string(), "10".to_string()];
        let sweep = MethodSweep::run(
            &MethodKind::streaming(),
            &xs,
            BaselineBudget::default(),
            |_| stream.clone(),
            |xi| {
                let mut p = params;
                p.k = if xi == 0 { 5 } else { 10 };
                p
            },
        );
        let tp = sweep.throughput_series();
        assert_eq!(tp.len(), 2);
        assert!(tp.iter().all(|s| s.values.iter().all(|&v| v > 0.0)));
        let quality = sweep.quality_series(|_| stream.clone(), |_| params);
        assert_eq!(quality[0].values.len(), 2);
        assert!(quality[0].values[0] > 0.0);
    }

    #[test]
    fn common_args_resolve_defaults_and_overrides() {
        let args = Args::from_iter(
            ["--k", "7", "--dataset", "syn-o", "--actions", "5000"]
                .iter()
                .map(|s| s.to_string()),
            COMMON_KEYS,
        )
        .unwrap();
        let common = CommonArgs::resolve(&args);
        assert_eq!(common.params.k, 7);
        assert_eq!(common.datasets, vec![DatasetKind::SynO]);
        assert_eq!(common.actions, Some(5000));
        let stream = common.generate(DatasetKind::SynO);
        assert_eq!(stream.len(), 5000);
    }
}
