//! Method runners: process a stream with one method and collect the
//! paper's performance metrics.
//!
//! The paper's metrics (§6.1):
//!
//! * **Throughput** — for every window slide of `L` actions, the elapsed
//!   processing CPU time is measured; throughput is `L` divided by that
//!   time.  We report total processed actions divided by total processing
//!   time, which is the same aggregate the figures plot.
//! * **Influence value** — the SIM objective value reported by the method's
//!   answer, averaged over all full windows (Figure 5).
//! * **Checkpoints** — the average number of checkpoints maintained
//!   (Figure 6; only meaningful for IC/SIC).
//!
//! Baselines are driven through the same window maintenance (sliding
//! window plus propagation index) so their measured cost includes exactly
//! the same substrate work as the streaming frameworks.

use rtim_baselines::{GreedySim, Imm, Ubi, UbiConfig};
use rtim_core::{FrameworkKind, SimConfig, SimEngine};
use rtim_graph::build_window_graph;
use crate::stats::LatencyStats;
use rtim_stream::{PropagationIndex, SlidingWindow, SocialStream, UserId};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The five compared methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodKind {
    /// Sparse Influential Checkpoints (this paper).
    Sic,
    /// Influential Checkpoints (this paper).
    Ic,
    /// Greedy recomputation per window (Nemhauser et al.).
    Greedy,
    /// IMM re-run per window (Tang et al. 2015).
    Imm,
    /// Upper Bound Interchange (Chen et al. 2015).
    Ubi,
}

impl MethodKind {
    /// All methods in the order used by the figures.
    pub fn all() -> [MethodKind; 5] {
        [
            MethodKind::Sic,
            MethodKind::Ic,
            MethodKind::Greedy,
            MethodKind::Imm,
            MethodKind::Ubi,
        ]
    }

    /// The two streaming frameworks only.
    pub fn streaming() -> [MethodKind; 2] {
        [MethodKind::Sic, MethodKind::Ic]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::Sic => "SIC",
            MethodKind::Ic => "IC",
            MethodKind::Greedy => "Greedy",
            MethodKind::Imm => "IMM",
            MethodKind::Ubi => "UBI",
        }
    }

    /// Parses a method name (case-insensitive).
    pub fn parse(s: &str) -> Option<MethodKind> {
        match s.to_ascii_lowercase().as_str() {
            "sic" => Some(MethodKind::Sic),
            "ic" => Some(MethodKind::Ic),
            "greedy" => Some(MethodKind::Greedy),
            "imm" => Some(MethodKind::Imm),
            "ubi" => Some(MethodKind::Ubi),
            _ => None,
        }
    }
}

/// Metrics and per-slide answers collected from one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodRun {
    /// Which method produced this run.
    pub method: MethodKind,
    /// Total actions processed.
    pub actions: u64,
    /// Total processing time (window maintenance + method work).
    pub elapsed: Duration,
    /// Throughput in actions per second.
    pub throughput: f64,
    /// Average SIM influence value over full windows (streaming methods) or
    /// average objective value of the selected seeds (Greedy); 0 for
    /// IMM/UBI whose native objective is the spread, not the SIM value.
    pub avg_value: f64,
    /// Average number of checkpoints maintained (streaming methods only).
    pub avg_checkpoints: f64,
    /// Seeds reported after each slide (aligned with slide index).
    pub seeds_per_slide: Vec<Vec<UserId>>,
    /// Distribution of per-slide processing latencies.
    pub latency: LatencyStats,
}

impl MethodRun {
    fn finish(
        method: MethodKind,
        actions: u64,
        per_slide: &[Duration],
        values: &[f64],
        checkpoints: &[usize],
        seeds_per_slide: Vec<Vec<UserId>>,
    ) -> Self {
        let elapsed: Duration = per_slide.iter().sum();
        let throughput = if elapsed.as_secs_f64() > 0.0 {
            actions as f64 / elapsed.as_secs_f64()
        } else {
            f64::INFINITY
        };
        MethodRun {
            method,
            actions,
            elapsed,
            throughput,
            avg_value: mean(values),
            avg_checkpoints: mean(&checkpoints.iter().map(|&c| c as f64).collect::<Vec<_>>()),
            seeds_per_slide,
            latency: LatencyStats::from_durations(per_slide),
        }
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Extra knobs for the expensive baselines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineBudget {
    /// Cap on RR sets per IMM invocation (resource guard for sweeps).
    pub imm_max_rr_sets: usize,
    /// RR sets per UBI update.
    pub ubi_rr_sets: usize,
    /// Process at most this many *full-window* slides (0 = all).  The static
    /// baselines are orders of magnitude slower than SIC; sweeps cap their
    /// measured slides and the throughput estimate remains valid (their
    /// per-slide cost is stationary once the window is full).
    pub max_slides: usize,
}

impl Default for BaselineBudget {
    fn default() -> Self {
        BaselineBudget {
            imm_max_rr_sets: 50_000,
            ubi_rr_sets: 5_000,
            max_slides: 0,
        }
    }
}

/// Runs a method over the stream using the given SIM configuration.
pub fn run_method(
    method: MethodKind,
    config: SimConfig,
    stream: &SocialStream,
    budget: BaselineBudget,
    seed: u64,
) -> MethodRun {
    match method {
        MethodKind::Sic => run_framework(FrameworkKind::Sic, config, stream),
        MethodKind::Ic => run_framework(FrameworkKind::Ic, config, stream),
        MethodKind::Greedy | MethodKind::Imm | MethodKind::Ubi => {
            run_baseline(method, config, stream, budget, seed)
        }
    }
}

/// Runs IC or SIC over the stream via [`SimEngine::run_stream`], deriving
/// every timing metric from the engine's own per-slide `feed_nanos` /
/// `query_nanos` instrumentation (no stopwatch around the engine).
pub fn run_framework(kind: FrameworkKind, config: SimConfig, stream: &SocialStream) -> MethodRun {
    let method = match kind {
        FrameworkKind::Sic => MethodKind::Sic,
        FrameworkKind::Ic => MethodKind::Ic,
    };
    let mut engine = SimEngine::new(config, kind);
    let report = engine.run_stream(stream);
    let warmup_slides = config.checkpoint_capacity();

    let per_slide: Vec<Duration> = report
        .slides
        .iter()
        .map(|r| Duration::from_nanos(r.feed_nanos + r.query_nanos))
        .collect();
    let mut values = Vec::new();
    let mut checkpoints = Vec::new();
    for (slide_idx, (slide, solution)) in
        report.slides.iter().zip(&report.solutions).enumerate()
    {
        if slide_idx + 1 >= warmup_slides {
            values.push(solution.value);
            checkpoints.push(slide.checkpoints);
        }
    }
    let seeds_per_slide = report
        .solutions
        .into_iter()
        .map(|s| s.seeds)
        .collect::<Vec<_>>();
    MethodRun::finish(
        method,
        report.slides.iter().map(|r| r.actions as u64).sum(),
        &per_slide,
        &values,
        &checkpoints,
        seeds_per_slide,
    )
}

/// Runs one of the baselines over the stream, maintaining the same window
/// substrate and invoking the baseline's selection at every slide.
pub fn run_baseline(
    method: MethodKind,
    config: SimConfig,
    stream: &SocialStream,
    budget: BaselineBudget,
    seed: u64,
) -> MethodRun {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut window = SlidingWindow::new(config.window_size);
    let mut index = PropagationIndex::new();
    let mut rng = StdRng::seed_from_u64(seed);

    let greedy = GreedySim::new(config.k);
    let imm = Imm::new(config.k).with_max_rr_sets(budget.imm_max_rr_sets);
    let mut ubi = Ubi::new(UbiConfig::new(config.k).with_rr_sets(budget.ubi_rr_sets));

    let warmup_slides = config.checkpoint_capacity();
    let mut values = Vec::new();
    let mut seeds_per_slide = Vec::new();
    let mut actions = 0u64;
    let mut per_slide = Vec::new();
    let mut measured_slides = 0usize;

    for (slide_idx, batch) in stream.batches(config.slide).enumerate() {
        // Warm-up: fill the window without timing or selecting — the static
        // baselines answer per *full* window, and measuring them on a
        // half-empty window would overstate their throughput.
        if slide_idx + 1 < warmup_slides {
            for action in batch {
                index.insert(action);
                window.push(*action);
            }
            seeds_per_slide.push(Vec::new());
            continue;
        }
        if budget.max_slides > 0 && measured_slides >= budget.max_slides {
            break;
        }
        measured_slides += 1;
        let start = Instant::now();
        for action in batch {
            index.insert(action);
            window.push(*action);
        }
        let (seeds, value) = match method {
            MethodKind::Greedy => {
                let influence = rtim_stream::window_influence_sets(&window, &index);
                let result = greedy.select(&influence);
                (result.seeds, result.value)
            }
            MethodKind::Imm => {
                let graph = build_window_graph(&window, &index);
                let result = imm.select(&graph, &mut rng);
                (result.seeds, result.estimated_spread)
            }
            MethodKind::Ubi => {
                let graph = build_window_graph(&window, &index);
                let spread = ubi.update(&graph, &mut rng);
                (ubi.seeds().to_vec(), spread)
            }
            _ => unreachable!("streaming methods use run_framework"),
        };
        per_slide.push(start.elapsed());
        actions += batch.len() as u64;
        values.push(value);
        seeds_per_slide.push(seeds);
    }
    MethodRun::finish(method, actions, &per_slide, &values, &[], seeds_per_slide)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtim_datagen::{DatasetConfig, DatasetKind, Scale};

    fn tiny_stream() -> SocialStream {
        DatasetConfig::new(DatasetKind::SynN, Scale::Small)
            .with_users(300)
            .with_actions(2_000)
            .generate()
    }

    fn tiny_config() -> SimConfig {
        SimConfig::new(5, 0.2, 400, 50)
    }

    #[test]
    fn framework_runs_report_metrics() {
        let stream = tiny_stream();
        for kind in [FrameworkKind::Sic, FrameworkKind::Ic] {
            let run = run_framework(kind, tiny_config(), &stream);
            assert_eq!(run.actions, 2_000);
            assert!(run.throughput > 0.0, "{}", run.method.name());
            assert!(run.avg_value > 0.0);
            assert!(run.avg_checkpoints >= 1.0);
            assert_eq!(run.seeds_per_slide.len(), 40);
        }
    }

    #[test]
    fn sic_keeps_fewer_checkpoints_than_ic() {
        let stream = tiny_stream();
        let sic = run_framework(FrameworkKind::Sic, tiny_config(), &stream);
        let ic = run_framework(FrameworkKind::Ic, tiny_config(), &stream);
        assert!(sic.avg_checkpoints < ic.avg_checkpoints);
        // IC's value is an upper bound on SIC's (same oracle, denser grid).
        assert!(ic.avg_value + 1e-9 >= sic.avg_value * 0.8);
    }

    #[test]
    fn greedy_baseline_runs() {
        let stream = tiny_stream();
        let budget = BaselineBudget {
            max_slides: 10,
            ..BaselineBudget::default()
        };
        let run = run_method(MethodKind::Greedy, tiny_config(), &stream, budget, 7);
        // 7 empty warm-up entries (window filling) + 10 measured slides.
        let measured = run.seeds_per_slide.iter().filter(|s| !s.is_empty()).count();
        assert_eq!(measured, 10);
        assert!(run.throughput > 0.0);
        assert!(run.latency.count == 10);
    }

    #[test]
    fn imm_and_ubi_baselines_run() {
        let stream = tiny_stream();
        let budget = BaselineBudget {
            imm_max_rr_sets: 2_000,
            ubi_rr_sets: 500,
            max_slides: 5,
        };
        for method in [MethodKind::Imm, MethodKind::Ubi] {
            let run = run_method(method, tiny_config(), &stream, budget, 7);
            let measured = run.seeds_per_slide.iter().filter(|s| !s.is_empty()).count();
            assert_eq!(measured, 5, "{}", method.name());
            assert!(run.seeds_per_slide.last().unwrap().len() <= 5);
        }
    }

    #[test]
    fn method_kind_parse_and_names() {
        assert_eq!(MethodKind::parse("sic"), Some(MethodKind::Sic));
        assert_eq!(MethodKind::parse("IMM"), Some(MethodKind::Imm));
        assert_eq!(MethodKind::parse("nope"), None);
        assert_eq!(MethodKind::all().len(), 5);
        assert_eq!(MethodKind::streaming().len(), 2);
        assert_eq!(MethodKind::Greedy.name(), "Greedy");
    }
}
