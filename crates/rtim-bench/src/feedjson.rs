//! Machine-readable feed-performance reports (`BENCH_feed.json`).
//!
//! The Criterion benches and figure binaries print human-oriented tables;
//! tracking the perf *trajectory across PRs* needs a stable, parseable
//! artifact instead.  [`FeedBenchReport`] captures, for one machine and one
//! run of the `bench_feed` binary:
//!
//! * per-framework feed runs driven through [`SimEngine::run_stream`]
//!   (`rtim_core`), with total and per-slide `feed_nanos` / `query_nanos`
//!   and the derived actions-per-second rate, and
//! * the `coverage_ops` micro-comparison of the bitmap
//!   [`CoverageState`](rtim_submodular::CoverageState) against the retained
//!   hash-set baseline
//!   ([`HashCoverageState`](rtim_submodular::HashCoverageState)), so the
//!   layout win (and any regression) is recorded next to the end-to-end
//!   numbers that depend on it.
//!
//! The JSON is emitted by a small hand-rolled writer: the vendored `serde`
//! is a no-op stub (see `vendor/serde`), and the schema is flat enough that
//! a dedicated writer is simpler than growing the stub.  The schema is
//! versioned via the `schema` field; CI smoke-runs the emission path so
//! schema bitrot is caught.
//!
//! ## Schema v2
//!
//! `rtim-bench-feed/v2` extends v1 with
//!
//! * a top-level `simd` flag recording whether the kernels ran with the
//!   `simd` feature,
//! * per-run `shard_migrations` / `shard_ewma_min_nanos` /
//!   `shard_ewma_max_nanos` from the pool's adaptive placement,
//! * a `baselines` array of reference per-slide feed times recorded on the
//!   same machine by an earlier run, and
//! * `speedups_vs_baseline`, pairing each run with its baseline by name
//!   (`baseline_mean / run_mean`, > 1 is a win).
//!
//! v1 fields are unchanged, so v1 consumers that ignore unknown fields
//! keep working.  The additive `trace_overhead` object (same convention:
//! unknown-field-tolerant consumers keep working, so the schema id stays
//! v2) records the flight-recorder differential — the same stream pushed
//! through the [`EngineHandle`](rtim_core::EngineHandle) pipeline with
//! tracing disabled and again at 1-in-N sampling, with the engine feed
//! times and their ratio (`≈ 1.0` when the hot path stays untouched).

use rtim_core::{PoolStats, RunReport};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Schema identifier of the emitted JSON document.
pub const FEED_SCHEMA: &str = "rtim-bench-feed/v2";

/// Cap on the per-slide arrays embedded in the JSON (aggregates always cover
/// every slide; the arrays exist for shape inspection, not bulk storage).
pub const PER_SLIDE_CAP: usize = 512;

/// One framework run, summarized from the engine's own instrumentation.
#[derive(Debug, Clone)]
pub struct FeedRun {
    /// Run label, e.g. `"sic_syn-n_t1"`.
    pub name: String,
    /// Framework name (`"SIC"` / `"IC"`).
    pub framework: String,
    /// Worker threads backing the checkpoint set (1 = sequential).
    pub threads: usize,
    /// Total actions processed.
    pub actions: u64,
    /// Number of window slides.
    pub slides: usize,
    /// Total nanoseconds spent feeding slides.
    pub feed_nanos_total: u64,
    /// Total nanoseconds spent answering queries.
    pub query_nanos_total: u64,
    /// Mean feed nanoseconds per slide.
    pub feed_nanos_per_slide_mean: f64,
    /// Actions per second of feed time (the headline rate).
    pub elements_per_sec: f64,
    /// Per-slide feed nanoseconds (first [`PER_SLIDE_CAP`] slides).
    pub per_slide_feed_nanos: Vec<u64>,
    /// Per-slide query nanoseconds (first [`PER_SLIDE_CAP`] slides).
    pub per_slide_query_nanos: Vec<u64>,
    /// `true` if the per-slide arrays were truncated to the cap.
    pub per_slide_truncated: bool,
    /// Checkpoints migrated by the pool's timing-driven placement
    /// (0 for sequential runs).
    pub shard_migrations: u64,
    /// Smallest per-shard feed-time EWMA after the run, nanoseconds.
    pub shard_ewma_min_nanos: u64,
    /// Largest per-shard feed-time EWMA after the run, nanoseconds.
    pub shard_ewma_max_nanos: u64,
}

impl FeedRun {
    /// Summarizes an engine [`RunReport`] under the given label.
    pub fn from_report(
        name: impl Into<String>,
        framework: impl Into<String>,
        threads: usize,
        report: &RunReport,
    ) -> FeedRun {
        let slides = report.slides.len();
        let feed_total = report.feed_nanos();
        let feed_secs = feed_total as f64 / 1e9;
        FeedRun {
            name: name.into(),
            framework: framework.into(),
            threads,
            actions: report.actions(),
            slides,
            feed_nanos_total: feed_total,
            query_nanos_total: report.query_nanos(),
            feed_nanos_per_slide_mean: if slides == 0 {
                0.0
            } else {
                feed_total as f64 / slides as f64
            },
            elements_per_sec: if feed_secs > 0.0 {
                report.actions() as f64 / feed_secs
            } else {
                0.0
            },
            per_slide_feed_nanos: report
                .slides
                .iter()
                .take(PER_SLIDE_CAP)
                .map(|s| s.feed_nanos)
                .collect(),
            per_slide_query_nanos: report
                .slides
                .iter()
                .take(PER_SLIDE_CAP)
                .map(|s| s.query_nanos)
                .collect(),
            per_slide_truncated: slides > PER_SLIDE_CAP,
            shard_migrations: 0,
            shard_ewma_min_nanos: 0,
            shard_ewma_max_nanos: 0,
        }
    }

    /// Attaches the engine's post-run [`PoolStats`] to the run record.
    pub fn with_pool_stats(mut self, stats: PoolStats) -> Self {
        self.shard_migrations = stats.migrations;
        self.shard_ewma_min_nanos = stats.ewma_min_nanos;
        self.shard_ewma_max_nanos = stats.ewma_max_nanos;
        self
    }
}

/// A reference per-slide feed time recorded by an earlier run on the same
/// machine, keyed by run name (schema v2).
#[derive(Debug, Clone)]
pub struct BaselineSample {
    /// Run name the baseline pairs with (e.g. `"sic_syn-n_t4"`).
    pub name: String,
    /// The earlier run's mean feed nanoseconds per slide.
    pub feed_nanos_per_slide_mean: f64,
    /// Where the number came from (e.g. a PR/commit label).
    pub source: String,
}

/// The tracing-overhead differential: one stream pushed through the
/// pipeline with tracing disabled and again at 1-in-`sample` sampling.
#[derive(Debug, Clone)]
pub struct TraceOverheadSample {
    /// Sampling rate of the traced run (1-in-`sample`).
    pub sample: u32,
    /// Actions pushed through each run.
    pub actions: u64,
    /// Engine feed nanoseconds with tracing disabled.
    pub feed_nanos_disabled: u64,
    /// Engine feed nanoseconds at 1-in-`sample` sampling.
    pub feed_nanos_sampled: u64,
    /// `feed_nanos_sampled / feed_nanos_disabled` (1.0 = free).
    pub overhead_ratio: f64,
}

/// One measured coverage micro-operation.
#[derive(Debug, Clone)]
pub struct CoverageOpsSample {
    /// Operation name (`"absorb"`, `"marginal_gain"`).
    pub op: String,
    /// Implementation (`"bitmap"` or `"hashset"` — the retained baseline).
    pub implementation: String,
    /// Mean nanoseconds per operation.
    pub ns_per_op: f64,
    /// Number of operations timed.
    pub ops: u64,
}

/// The complete `BENCH_feed.json` document.
#[derive(Debug, Clone, Default)]
pub struct FeedBenchReport {
    /// Framework feed runs.
    pub runs: Vec<FeedRun>,
    /// Bitmap-vs-hashset coverage micro-comparison.
    pub coverage_ops: Vec<CoverageOpsSample>,
    /// Whether the kernels ran with the `simd` feature enabled.
    pub simd: bool,
    /// Reference numbers from an earlier run on the same machine.
    pub baselines: Vec<BaselineSample>,
    /// Tracing-overhead differential, when the run measured it.
    pub trace_overhead: Option<TraceOverheadSample>,
}

impl FeedBenchReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Aggregate speedup of the bitmap implementation over the hash-set
    /// baseline (total hashset ns / total bitmap ns over the paired
    /// operations), or `None` if either side is missing.
    pub fn bitmap_speedup(&self) -> Option<f64> {
        let total = |imp: &str| -> f64 {
            self.coverage_ops
                .iter()
                .filter(|s| s.implementation == imp)
                .map(|s| s.ns_per_op * s.ops as f64)
                .sum()
        };
        let (bitmap, hashset) = (total("bitmap"), total("hashset"));
        if bitmap > 0.0 && hashset > 0.0 {
            Some(hashset / bitmap)
        } else {
            None
        }
    }

    /// Speedup of the named run over its same-named baseline
    /// (`baseline_mean / run_mean`; > 1 means the run got faster), or
    /// `None` if either side is missing or non-positive.
    pub fn speedup_vs_baseline(&self, name: &str) -> Option<f64> {
        let run = self.runs.iter().find(|r| r.name == name)?;
        let base = self.baselines.iter().find(|b| b.name == name)?;
        if run.feed_nanos_per_slide_mean > 0.0 && base.feed_nanos_per_slide_mean > 0.0 {
            Some(base.feed_nanos_per_slide_mean / run.feed_nanos_per_slide_mean)
        } else {
            None
        }
    }

    /// Renders the document as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(FEED_SCHEMA));
        let _ = writeln!(out, "  \"simd\": {},", self.simd);
        out.push_str("  \"runs\": [");
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"name\": {}, ", json_str(&run.name));
            let _ = write!(out, "\"framework\": {}, ", json_str(&run.framework));
            let _ = write!(out, "\"threads\": {}, ", run.threads);
            let _ = write!(out, "\"actions\": {}, ", run.actions);
            let _ = write!(out, "\"slides\": {}, ", run.slides);
            let _ = write!(out, "\"feed_nanos_total\": {}, ", run.feed_nanos_total);
            let _ = write!(out, "\"query_nanos_total\": {}, ", run.query_nanos_total);
            let _ = write!(
                out,
                "\"feed_nanos_per_slide_mean\": {}, ",
                json_f64(run.feed_nanos_per_slide_mean)
            );
            let _ = write!(
                out,
                "\"elements_per_sec\": {}, ",
                json_f64(run.elements_per_sec)
            );
            let _ = write!(
                out,
                "\"per_slide_truncated\": {}, ",
                run.per_slide_truncated
            );
            let _ = write!(out, "\"shard_migrations\": {}, ", run.shard_migrations);
            let _ = write!(
                out,
                "\"shard_ewma_min_nanos\": {}, ",
                run.shard_ewma_min_nanos
            );
            let _ = write!(
                out,
                "\"shard_ewma_max_nanos\": {}, ",
                run.shard_ewma_max_nanos
            );
            let _ = write!(
                out,
                "\"per_slide_feed_nanos\": {}, ",
                json_u64_array(&run.per_slide_feed_nanos)
            );
            let _ = write!(
                out,
                "\"per_slide_query_nanos\": {}",
                json_u64_array(&run.per_slide_query_nanos)
            );
            out.push('}');
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"coverage_ops\": [");
        for (i, s) in self.coverage_ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"op\": {}, ", json_str(&s.op));
            let _ = write!(out, "\"impl\": {}, ", json_str(&s.implementation));
            let _ = write!(out, "\"ns_per_op\": {}, ", json_f64(s.ns_per_op));
            let _ = write!(out, "\"ops\": {}", s.ops);
            out.push('}');
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"baselines\": [");
        for (i, b) in self.baselines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"name\": {}, ", json_str(&b.name));
            let _ = write!(
                out,
                "\"feed_nanos_per_slide_mean\": {}, ",
                json_f64(b.feed_nanos_per_slide_mean)
            );
            let _ = write!(out, "\"source\": {}", json_str(&b.source));
            out.push('}');
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"speedups_vs_baseline\": [");
        let mut first = true;
        for run in &self.runs {
            if let Some(speedup) = self.speedup_vs_baseline(&run.name) {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("\n    {");
                let _ = write!(out, "\"name\": {}, ", json_str(&run.name));
                let _ = write!(out, "\"speedup\": {}", json_f64(speedup));
                out.push('}');
            }
        }
        out.push_str("\n  ],\n");
        match &self.trace_overhead {
            Some(t) => {
                let _ = writeln!(
                    out,
                    "  \"trace_overhead\": {{\"sample\": {}, \"actions\": {}, \
                     \"feed_nanos_disabled\": {}, \"feed_nanos_sampled\": {}, \
                     \"overhead_ratio\": {}}},",
                    t.sample,
                    t.actions,
                    t.feed_nanos_disabled,
                    t.feed_nanos_sampled,
                    json_f64(t.overhead_ratio)
                );
            }
            None => {
                out.push_str("  \"trace_overhead\": null,\n");
            }
        }
        match self.bitmap_speedup() {
            Some(v) => {
                let _ = writeln!(out, "  \"bitmap_speedup_vs_hashset\": {}", json_f64(v));
            }
            None => {
                out.push_str("  \"bitmap_speedup_vs_hashset\": null\n");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Writes the document to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// JSON string literal with the escapes the labels here can contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite JSON number (JSON has no NaN/Inf; those become null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_u64_array(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtim_core::{SlideReport, Solution};

    fn report_with(feed: &[u64]) -> RunReport {
        RunReport {
            slides: feed
                .iter()
                .map(|&f| SlideReport {
                    actions: 10,
                    feed_nanos: f,
                    query_nanos: 5,
                    ..SlideReport::default()
                })
                .collect(),
            solutions: feed.iter().map(|_| Solution::empty()).collect(),
        }
    }

    #[test]
    fn feed_run_summarizes_report() {
        let run = FeedRun::from_report("sic_test", "SIC", 1, &report_with(&[100, 300]));
        assert_eq!(run.actions, 20);
        assert_eq!(run.slides, 2);
        assert_eq!(run.feed_nanos_total, 400);
        assert_eq!(run.query_nanos_total, 10);
        assert_eq!(run.feed_nanos_per_slide_mean, 200.0);
        assert!(run.elements_per_sec > 0.0);
        assert!(!run.per_slide_truncated);
        assert_eq!(run.per_slide_feed_nanos, vec![100, 300]);
    }

    #[test]
    fn json_has_schema_runs_and_ops() {
        let mut r = FeedBenchReport::new();
        r.runs
            .push(FeedRun::from_report("ic_x", "IC", 2, &report_with(&[7])));
        r.coverage_ops.push(CoverageOpsSample {
            op: "absorb".into(),
            implementation: "bitmap".into(),
            ns_per_op: 12.5,
            ops: 1000,
        });
        r.coverage_ops.push(CoverageOpsSample {
            op: "absorb".into(),
            implementation: "hashset".into(),
            ns_per_op: 50.0,
            ops: 1000,
        });
        r.trace_overhead = Some(TraceOverheadSample {
            sample: 64,
            actions: 20_000,
            feed_nanos_disabled: 1_000,
            feed_nanos_sampled: 1_010,
            overhead_ratio: 1.01,
        });
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"rtim-bench-feed/v2\""));
        assert!(json.contains("\"simd\": false"));
        assert!(json.contains("\"name\": \"ic_x\""));
        assert!(json.contains("\"per_slide_feed_nanos\": [7]"));
        assert!(json.contains("\"shard_migrations\": 0"));
        assert!(json.contains("\"impl\": \"hashset\""));
        assert!(json.contains("\"bitmap_speedup_vs_hashset\": 4"));
        assert!(json.contains("\"trace_overhead\": {\"sample\": 64"));
        assert!(json.contains("\"overhead_ratio\": 1.01"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn speedup_requires_both_sides() {
        let mut r = FeedBenchReport::new();
        assert_eq!(r.bitmap_speedup(), None);
        r.coverage_ops.push(CoverageOpsSample {
            op: "marginal_gain".into(),
            implementation: "bitmap".into(),
            ns_per_op: 1.0,
            ops: 10,
        });
        assert_eq!(r.bitmap_speedup(), None);
        assert!(r.to_json().contains("\"bitmap_speedup_vs_hashset\": null"));
        assert!(r.to_json().contains("\"trace_overhead\": null"));
    }

    #[test]
    fn baseline_speedup_pairs_by_name() {
        let mut r = FeedBenchReport::new();
        r.runs
            .push(FeedRun::from_report("sic_a_t4", "SIC", 4, &report_with(&[100, 100])));
        assert_eq!(r.speedup_vs_baseline("sic_a_t4"), None);
        r.baselines.push(BaselineSample {
            name: "sic_a_t4".into(),
            feed_nanos_per_slide_mean: 250.0,
            source: "earlier run".into(),
        });
        assert_eq!(r.speedup_vs_baseline("sic_a_t4"), Some(2.5));
        assert_eq!(r.speedup_vs_baseline("nope"), None);
        let json = r.to_json();
        assert!(json.contains("\"speedups_vs_baseline\": ["));
        assert!(json.contains("\"speedup\": 2.5"));
        assert!(json.contains("\"source\": \"earlier run\""));
    }

    #[test]
    fn pool_stats_attach_to_runs() {
        let run = FeedRun::from_report("x", "IC", 4, &report_with(&[10]))
            .with_pool_stats(PoolStats {
                migrations: 3,
                ewma_min_nanos: 5,
                ewma_max_nanos: 9,
                arena_takes: 0,
                arena_hits: 0,
            });
        assert_eq!(run.shard_migrations, 3);
        assert_eq!(run.shard_ewma_min_nanos, 5);
        assert_eq!(run.shard_ewma_max_nanos, 9);
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
