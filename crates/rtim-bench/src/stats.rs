//! Per-slide latency statistics.
//!
//! The paper reports aggregate throughput; for a system that is meant to sit
//! on a live feed, tail latencies per window slide matter just as much (a
//! slide that stalls delays every downstream query).  [`LatencyStats`]
//! summarizes the recorded per-slide processing times with the usual
//! percentiles and is attached to every [`crate::runner::MethodRun`].

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Summary of a set of per-slide latencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencyStats {
    /// Number of recorded slides.
    pub count: usize,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Median latency in microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency in microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: u64,
    /// Maximum latency in microseconds.
    pub max_us: u64,
}

impl LatencyStats {
    /// Summarizes a list of per-slide durations.
    pub fn from_durations(durations: &[Duration]) -> Self {
        if durations.is_empty() {
            return LatencyStats::default();
        }
        let mut us: Vec<u64> = durations
            .iter()
            .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
            .collect();
        us.sort_unstable();
        let total: u128 = us.iter().map(|&v| v as u128).sum();
        LatencyStats {
            count: us.len(),
            mean_us: total as f64 / us.len() as f64,
            p50_us: percentile(&us, 0.50),
            p95_us: percentile(&us, 0.95),
            p99_us: percentile(&us, 0.99),
            max_us: *us.last().expect("non-empty"),
        }
    }

    /// Mean latency as a [`Duration`].
    pub fn mean(&self) -> Duration {
        Duration::from_micros(self.mean_us.round() as u64)
    }
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_known_distribution() {
        let durations: Vec<Duration> = (1..=100u64).map(Duration::from_micros).collect();
        let stats = LatencyStats::from_durations(&durations);
        assert_eq!(stats.count, 100);
        assert!((stats.mean_us - 50.5).abs() < 1e-9);
        assert_eq!(stats.p50_us, 50);
        assert_eq!(stats.p95_us, 95);
        assert_eq!(stats.p99_us, 99);
        assert_eq!(stats.max_us, 100);
        assert_eq!(stats.mean(), Duration::from_micros(51));
    }

    #[test]
    fn empty_input_yields_zeroes() {
        let stats = LatencyStats::from_durations(&[]);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.max_us, 0);
        assert_eq!(stats.mean_us, 0.0);
    }

    #[test]
    fn single_sample_percentiles_collapse() {
        let stats = LatencyStats::from_durations(&[Duration::from_micros(7)]);
        assert_eq!(stats.p50_us, 7);
        assert_eq!(stats.p99_us, 7);
        assert_eq!(stats.count, 1);
    }

    #[test]
    fn percentile_is_monotone() {
        let durations: Vec<Duration> = [3u64, 9, 1, 7, 5, 11, 2]
            .iter()
            .map(|&v| Duration::from_micros(v))
            .collect();
        let stats = LatencyStats::from_durations(&durations);
        assert!(stats.p50_us <= stats.p95_us);
        assert!(stats.p95_us <= stats.p99_us);
        assert!(stats.p99_us <= stats.max_us);
    }
}
