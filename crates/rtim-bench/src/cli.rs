//! Minimal command-line parsing shared by the experiment binaries.
//!
//! The binaries accept `--key value` pairs; unknown keys are rejected with a
//! usage message.  This avoids an external argument-parsing dependency while
//! keeping every experiment overridable (dataset, scale, k, β, N, L, …).

use std::collections::BTreeMap;

/// Parsed `--key value` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
}

impl Args {
    /// Parses the process arguments, allowing only the listed keys.
    ///
    /// Returns an error message (usage text) on unknown keys or malformed
    /// input; binaries print it and exit with a non-zero status.
    pub fn parse(allowed: &[&str]) -> Result<Args, String> {
        Self::from_iter(std::env::args().skip(1), allowed)
    }

    /// Parses an explicit argument list (used by tests).
    pub fn from_iter(
        args: impl IntoIterator<Item = String>,
        allowed: &[&str],
    ) -> Result<Args, String> {
        let mut values = BTreeMap::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(usage(allowed, &format!("unexpected argument `{arg}`")));
            };
            if key == "help" {
                return Err(usage(allowed, "help requested"));
            }
            if !allowed.contains(&key) {
                return Err(usage(allowed, &format!("unknown option `--{key}`")));
            }
            let Some(value) = iter.next() else {
                return Err(usage(allowed, &format!("missing value for `--{key}`")));
            };
            values.insert(key.to_string(), value);
        }
        Ok(Args { values })
    }

    /// Raw string value of a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// Typed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// `true` if the key was provided.
    pub fn has(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }
}

fn usage(allowed: &[&str], reason: &str) -> String {
    let opts = allowed
        .iter()
        .map(|k| format!("--{k} <value>"))
        .collect::<Vec<_>>()
        .join(" ");
    format!("{reason}\nusage: [{opts}]")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str], allowed: &[&str]) -> Result<Args, String> {
        Args::from_iter(list.iter().map(|s| s.to_string()), allowed)
    }

    #[test]
    fn parses_known_keys() {
        let a = args(&["--k", "25", "--dataset", "reddit"], &["k", "dataset"]).unwrap();
        assert_eq!(a.get("dataset"), Some("reddit"));
        assert_eq!(a.get_or("k", 5usize), 25);
        assert_eq!(a.get_or("missing", 7usize), 7);
        assert!(a.has("k"));
        assert!(!a.has("beta"));
    }

    #[test]
    fn rejects_unknown_keys_and_missing_values() {
        assert!(args(&["--bogus", "1"], &["k"]).is_err());
        assert!(args(&["--k"], &["k"]).is_err());
        assert!(args(&["positional"], &["k"]).is_err());
        let err = args(&["--help"], &["k"]).unwrap_err();
        assert!(err.contains("usage"));
    }

    #[test]
    fn malformed_values_fall_back_to_default() {
        let a = args(&["--k", "abc"], &["k"]).unwrap();
        assert_eq!(a.get_or("k", 3usize), 3);
    }
}
