//! Machine-readable serving-performance reports (`BENCH_serve.json`).
//!
//! `bench_feed` tracks the *in-process* feed path; the serving workload
//! adds framing, loopback TCP, the bounded queue and backpressure on top.
//! [`ServeBenchReport`] captures one run of the `bench_serve` binary: per
//! configuration (framework × front-end × connections × in-flight window
//! × pool threads) the sustained end-to-end ingest rate over loopback,
//! the engine-side feed time, and the queue behaviour (max depth, busy
//! retries).
//!
//! Like `BENCH_feed.json`, the document is written by a small hand-rolled
//! writer (the vendored `serde` is a no-op stub) and versioned via the
//! `schema` field.  Schema `rtim-bench-serve/v2` adds the `front_end`,
//! `connections` and `in_flight` fields for the readiness-driven
//! multiplexed front-end (v1's `clients` is renamed `connections`);
//! schema `rtim-bench-serve/v3` adds the `scrapes` field — the number of
//! `/metrics` scrapes a sidecar-polling thread completed (and validated
//! as well-formed Prometheus text) concurrently with the measured run,
//! `0` for runs without a scraper; schema `rtim-bench-serve/v4` adds the
//! per-stage tracing breakdown sourced from a wire `TRACE` dump taken at
//! the end of the run — `stage_*_nanos` are the cumulative sampled span
//! nanoseconds per pipeline stage, `trace_events` the total spans
//! recorded and `slow_ops` the retained slow-op count (all `0` for runs
//! without tracing).  CI smoke-runs the emission path.

use rtim_core::EngineStats;
use rtim_stream::trace::{TraceDump, TraceStage};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Schema identifier of the emitted JSON document.
pub const SERVE_SCHEMA: &str = "rtim-bench-serve/v4";

/// The fixed configuration of one served run, before it executes.
#[derive(Debug, Clone)]
pub struct ServeSetup {
    /// Run label, e.g. `"sic_el_x64_w16_t1"`.
    pub name: String,
    /// Framework name (`"SIC"` / `"IC"`).
    pub framework: String,
    /// Server front-end (`"event-loop"` / `"threaded"`).
    pub front_end: String,
    /// Worker threads backing the checkpoint set (1 = sequential).
    pub threads: usize,
    /// Concurrent client connections (sockets, not driver threads).
    pub connections: usize,
    /// Pipelined `INGEST` frames in flight per connection (1 = lockstep).
    pub in_flight: usize,
    /// Actions per `INGEST` frame.
    pub batch: usize,
    /// Bounded queue capacity (commands).
    pub capacity: usize,
}

impl ServeSetup {
    /// Assembles the run record from the drained server stats.
    pub fn finish(
        self,
        stats: &EngineStats,
        wall_nanos: u64,
        busy_retries: u64,
        queries: u64,
    ) -> ServeRun {
        let wall_secs = wall_nanos as f64 / 1e9;
        ServeRun {
            setup: self,
            actions: stats.actions,
            wall_nanos,
            actions_per_sec: if wall_secs > 0.0 {
                stats.actions as f64 / wall_secs
            } else {
                0.0
            },
            feed_nanos: stats.feed_nanos,
            query_nanos: stats.query_nanos,
            max_queue_depth: stats.max_queue_depth,
            busy_retries,
            queries,
            scrapes: 0,
            stage_parse_nanos: 0,
            stage_queue_wait_nanos: 0,
            stage_journal_nanos: 0,
            stage_resolve_nanos: 0,
            stage_shard_feed_nanos: 0,
            stage_oracle_query_nanos: 0,
            stage_reply_drain_nanos: 0,
            trace_events: 0,
            slow_ops: 0,
        }
    }
}

/// One served run: N loopback connections streaming into one server.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// The configuration that produced this run.
    pub setup: ServeSetup,
    /// Total actions acknowledged and processed.
    pub actions: u64,
    /// Wall-clock nanoseconds of the measured phase.  Baseline-grid runs
    /// clock first ingest to drained shutdown; connection-scaling runs
    /// clock the serving phase only (first frame to last `ACK`), since
    /// the engine drain is identical across front-end configurations.
    pub wall_nanos: u64,
    /// Sustained rate over the measured phase: actions per second.
    pub actions_per_sec: f64,
    /// Engine-side feed nanoseconds (resolution + window + checkpoints).
    pub feed_nanos: u64,
    /// Engine-side query nanoseconds.
    pub query_nanos: u64,
    /// Maximum queue depth observed at any dequeue.
    pub max_queue_depth: u64,
    /// `BUSY` replies absorbed by the clients (threaded front-end only;
    /// the event loop parks instead of bouncing).
    pub busy_retries: u64,
    /// Mid-run `QUERY` round-trips issued by the observer client.
    pub queries: u64,
    /// `/metrics` scrapes completed (and validated as well-formed
    /// Prometheus text) concurrently with the run; `0` when no scraper
    /// polled the sidecar.
    pub scrapes: u64,
    /// Cumulative sampled parse-span nanoseconds (v4, `0` untraced).
    pub stage_parse_nanos: u64,
    /// Cumulative sampled queue-wait nanoseconds (v4, `0` untraced).
    pub stage_queue_wait_nanos: u64,
    /// Cumulative sampled journal-append nanoseconds (v4, `0` untraced).
    pub stage_journal_nanos: u64,
    /// Cumulative sampled resolve nanoseconds (v4, `0` untraced).
    pub stage_resolve_nanos: u64,
    /// Cumulative sampled shard fan-out nanoseconds (v4, `0` untraced).
    pub stage_shard_feed_nanos: u64,
    /// Cumulative sampled oracle-query nanoseconds (v4, `0` untraced).
    pub stage_oracle_query_nanos: u64,
    /// Cumulative sampled reply-drain nanoseconds (v4, `0` untraced).
    pub stage_reply_drain_nanos: u64,
    /// Total spans recorded across all stages (v4, `0` untraced).
    pub trace_events: u64,
    /// Slow ops retained at the end of the run (v4, `0` untraced).
    pub slow_ops: u64,
}

impl ServeRun {
    /// Stamps the concurrent-scrape count (see [`ServeRun::scrapes`]).
    pub fn with_scrapes(mut self, scrapes: u64) -> Self {
        self.scrapes = scrapes;
        self
    }

    /// Stamps the v4 per-stage tracing breakdown from a wire `TRACE`
    /// dump taken at the end of the run.
    pub fn with_trace(mut self, dump: &TraceDump) -> Self {
        let nanos = |stage: TraceStage| dump.stage_totals[stage.code() as usize].1;
        self.stage_parse_nanos = nanos(TraceStage::Parse);
        self.stage_queue_wait_nanos = nanos(TraceStage::QueueWait);
        self.stage_journal_nanos = nanos(TraceStage::JournalAppend);
        self.stage_resolve_nanos = nanos(TraceStage::Resolve);
        self.stage_shard_feed_nanos = nanos(TraceStage::ShardFeed);
        self.stage_oracle_query_nanos = nanos(TraceStage::OracleQuery);
        self.stage_reply_drain_nanos = nanos(TraceStage::ReplyDrain);
        self.trace_events = dump.stage_totals.iter().map(|&(count, _)| count).sum();
        self.slow_ops = dump.slow_ops.len() as u64;
        self
    }
}

/// The complete `BENCH_serve.json` document.
#[derive(Debug, Clone, Default)]
pub struct ServeBenchReport {
    /// Served runs, in execution order.
    pub runs: Vec<ServeRun>,
}

impl ServeBenchReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders the document as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(SERVE_SCHEMA));
        out.push_str("  \"runs\": [");
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"name\": {}, ", json_str(&run.setup.name));
            let _ = write!(out, "\"framework\": {}, ", json_str(&run.setup.framework));
            let _ = write!(out, "\"front_end\": {}, ", json_str(&run.setup.front_end));
            let _ = write!(out, "\"threads\": {}, ", run.setup.threads);
            let _ = write!(out, "\"connections\": {}, ", run.setup.connections);
            let _ = write!(out, "\"in_flight\": {}, ", run.setup.in_flight);
            let _ = write!(out, "\"batch\": {}, ", run.setup.batch);
            let _ = write!(out, "\"capacity\": {}, ", run.setup.capacity);
            let _ = write!(out, "\"actions\": {}, ", run.actions);
            let _ = write!(out, "\"wall_nanos\": {}, ", run.wall_nanos);
            let _ = write!(out, "\"actions_per_sec\": {}, ", json_f64(run.actions_per_sec));
            let _ = write!(out, "\"feed_nanos\": {}, ", run.feed_nanos);
            let _ = write!(out, "\"query_nanos\": {}, ", run.query_nanos);
            let _ = write!(out, "\"max_queue_depth\": {}, ", run.max_queue_depth);
            let _ = write!(out, "\"busy_retries\": {}, ", run.busy_retries);
            let _ = write!(out, "\"queries\": {}, ", run.queries);
            let _ = write!(out, "\"scrapes\": {}, ", run.scrapes);
            let _ = write!(out, "\"stage_parse_nanos\": {}, ", run.stage_parse_nanos);
            let _ = write!(
                out,
                "\"stage_queue_wait_nanos\": {}, ",
                run.stage_queue_wait_nanos
            );
            let _ = write!(out, "\"stage_journal_nanos\": {}, ", run.stage_journal_nanos);
            let _ = write!(out, "\"stage_resolve_nanos\": {}, ", run.stage_resolve_nanos);
            let _ = write!(
                out,
                "\"stage_shard_feed_nanos\": {}, ",
                run.stage_shard_feed_nanos
            );
            let _ = write!(
                out,
                "\"stage_oracle_query_nanos\": {}, ",
                run.stage_oracle_query_nanos
            );
            let _ = write!(
                out,
                "\"stage_reply_drain_nanos\": {}, ",
                run.stage_reply_drain_nanos
            );
            let _ = write!(out, "\"trace_events\": {}, ", run.trace_events);
            let _ = write!(out, "\"slow_ops\": {}", run.slow_ops);
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the document to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// JSON string literal with the escapes the labels here can contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite JSON number (JSON has no NaN/Inf; those become null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(actions: u64) -> EngineStats {
        EngineStats {
            actions,
            feed_nanos: 1_000,
            max_queue_depth: 7,
            ..EngineStats::default()
        }
    }

    fn setup(name: &str, framework: &str, connections: usize, in_flight: usize) -> ServeSetup {
        ServeSetup {
            name: name.into(),
            framework: framework.into(),
            front_end: "event-loop".into(),
            threads: 1,
            connections,
            in_flight,
            batch: 500,
            capacity: 64,
        }
    }

    #[test]
    fn run_derives_sustained_rate() {
        let run = setup("sic_el_x4_w1_t1", "SIC", 4, 1).finish(&stats(1_000), 2_000_000_000, 3, 9);
        assert_eq!(run.actions, 1_000);
        assert_eq!(run.actions_per_sec, 500.0);
        assert_eq!(run.max_queue_depth, 7);
        assert_eq!(run.busy_retries, 3);
        assert_eq!(run.setup.connections, 4);
    }

    #[test]
    fn json_carries_schema_and_v4_fields() {
        let mut dump = TraceDump::default();
        dump.stage_totals[TraceStage::Parse.code() as usize] = (3, 111);
        dump.stage_totals[TraceStage::QueueWait.code() as usize] = (3, 222);
        dump.stage_totals[TraceStage::OracleQuery.code() as usize] = (1, 333);
        dump.slow_ops.push(rtim_stream::trace::SlowOp {
            conn: 1,
            corr: 2,
            kind: 0x01,
            start_nanos: 0,
            total_nanos: 999,
            stages: [0; rtim_stream::trace::SLOW_STAGES],
        });
        let mut report = ServeBenchReport::new();
        report.runs.push(
            setup("sic_el_x64_w16_t1", "SIC", 64, 16)
                .finish(&stats(42), 1, 0, 1)
                .with_scrapes(12)
                .with_trace(&dump),
        );
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"rtim-bench-serve/v4\""));
        assert!(json.contains("\"name\": \"sic_el_x64_w16_t1\""));
        assert!(json.contains("\"front_end\": \"event-loop\""));
        assert!(json.contains("\"connections\": 64"));
        assert!(json.contains("\"in_flight\": 16"));
        assert!(json.contains("\"actions\": 42"));
        assert!(json.contains("\"scrapes\": 12"));
        assert!(json.contains("\"stage_parse_nanos\": 111"));
        assert!(json.contains("\"stage_queue_wait_nanos\": 222"));
        assert!(json.contains("\"stage_oracle_query_nanos\": 333"));
        assert!(json.contains("\"stage_journal_nanos\": 0"));
        assert!(json.contains("\"trace_events\": 7"));
        assert!(json.contains("\"slow_ops\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn untraced_runs_emit_zeroed_stage_fields() {
        let run = setup("x", "SIC", 1, 1).finish(&stats(5), 1, 0, 0);
        let json = ServeBenchReport { runs: vec![run] }.to_json();
        assert!(json.contains("\"stage_parse_nanos\": 0"));
        assert!(json.contains("\"stage_reply_drain_nanos\": 0"));
        assert!(json.contains("\"trace_events\": 0"));
        assert!(json.contains("\"slow_ops\": 0"));
    }

    #[test]
    fn zero_wall_time_is_not_a_division_crash() {
        let run = setup("x", "SIC", 1, 1).finish(&stats(5), 0, 0, 0);
        assert_eq!(run.actions_per_sec, 0.0);
        assert!(ServeBenchReport { runs: vec![run] }.to_json().contains("\"actions_per_sec\": 0"));
    }
}
