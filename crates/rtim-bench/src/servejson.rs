//! Machine-readable serving-performance reports (`BENCH_serve.json`).
//!
//! `bench_feed` tracks the *in-process* feed path; the serving workload
//! adds framing, loopback TCP, the bounded queue and backpressure on top.
//! [`ServeBenchReport`] captures one run of the `bench_serve` binary: per
//! configuration (framework × clients × pool threads) the sustained
//! end-to-end ingest rate over loopback, the engine-side feed time, and
//! the queue behaviour (max depth, busy retries).
//!
//! Like `BENCH_feed.json`, the document is written by a small hand-rolled
//! writer (the vendored `serde` is a no-op stub) and versioned via the
//! `schema` field (`rtim-bench-serve/v1`); CI smoke-runs the emission
//! path.

use rtim_core::EngineStats;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Schema identifier of the emitted JSON document.
pub const SERVE_SCHEMA: &str = "rtim-bench-serve/v1";

/// One served run: N loopback clients streaming into one server.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Run label, e.g. `"sic_c4_t1"`.
    pub name: String,
    /// Framework name (`"SIC"` / `"IC"`).
    pub framework: String,
    /// Worker threads backing the checkpoint set (1 = sequential).
    pub threads: usize,
    /// Concurrent ingest clients.
    pub clients: usize,
    /// Actions per `INGEST` frame.
    pub batch: usize,
    /// Bounded queue capacity (commands).
    pub capacity: usize,
    /// Total actions acknowledged and processed.
    pub actions: u64,
    /// Wall-clock nanoseconds from first ingest to drained shutdown.
    pub wall_nanos: u64,
    /// Sustained end-to-end rate: actions per wall-clock second.
    pub actions_per_sec: f64,
    /// Engine-side feed nanoseconds (resolution + window + checkpoints).
    pub feed_nanos: u64,
    /// Engine-side query nanoseconds.
    pub query_nanos: u64,
    /// Maximum queue depth observed at any dequeue.
    pub max_queue_depth: u64,
    /// `BUSY` replies absorbed by the clients (backpressure events).
    pub busy_retries: u64,
    /// Mid-run `QUERY` round-trips issued by the observer client.
    pub queries: u64,
}

impl ServeRun {
    /// Assembles a run record from the drained server stats.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        framework: impl Into<String>,
        threads: usize,
        clients: usize,
        batch: usize,
        capacity: usize,
        stats: &EngineStats,
        wall_nanos: u64,
        busy_retries: u64,
        queries: u64,
    ) -> ServeRun {
        let wall_secs = wall_nanos as f64 / 1e9;
        ServeRun {
            name: name.into(),
            framework: framework.into(),
            threads,
            clients,
            batch,
            capacity,
            actions: stats.actions,
            wall_nanos,
            actions_per_sec: if wall_secs > 0.0 {
                stats.actions as f64 / wall_secs
            } else {
                0.0
            },
            feed_nanos: stats.feed_nanos,
            query_nanos: stats.query_nanos,
            max_queue_depth: stats.max_queue_depth,
            busy_retries,
            queries,
        }
    }
}

/// The complete `BENCH_serve.json` document.
#[derive(Debug, Clone, Default)]
pub struct ServeBenchReport {
    /// Served runs, in execution order.
    pub runs: Vec<ServeRun>,
}

impl ServeBenchReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders the document as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(SERVE_SCHEMA));
        out.push_str("  \"runs\": [");
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"name\": {}, ", json_str(&run.name));
            let _ = write!(out, "\"framework\": {}, ", json_str(&run.framework));
            let _ = write!(out, "\"threads\": {}, ", run.threads);
            let _ = write!(out, "\"clients\": {}, ", run.clients);
            let _ = write!(out, "\"batch\": {}, ", run.batch);
            let _ = write!(out, "\"capacity\": {}, ", run.capacity);
            let _ = write!(out, "\"actions\": {}, ", run.actions);
            let _ = write!(out, "\"wall_nanos\": {}, ", run.wall_nanos);
            let _ = write!(out, "\"actions_per_sec\": {}, ", json_f64(run.actions_per_sec));
            let _ = write!(out, "\"feed_nanos\": {}, ", run.feed_nanos);
            let _ = write!(out, "\"query_nanos\": {}, ", run.query_nanos);
            let _ = write!(out, "\"max_queue_depth\": {}, ", run.max_queue_depth);
            let _ = write!(out, "\"busy_retries\": {}, ", run.busy_retries);
            let _ = write!(out, "\"queries\": {}", run.queries);
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the document to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// JSON string literal with the escapes the labels here can contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite JSON number (JSON has no NaN/Inf; those become null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(actions: u64) -> EngineStats {
        EngineStats {
            actions,
            feed_nanos: 1_000,
            max_queue_depth: 7,
            ..EngineStats::default()
        }
    }

    #[test]
    fn run_derives_sustained_rate() {
        let run = ServeRun::new("sic_c4_t1", "SIC", 1, 4, 500, 64, &stats(1_000), 2_000_000_000, 3, 9);
        assert_eq!(run.actions, 1_000);
        assert_eq!(run.actions_per_sec, 500.0);
        assert_eq!(run.max_queue_depth, 7);
        assert_eq!(run.busy_retries, 3);
    }

    #[test]
    fn json_carries_schema_and_runs() {
        let mut report = ServeBenchReport::new();
        report
            .runs
            .push(ServeRun::new("ic_c2_t4", "IC", 4, 2, 100, 8, &stats(42), 1, 0, 1));
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"rtim-bench-serve/v1\""));
        assert!(json.contains("\"name\": \"ic_c2_t4\""));
        assert!(json.contains("\"actions\": 42"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn zero_wall_time_is_not_a_division_crash() {
        let run = ServeRun::new("x", "SIC", 1, 1, 1, 1, &stats(5), 0, 0, 0);
        assert_eq!(run.actions_per_sec, 0.0);
        assert!(ServeBenchReport { runs: vec![run] }.to_json().contains("\"actions_per_sec\": 0"));
    }
}
