//! Per-element update latency of the candidate checkpoint oracles (Table 2).
//!
//! Feeds each oracle a fixed synthetic set-stream (random influence sets of
//! realistic sizes) and measures the cost of processing the whole stream,
//! i.e. the aggregate of per-element updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtim_stream::{InfluenceSet, UserId};
use rtim_submodular::{DenseWeights, OracleConfig, OracleKind};
use std::time::Duration;

/// A synthetic set-stream: (candidate user, influence set) pairs whose set
/// sizes follow the shallow-cascade profile of the real datasets.
fn synthetic_elements(n: usize, universe: u32, seed: u64) -> Vec<(UserId, InfluenceSet)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let user = UserId(rng.gen_range(0..universe));
            let size = 1 + (rng.gen::<f64>().powi(3) * 20.0) as usize;
            let set: InfluenceSet = (0..size)
                .map(|_| UserId(rng.gen_range(0..universe)))
                .collect();
            (user, set)
        })
        .collect()
}

fn bench_oracles(c: &mut Criterion) {
    let elements = synthetic_elements(2_000, 5_000, 7);
    let mut group = c.benchmark_group("oracle_update");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for oracle in OracleKind::all() {
        group.bench_with_input(
            BenchmarkId::new("stream_2000_elements", oracle.name()),
            &oracle,
            |b, &kind| {
                b.iter(|| {
                    let mut o = kind.build(OracleConfig::new(50, 0.1));
                    for (u, set) in &elements {
                        o.process(*u, set, &DenseWeights::Unit);
                    }
                    o.value()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_oracles);
criterion_main!(benches);
