//! Bitmap coverage state vs. the retained hash-set baseline.
//!
//! Runs the shared `covbench` workload (the SieveStreaming-shaped mix of
//! marginal-gain probes and absorbs over small-vec and bitmap-promoted
//! influence sets) through both implementations.  The bitmap layout must
//! not regress against the `HashSet<UserId>` baseline it replaced — the
//! same comparison the `bench_feed` binary records into `BENCH_feed.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtim_bench::{bitmap_pass, coverage_workload, hashset_pass};
use std::time::Duration;

fn bench_coverage_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("coverage_ops");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    for &(n_sets, universe) in &[(400usize, 5_000u32), (400, 50_000)] {
        let sets = coverage_workload(n_sets, universe, 7);
        group.bench_with_input(
            BenchmarkId::new("bitmap", format!("u{universe}")),
            &sets,
            |b, sets| {
                b.iter(|| bitmap_pass(sets));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hashset", format!("u{universe}")),
            &sets,
            |b, sets| {
                b.iter(|| hashset_pass(sets));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_coverage_ops);
criterion_main!(benches);
