//! Influence-graph substrate costs: window-graph construction, RR-set
//! sampling and Monte-Carlo spread estimation (the machinery behind the
//! quality metric and the IMM/UBI baselines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtim_datagen::{DatasetConfig, DatasetKind, Scale};
use rtim_graph::{build_window_graph, greedy_over_rr_sets, monte_carlo_spread, RrCollection};
use rtim_stream::{PropagationIndex, SlidingWindow, UserId};
use std::time::Duration;

fn window_fixture(n: usize) -> (SlidingWindow, PropagationIndex) {
    let stream = DatasetConfig::new(DatasetKind::Reddit, Scale::Small)
        .with_users(3_000)
        .with_actions(n as u64)
        .generate();
    let mut window = SlidingWindow::new(n);
    let mut index = PropagationIndex::new();
    for a in stream.iter() {
        index.insert(a);
        window.push(*a);
    }
    (window, index)
}

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for n in [2_000usize, 8_000] {
        let (window, index) = window_fixture(n);
        group.bench_with_input(BenchmarkId::new("window_graph", n), &n, |b, _| {
            b.iter(|| build_window_graph(&window, &index).edge_count());
        });
    }
    group.finish();
}

fn bench_sampling_and_spread(c: &mut Criterion) {
    let (window, index) = window_fixture(8_000);
    let graph = build_window_graph(&window, &index);
    let seeds: Vec<UserId> = graph.users().iter().copied().take(20).collect();
    let mut group = c.benchmark_group("graph_estimators");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    group.bench_function("rr_sample_5000", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut rr = RrCollection::new(graph.node_count());
            rr.sample_to(&graph, 5_000, &mut rng);
            greedy_over_rr_sets(&graph, &rr, 20).1
        });
    });

    group.bench_function("mc_spread_1000_rounds", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            monte_carlo_spread(&graph, &seeds, 1_000, &mut rng)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_graph_build, bench_sampling_and_spread);
criterion_main!(benches);
