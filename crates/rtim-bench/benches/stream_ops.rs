//! Stream-substrate costs: propagation-index arrival work, window
//! maintenance, and from-scratch window influence-set computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtim_datagen::{DatasetConfig, DatasetKind, Scale};
use rtim_stream::{window_influence_sets, PropagationIndex, SlidingWindow, SocialStream};
use std::time::Duration;

fn stream(kind: DatasetKind, actions: u64) -> SocialStream {
    DatasetConfig::new(kind, Scale::Small)
        .with_users(3_000)
        .with_actions(actions)
        .generate()
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_ingest");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for kind in [DatasetKind::Reddit, DatasetKind::Twitter, DatasetKind::SynN] {
        let s = stream(kind, 20_000);
        group.throughput(criterion::Throughput::Elements(s.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("propagation_and_window", kind.name()),
            &s,
            |b, s| {
                b.iter(|| {
                    let mut index = PropagationIndex::new();
                    let mut window = SlidingWindow::new(5_000);
                    for a in s.iter() {
                        index.insert(a);
                        window.push(*a);
                    }
                    (index.retained(), window.active_user_count())
                });
            },
        );
    }
    group.finish();
}

fn bench_window_influence_sets(c: &mut Criterion) {
    let s = stream(DatasetKind::Reddit, 8_000);
    let mut index = PropagationIndex::new();
    let mut window = SlidingWindow::new(8_000);
    for a in s.iter() {
        index.insert(a);
        window.push(*a);
    }
    let mut group = c.benchmark_group("window_influence_sets");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    group.bench_function("recompute_8000_actions", |b| {
        b.iter(|| window_influence_sets(&window, &index).total_facts());
    });
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_window_influence_sets);
criterion_main!(benches);
