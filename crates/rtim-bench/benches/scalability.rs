//! Scalability of IC/SIC in window size N and slide length L (the micro
//! view of Figures 10 and 11), plus the feed-strategy comparison: the
//! persistent [`ShardPool`] against the legacy per-slide scoped-thread
//! fan-out it replaced, at 1/2/4/8 workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtim_core::parallel::feed_all_scoped;
use rtim_core::{
    Checkpoint, FrameworkKind, ResolvedAction, ShardPool, SimConfig, SimEngine,
};
use rtim_datagen::{DatasetConfig, DatasetKind, Scale};
use rtim_stream::{SocialStream, UserId};
use rtim_submodular::{DenseWeights, OracleConfig, OracleKind};
use std::time::Duration;

fn stream() -> SocialStream {
    DatasetConfig::new(DatasetKind::SynO, Scale::Small)
        .with_users(2_000)
        .with_actions(8_000)
        .generate()
}

fn run(stream: &SocialStream, kind: FrameworkKind, config: SimConfig) -> f64 {
    let mut engine = SimEngine::new(config, kind);
    engine.run_stream(stream).final_solution().value
}

fn bench_window_size(c: &mut Criterion) {
    let stream = stream();
    let mut group = c.benchmark_group("scalability_window_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    for kind in [FrameworkKind::Sic, FrameworkKind::Ic] {
        for n in [500usize, 1_000, 2_000, 4_000] {
            let config = SimConfig::new(20, 0.1, n, 100);
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &config, |b, &config| {
                b.iter(|| run(&stream, kind, config));
            });
        }
    }
    group.finish();
}

fn bench_slide_length(c: &mut Criterion) {
    let stream = stream();
    let mut group = c.benchmark_group("scalability_slide_length");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    for kind in [FrameworkKind::Sic, FrameworkKind::Ic] {
        for l in [50usize, 100, 200, 400] {
            let config = SimConfig::new(20, 0.1, 2_000, l);
            group.bench_with_input(BenchmarkId::new(kind.name(), l), &config, |b, &config| {
                b.iter(|| run(&stream, kind, config));
            });
        }
    }
    group.finish();
}

/// The feeding workload of the strategy comparison: `CHECKPOINTS` live
/// checkpoints (the IC steady state for N = 2 000, L = 125), `SLIDES`
/// window slides of `SLIDE_LEN` resolved actions each.
const CHECKPOINTS: usize = 16;
const SLIDES: usize = 40;
const SLIDE_LEN: usize = 25;

fn resolved_slides() -> Vec<Vec<ResolvedAction>> {
    (0..SLIDES)
        .map(|s| {
            (0..SLIDE_LEN)
                .map(|i| {
                    // Ids start after every checkpoint's start position, so
                    // each checkpoint may observe every action.
                    let t = (CHECKPOINTS + s * SLIDE_LEN + i + 1) as u64;
                    ResolvedAction {
                        id: t,
                        actor: UserId((t % 97) as u32),
                        ancestors: if t.is_multiple_of(3) {
                            vec![UserId(((t + 1) % 97) as u32)]
                        } else {
                            Vec::new()
                        },
                    }
                })
                .collect()
        })
        .collect()
}

fn fresh_checkpoints() -> Vec<Checkpoint> {
    // Distinct start ids (required by the pool's assignment map), all
    // preceding the first action id.
    (0..CHECKPOINTS)
        .map(|i| {
            Checkpoint::new(
                1 + i as u64,
                OracleKind::SieveStreaming,
                OracleConfig::new(5 + (i % 4), 0.2),
            )
        })
        .collect()
}

/// Persistent worker pool vs. per-slide `std::thread::scope` fan-out: the
/// scoped path pays thread startup on every one of the `SLIDES` slides, the
/// pool spawns its workers once per run.  The pool must be no slower at
/// every thread count (and pulls ahead as slides shrink or threads grow).
fn bench_feed_strategy(c: &mut Criterion) {
    let slides = resolved_slides();
    let mut group = c.benchmark_group("scalability_feed_strategy");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("scoped_per_slide", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut cps = fresh_checkpoints();
                    for slide in &slides {
                        feed_all_scoped(&mut cps, slide, threads, &DenseWeights::Unit);
                    }
                    cps.iter().map(|c| c.value()).sum::<f64>()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("persistent_pool", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut pool = ShardPool::new(threads);
                    for cp in fresh_checkpoints() {
                        pool.add(cp);
                    }
                    let mut total = 0.0;
                    for slide in &slides {
                        total = pool.feed(slide, None).iter().map(|s| s.value).sum::<f64>();
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_window_size, bench_slide_length, bench_feed_strategy);
criterion_main!(benches);
