//! Scalability of IC/SIC in window size N and slide length L (the micro
//! view of Figures 10 and 11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtim_core::{FrameworkKind, SimConfig, SimEngine};
use rtim_datagen::{DatasetConfig, DatasetKind, Scale};
use rtim_stream::SocialStream;
use std::time::Duration;

fn stream() -> SocialStream {
    DatasetConfig::new(DatasetKind::SynO, Scale::Small)
        .with_users(2_000)
        .with_actions(8_000)
        .generate()
}

fn run(stream: &SocialStream, kind: FrameworkKind, config: SimConfig) -> f64 {
    let mut engine = SimEngine::new(config, kind);
    for slide in stream.batches(config.slide) {
        engine.process_slide(slide);
    }
    engine.query().value
}

fn bench_window_size(c: &mut Criterion) {
    let stream = stream();
    let mut group = c.benchmark_group("scalability_window_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    for kind in [FrameworkKind::Sic, FrameworkKind::Ic] {
        for n in [500usize, 1_000, 2_000, 4_000] {
            let config = SimConfig::new(20, 0.1, n, 100);
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &config, |b, &config| {
                b.iter(|| run(&stream, kind, config));
            });
        }
    }
    group.finish();
}

fn bench_slide_length(c: &mut Criterion) {
    let stream = stream();
    let mut group = c.benchmark_group("scalability_slide_length");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    for kind in [FrameworkKind::Sic, FrameworkKind::Ic] {
        for l in [50usize, 100, 200, 400] {
            let config = SimConfig::new(20, 0.1, 2_000, l);
            group.bench_with_input(BenchmarkId::new(kind.name(), l), &config, |b, &config| {
                b.iter(|| run(&stream, kind, config));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_window_size, bench_slide_length);
criterion_main!(benches);
