//! Per-window cost of the baselines (Greedy, IMM, UBI) versus a SIC run
//! over the same data (the micro view of Figure 9's ordering).
//!
//! Each baseline is measured on the task it performs per window slide:
//! Greedy recomputes the SIM answer from the exact window influence sets,
//! IMM re-runs RIS sampling + selection on the window influence graph, UBI
//! refreshes its sketches and applies interchange steps.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtim_baselines::{GreedySim, Imm, Ubi, UbiConfig};
use rtim_core::{FrameworkKind, SimConfig, SimEngine};
use rtim_datagen::{DatasetConfig, DatasetKind, Scale};
use rtim_graph::build_window_graph;
use rtim_stream::{window_influence_sets, PropagationIndex, SlidingWindow};
use std::time::Duration;

struct WindowFixture {
    window: SlidingWindow,
    index: PropagationIndex,
}

/// Builds a full window of realistic synthetic actions.
fn fixture(n: usize) -> WindowFixture {
    let stream = DatasetConfig::new(DatasetKind::SynN, Scale::Small)
        .with_users(2_000)
        .with_actions(n as u64)
        .generate();
    let mut window = SlidingWindow::new(n);
    let mut index = PropagationIndex::new();
    for a in stream.iter() {
        index.insert(a);
        window.push(*a);
    }
    WindowFixture { window, index }
}

fn bench_baseline_per_window(c: &mut Criterion) {
    let fx = fixture(4_000);
    let k = 20;
    let mut group = c.benchmark_group("baseline_per_window");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));

    group.bench_function("greedy_recompute", |b| {
        let greedy = GreedySim::new(k);
        b.iter(|| {
            let influence = window_influence_sets(&fx.window, &fx.index);
            greedy.select(&influence).value
        });
    });

    group.bench_function("imm_rerun", |b| {
        let imm = Imm::new(k).with_max_rr_sets(20_000);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let graph = build_window_graph(&fx.window, &fx.index);
            imm.select(&graph, &mut rng).estimated_spread
        });
    });

    group.bench_function("ubi_update", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut ubi = Ubi::new(UbiConfig::new(k).with_rr_sets(2_000));
            let graph = build_window_graph(&fx.window, &fx.index);
            ubi.update(&graph, &mut rng)
        });
    });

    // Reference point: the cost of a full SIC pass over the same data.
    group.bench_function("sic_full_pass_reference", |b| {
        let stream = DatasetConfig::new(DatasetKind::SynN, Scale::Small)
            .with_users(2_000)
            .with_actions(4_000)
            .generate();
        let config = SimConfig::new(k, 0.1, 4_000, 200);
        b.iter(|| {
            let mut engine = SimEngine::new(config, FrameworkKind::Sic);
            engine.run_stream(&stream).final_solution().value
        });
    });
    group.finish();
}

criterion_group!(benches, bench_baseline_per_window);
criterion_main!(benches);
