//! Per-slide latency of IC vs SIC across β (the micro view of Figure 7).
//!
//! Processes a fixed synthetic stream through each framework and measures
//! the total processing time, which is dominated by the per-slide checkpoint
//! updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtim_core::{FrameworkKind, SimConfig, SimEngine};
use rtim_datagen::{DatasetConfig, DatasetKind, Scale};
use rtim_stream::SocialStream;
use std::time::Duration;

fn stream() -> SocialStream {
    DatasetConfig::new(DatasetKind::SynN, Scale::Small)
        .with_users(2_000)
        .with_actions(6_000)
        .generate()
}

fn bench_frameworks(c: &mut Criterion) {
    let stream = stream();
    let mut group = c.benchmark_group("window_slide");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500))
        .throughput(criterion::Throughput::Elements(stream.len() as u64));

    for kind in [FrameworkKind::Sic, FrameworkKind::Ic] {
        for beta in [0.1, 0.3, 0.5] {
            let config = SimConfig::new(20, beta, 1_500, 100);
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("beta_{beta}")),
                &config,
                |b, &config| {
                    b.iter(|| {
                        let mut engine = SimEngine::new(config, kind);
                        engine.run_stream(&stream).final_solution().value
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_frameworks);
criterion_main!(benches);
