//! Property-based tests of the influence-graph substrate: WC construction
//! invariants, spread-estimator consistency, and R-MAT structure.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtim_graph::{
    build_window_graph, greedy_over_rr_sets, monte_carlo_spread, InfluenceGraph, RmatConfig,
    RmatGraph, RrCollection,
};
use rtim_stream::{Action, PropagationIndex, SlidingWindow, UserId};

fn arb_actions(max_len: usize, users: u32) -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec((0u32..users, prop::option::of(0.0f64..1.0)), 1..max_len).prop_map(
        |specs| {
            let mut actions = Vec::with_capacity(specs.len());
            for (i, (user, parent)) in specs.into_iter().enumerate() {
                let t = (i + 1) as u64;
                match parent {
                    Some(f) if i > 0 => {
                        let p = 1 + (f * i as f64).floor() as u64;
                        actions.push(Action::reply(t, user, p.min(t - 1)));
                    }
                    _ => actions.push(Action::root(t, user)),
                }
            }
            actions
        },
    )
}

/// A random small probability graph described as an edge list.
fn arb_graph(users: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec((0..users, 0..users, 0.0f64..1.0), 1..max_edges)
}

fn build(edges: &[(u32, u32, f64)]) -> InfluenceGraph {
    let mut g = InfluenceGraph::new();
    for &(u, v, p) in edges {
        if u != v {
            g.add_edge(UserId(u), UserId(v), p);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Window influence graphs: WC in-probabilities sum to 1 per target, all
    /// nodes are active users, and edges only connect distinct users.
    #[test]
    fn window_graph_wc_invariants(actions in arb_actions(60, 10), n in 4usize..24) {
        let mut index = PropagationIndex::new();
        let mut window = SlidingWindow::new(n);
        for a in &actions {
            index.insert(a);
            window.push(*a);
        }
        let g = build_window_graph(&window, &index);
        // Every active user is a node; influencers whose own actions have
        // expired may appear as additional source-only nodes.
        prop_assert!(g.node_count() >= window.active_user_count());
        for u in window.active_users() {
            prop_assert!(g.node_of(u).is_some());
        }
        for i in 0..g.node_count() {
            if g.in_degree(i) > 0 {
                let sum: f64 = g.in_edges(i).iter().map(|&(_, p)| p).sum();
                prop_assert!((sum - 1.0).abs() < 1e-6, "in-prob sum {sum}");
            }
            for &(j, p) in g.out_edges(i) {
                prop_assert!(i != j, "self loop");
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    /// Monte-Carlo spread is bounded by the node count plus missing seeds,
    /// at least the number of distinct seeds, and monotone in the seed set.
    #[test]
    fn spread_bounds_and_monotonicity(edges in arb_graph(12, 40), k in 1usize..5) {
        let g = build(&edges);
        prop_assume!(g.node_count() >= 2);
        let mut rng = StdRng::seed_from_u64(5);
        let users: Vec<UserId> = g.users().to_vec();
        let seeds: Vec<UserId> = users.iter().copied().take(k).collect();
        let s = monte_carlo_spread(&g, &seeds, 200, &mut rng);
        prop_assert!(s >= seeds.len() as f64 - 1e-9);
        prop_assert!(s <= g.node_count() as f64 + 1e-9);
        // Monotonicity in expectation (tolerance for MC noise).
        if users.len() > k {
            let bigger: Vec<UserId> = users.iter().copied().take(k + 1).collect();
            let s2 = monte_carlo_spread(&g, &bigger, 2000, &mut rng);
            let s1 = monte_carlo_spread(&g, &seeds, 2000, &mut rng);
            prop_assert!(s2 + 0.35 * g.node_count() as f64 >= s1);
        }
    }

    /// RR-set coverage estimates agree with Monte-Carlo spread within a
    /// statistical tolerance.
    #[test]
    fn rr_estimate_tracks_monte_carlo(edges in arb_graph(10, 30)) {
        let g = build(&edges);
        prop_assume!(g.node_count() >= 3);
        let mut rng = StdRng::seed_from_u64(8);
        let seeds: Vec<UserId> = g.users().iter().copied().take(2).collect();
        let mut rr = RrCollection::new(g.node_count());
        rr.sample_to(&g, 8_000, &mut rng);
        let est = rr.estimate_spread(&g, &seeds);
        let mc = monte_carlo_spread(&g, &seeds, 8_000, &mut rng);
        prop_assert!((est - mc).abs() <= 0.12 * g.node_count() as f64 + 0.3,
            "rr {est} vs mc {mc}");
    }

    /// Greedy over RR sets never selects more than k nodes and its coverage
    /// fraction is monotone in k.
    #[test]
    fn rr_greedy_is_monotone_in_k(edges in arb_graph(12, 40)) {
        let g = build(&edges);
        prop_assume!(g.node_count() >= 3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut rr = RrCollection::new(g.node_count());
        rr.sample_to(&g, 2_000, &mut rng);
        let mut last = 0.0;
        for k in 1..=4usize {
            let (seeds, frac) = greedy_over_rr_sets(&g, &rr, k);
            prop_assert!(seeds.len() <= k);
            prop_assert!(frac + 1e-9 >= last);
            prop_assert!(frac <= 1.0 + 1e-9);
            last = frac;
        }
    }

    /// R-MAT generation produces the requested structure: no self loops, no
    /// duplicate edges, and determinism under a fixed seed.
    #[test]
    fn rmat_structure(users in 10u32..200, edges in 10usize..400, seed in 0u64..1000) {
        let cfg = RmatConfig::new(users, edges);
        let g1 = RmatGraph::generate(&cfg, &mut StdRng::seed_from_u64(seed));
        let g2 = RmatGraph::generate(&cfg, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g1.edge_count(), g2.edge_count());
        prop_assert!(g1.edge_count() <= edges);
        for u in 0..users {
            let ns = g1.out_neighbors(UserId(u));
            prop_assert_eq!(ns, g2.out_neighbors(UserId(u)));
            let mut sorted = ns.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), ns.len());
            prop_assert!(!ns.contains(&u));
        }
    }
}
