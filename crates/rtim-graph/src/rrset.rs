//! Reverse-reachable (RR) set sampling and coverage-based seed selection.
//!
//! An RR set for a uniformly random target `v` is the random set of nodes
//! that would have activated `v` under one realization of the Independent
//! Cascade model: it is produced by a reverse BFS from `v` where each
//! incoming edge `(u, w)` is traversed with probability `p(u, w)`.
//! Borgs et al. (2014) show that for any seed set `S`,
//! `σ(S) = n · E[S covers a random RR set]`, which is the foundation of the
//! IMM baseline and of UBI's fast spread estimates.

use crate::graph::InfluenceGraph;
use rand::Rng;
use rtim_stream::UserId;

/// A collection of sampled RR sets over a fixed influence graph.
#[derive(Debug, Clone, Default)]
pub struct RrCollection {
    /// Each RR set is a list of dense node indices.
    sets: Vec<Vec<usize>>,
    /// Number of nodes of the underlying graph (for spread scaling).
    nodes: usize,
}

impl RrCollection {
    /// Creates an empty collection for a graph with `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        RrCollection {
            sets: Vec::new(),
            nodes,
        }
    }

    /// Samples RR sets until the collection holds `target` of them.
    pub fn sample_to<R: Rng + ?Sized>(
        &mut self,
        graph: &InfluenceGraph,
        target: usize,
        rng: &mut R,
    ) {
        while self.sets.len() < target {
            self.sets.push(sample_rr_set(graph, rng));
        }
    }

    /// Number of RR sets currently held.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` if no RR set has been sampled.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Number of nodes of the underlying graph.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// The sampled RR sets.
    pub fn sets(&self) -> &[Vec<usize>] {
        &self.sets
    }

    /// Fraction of RR sets covered by the seed nodes.
    pub fn coverage_fraction(&self, seed_nodes: &[usize]) -> f64 {
        if self.sets.is_empty() {
            return 0.0;
        }
        let seed_set: std::collections::HashSet<usize> = seed_nodes.iter().copied().collect();
        let covered = self
            .sets
            .iter()
            .filter(|rr| rr.iter().any(|v| seed_set.contains(v)))
            .count();
        covered as f64 / self.sets.len() as f64
    }

    /// Spread estimate `n · F(S)` for the given seed users.
    pub fn estimate_spread(&self, graph: &InfluenceGraph, seeds: &[UserId]) -> f64 {
        let nodes = graph.nodes_of(seeds);
        self.nodes as f64 * self.coverage_fraction(&nodes)
    }
}

/// Samples a single RR set by reverse probabilistic BFS from a random node.
pub fn sample_rr_set<R: Rng + ?Sized>(graph: &InfluenceGraph, rng: &mut R) -> Vec<usize> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    let target = rng.gen_range(0..n);
    let mut visited = vec![false; n];
    visited[target] = true;
    let mut queue = vec![target];
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &(u, p) in graph.in_edges(v) {
            if !visited[u] && rng.gen_bool(p) {
                visited[u] = true;
                queue.push(u);
            }
        }
    }
    queue
}

/// Greedy maximum coverage over RR sets: selects up to `k` nodes covering the
/// largest number of RR sets.  Returns the selected users (mapped back from
/// dense indices) and the fraction of RR sets covered.
pub fn greedy_over_rr_sets(
    graph: &InfluenceGraph,
    rr: &RrCollection,
    k: usize,
) -> (Vec<UserId>, f64) {
    let n = graph.node_count();
    if n == 0 || rr.is_empty() || k == 0 {
        return (Vec::new(), 0.0);
    }
    // node -> indices of RR sets containing it
    let mut containing: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, set) in rr.sets().iter().enumerate() {
        for &v in set {
            containing[v].push(i as u32);
        }
    }
    let mut covered = vec![false; rr.len()];
    let mut degree: Vec<i64> = containing.iter().map(|c| c.len() as i64).collect();
    let mut selected: Vec<UserId> = Vec::with_capacity(k);
    let mut covered_count = 0usize;

    for _ in 0..k {
        // Pick the node covering the most uncovered RR sets (recompute its
        // effective degree lazily, CELF-style).
        let mut best: Option<(usize, i64)> = None;
        for v in 0..n {
            if degree[v] <= best.map_or(0, |(_, d)| d) {
                continue;
            }
            // Refresh degree.
            let fresh = containing[v]
                .iter()
                .filter(|&&i| !covered[i as usize])
                .count() as i64;
            degree[v] = fresh;
            if fresh > best.map_or(0, |(_, d)| d) {
                best = Some((v, fresh));
            }
        }
        let Some((v, gain)) = best else { break };
        if gain <= 0 {
            break;
        }
        for &i in &containing[v] {
            if !covered[i as usize] {
                covered[i as usize] = true;
                covered_count += 1;
            }
        }
        degree[v] = 0;
        selected.push(graph.user(v));
    }
    (selected, covered_count as f64 / rr.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spread::monte_carlo_spread;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn star_graph(leaves: u32) -> InfluenceGraph {
        // Hub user 0 activates each leaf with probability 1.
        let mut g = InfluenceGraph::new();
        for l in 1..=leaves {
            g.add_edge(UserId(0), UserId(l), 1.0);
        }
        g
    }

    #[test]
    fn rr_sets_from_deterministic_star_contain_hub() {
        let g = star_graph(5);
        let mut r = rng();
        for _ in 0..50 {
            let rr = sample_rr_set(&g, &mut r);
            let hub = g.node_of(UserId(0)).unwrap();
            assert!(rr.contains(&hub));
        }
    }

    #[test]
    fn greedy_over_rr_sets_picks_the_hub() {
        let g = star_graph(8);
        let mut rr = RrCollection::new(g.node_count());
        rr.sample_to(&g, 500, &mut rng());
        let (seeds, frac) = greedy_over_rr_sets(&g, &rr, 1);
        assert_eq!(seeds, vec![UserId(0)]);
        assert!((frac - 1.0).abs() < 1e-9);
        assert_eq!(rr.len(), 500);
    }

    #[test]
    fn rr_spread_estimate_matches_monte_carlo() {
        // Random-ish small graph; compare the two estimators.
        let mut g = InfluenceGraph::new();
        let edges = [
            (1u32, 2u32, 0.5),
            (1, 3, 0.5),
            (2, 4, 0.5),
            (3, 4, 0.5),
            (4, 5, 0.5),
            (5, 6, 1.0),
            (2, 6, 0.25),
        ];
        for (u, v, p) in edges {
            g.add_edge(UserId(u), UserId(v), p);
        }
        let mut r = rng();
        let mut rr = RrCollection::new(g.node_count());
        rr.sample_to(&g, 30_000, &mut r);
        let seeds = [UserId(1)];
        let est_rr = rr.estimate_spread(&g, &seeds);
        let est_mc = monte_carlo_spread(&g, &seeds, 30_000, &mut r);
        assert!(
            (est_rr - est_mc).abs() < 0.15,
            "rr {est_rr} vs mc {est_mc}"
        );
    }

    #[test]
    fn coverage_fraction_handles_empty_inputs() {
        let rr = RrCollection::new(0);
        assert_eq!(rr.coverage_fraction(&[]), 0.0);
        assert!(rr.is_empty());
        let g = InfluenceGraph::new();
        let (seeds, frac) = greedy_over_rr_sets(&g, &rr, 3);
        assert!(seeds.is_empty());
        assert_eq!(frac, 0.0);
    }
}
