//! The directed, probability-weighted influence graph.
//!
//! Nodes are users; a directed edge `u → v` with probability `p(u,v)` means
//! `u` may activate `v` under the Independent Cascade model.  Internally
//! nodes use dense `usize` indices so that Monte-Carlo simulation and RR-set
//! sampling can use flat arrays; the [`InfluenceGraph`] keeps the mapping to
//! and from [`UserId`].

use rtim_stream::UserId;
use std::collections::HashMap;

/// A directed influence graph with per-edge activation probabilities.
#[derive(Debug, Clone, Default)]
pub struct InfluenceGraph {
    users: Vec<UserId>,
    index: HashMap<UserId, usize>,
    /// Outgoing edges: `out[u] = [(v, p(u,v)), ...]`.
    out: Vec<Vec<(usize, f64)>>,
    /// Incoming edges: `inc[v] = [(u, p(u,v)), ...]`.
    inc: Vec<Vec<(usize, f64)>>,
    edges: usize,
}

impl InfluenceGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the dense index of `user`, inserting a new node if needed.
    pub fn add_user(&mut self, user: UserId) -> usize {
        if let Some(&i) = self.index.get(&user) {
            return i;
        }
        let i = self.users.len();
        self.users.push(user);
        self.index.insert(user, i);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        i
    }

    /// Adds a directed edge `from → to` with activation probability `p`
    /// (clamped to `[0, 1]`).  Parallel edges are allowed; the Weighted
    /// Cascade builder never produces them, and the simulators treat each
    /// stored edge as an independent activation chance.
    pub fn add_edge(&mut self, from: UserId, to: UserId, p: f64) {
        let p = p.clamp(0.0, 1.0);
        let fi = self.add_user(from);
        let ti = self.add_user(to);
        self.out[fi].push((ti, p));
        self.inc[ti].push((fi, p));
        self.edges += 1;
    }

    /// Number of nodes (users with at least one endpoint in the graph).
    pub fn node_count(&self) -> usize {
        self.users.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The user at dense index `i`.
    pub fn user(&self, i: usize) -> UserId {
        self.users[i]
    }

    /// The dense index of `user`, if present.
    pub fn node_of(&self, user: UserId) -> Option<usize> {
        self.index.get(&user).copied()
    }

    /// All users in the graph (dense-index order).
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// Outgoing edges of the node with dense index `i`.
    pub fn out_edges(&self, i: usize) -> &[(usize, f64)] {
        &self.out[i]
    }

    /// Incoming edges of the node with dense index `i`.
    pub fn in_edges(&self, i: usize) -> &[(usize, f64)] {
        &self.inc[i]
    }

    /// In-degree of the node with dense index `i`.
    pub fn in_degree(&self, i: usize) -> usize {
        self.inc[i].len()
    }

    /// Out-degree of the node with dense index `i`.
    pub fn out_degree(&self, i: usize) -> usize {
        self.out[i].len()
    }

    /// Translates a slice of users into dense indices, skipping users that
    /// do not appear in the graph (their spread contribution is just
    /// themselves and is handled by the callers).
    pub fn nodes_of(&self, users: &[UserId]) -> Vec<usize> {
        users.iter().filter_map(|u| self.node_of(*u)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_users_and_edges() {
        let mut g = InfluenceGraph::new();
        g.add_edge(UserId(1), UserId(2), 0.5);
        g.add_edge(UserId(1), UserId(3), 0.25);
        g.add_edge(UserId(2), UserId(3), 2.0); // clamped to 1.0
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        let n1 = g.node_of(UserId(1)).unwrap();
        let n3 = g.node_of(UserId(3)).unwrap();
        assert_eq!(g.out_degree(n1), 2);
        assert_eq!(g.in_degree(n3), 2);
        assert!(g.in_edges(n3).iter().any(|&(_, p)| (p - 1.0).abs() < 1e-12));
        assert_eq!(g.user(n1), UserId(1));
    }

    #[test]
    fn duplicate_add_user_is_idempotent() {
        let mut g = InfluenceGraph::new();
        let a = g.add_user(UserId(7));
        let b = g.add_user(UserId(7));
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn nodes_of_skips_unknown_users() {
        let mut g = InfluenceGraph::new();
        g.add_edge(UserId(1), UserId(2), 0.1);
        let nodes = g.nodes_of(&[UserId(1), UserId(99)]);
        assert_eq!(nodes.len(), 1);
    }

    #[test]
    fn empty_graph_properties() {
        let g = InfluenceGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.node_of(UserId(1)).is_none());
    }
}
