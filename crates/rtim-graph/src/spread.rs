//! Independent Cascade Monte-Carlo spread estimation.
//!
//! The paper's quality metric (§6.1): "we evaluate the influence spread of
//! the users under the WC model with 10,000 rounds of Monte-Carlo simulation
//! on the corresponding influence graph `G_t`."
//!
//! One round: the seed users are activated; every newly activated user `u`
//! gets a single chance to activate each out-neighbour `v` with probability
//! `p(u,v)`; the round's spread is the number of users activated when the
//! cascade stops.  The estimate is the mean spread over all rounds.  Seed
//! users that do not appear in the graph still count as activated (they
//! trivially influence themselves).

use crate::graph::InfluenceGraph;
use rand::Rng;
use rtim_stream::UserId;

/// Estimates the IC-model influence spread of `seeds` on `graph` using
/// `rounds` Monte-Carlo simulations.
pub fn monte_carlo_spread<R: Rng + ?Sized>(
    graph: &InfluenceGraph,
    seeds: &[UserId],
    rounds: usize,
    rng: &mut R,
) -> f64 {
    if seeds.is_empty() || rounds == 0 {
        return 0.0;
    }
    let seed_nodes = graph.nodes_of(seeds);
    // Seeds not present in the graph activate only themselves.
    let mut distinct_missing = 0usize;
    {
        let mut seen = std::collections::HashSet::new();
        for s in seeds {
            if graph.node_of(*s).is_none() && seen.insert(*s) {
                distinct_missing += 1;
            }
        }
    }
    if graph.is_empty() || seed_nodes.is_empty() {
        return distinct_missing as f64;
    }

    let n = graph.node_count();
    // Visit stamps avoid clearing a boolean array every round.
    let mut stamp = vec![0u32; n];
    let mut frontier: Vec<usize> = Vec::with_capacity(seed_nodes.len());
    let mut next: Vec<usize> = Vec::new();
    let mut total: u64 = 0;

    for round in 1..=rounds as u32 {
        frontier.clear();
        let mut activated = 0u64;
        for &s in &seed_nodes {
            if stamp[s] != round {
                stamp[s] = round;
                frontier.push(s);
                activated += 1;
            }
        }
        while !frontier.is_empty() {
            next.clear();
            for &u in &frontier {
                for &(v, p) in graph.out_edges(u) {
                    if stamp[v] != round && rng.gen_bool(p) {
                        stamp[v] = round;
                        next.push(v);
                        activated += 1;
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        total += activated;
    }
    total as f64 / rounds as f64 + distinct_missing as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn deterministic_chain_with_probability_one() {
        let mut g = InfluenceGraph::new();
        g.add_edge(UserId(1), UserId(2), 1.0);
        g.add_edge(UserId(2), UserId(3), 1.0);
        let s = monte_carlo_spread(&g, &[UserId(1)], 100, &mut rng());
        assert!((s - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_probability_edges_never_activate() {
        let mut g = InfluenceGraph::new();
        g.add_edge(UserId(1), UserId(2), 0.0);
        let s = monte_carlo_spread(&g, &[UserId(1)], 100, &mut rng());
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn half_probability_edge_activates_about_half_the_time() {
        let mut g = InfluenceGraph::new();
        g.add_edge(UserId(1), UserId(2), 0.5);
        let s = monte_carlo_spread(&g, &[UserId(1)], 20_000, &mut rng());
        assert!((s - 1.5).abs() < 0.05, "spread {s}");
    }

    #[test]
    fn spread_is_monotone_in_seeds() {
        let mut g = InfluenceGraph::new();
        g.add_edge(UserId(1), UserId(2), 0.3);
        g.add_edge(UserId(3), UserId(4), 0.3);
        g.add_edge(UserId(3), UserId(5), 0.3);
        let s1 = monte_carlo_spread(&g, &[UserId(1)], 5_000, &mut rng());
        let s2 = monte_carlo_spread(&g, &[UserId(1), UserId(3)], 5_000, &mut rng());
        assert!(s2 > s1);
    }

    #[test]
    fn missing_seeds_count_themselves() {
        let mut g = InfluenceGraph::new();
        g.add_edge(UserId(1), UserId(2), 1.0);
        let s = monte_carlo_spread(&g, &[UserId(99)], 10, &mut rng());
        assert!((s - 1.0).abs() < 1e-9);
        let s = monte_carlo_spread(&g, &[UserId(99), UserId(1)], 10, &mut rng());
        assert!((s - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_give_zero() {
        let g = InfluenceGraph::new();
        assert_eq!(monte_carlo_spread(&g, &[], 100, &mut rng()), 0.0);
        let mut g2 = InfluenceGraph::new();
        g2.add_edge(UserId(1), UserId(2), 0.5);
        assert_eq!(monte_carlo_spread(&g2, &[UserId(1)], 0, &mut rng()), 0.0);
    }
}
