//! # rtim-graph
//!
//! Influence-graph substrate for evaluating and comparing seed sets:
//!
//! * [`graph`] — the [`InfluenceGraph`] type: a directed, probability-
//!   weighted graph between users, with dense internal node indices.
//! * [`builder`] — constructing the per-window influence graph `G_t` from
//!   the sliding window and the propagation index, with Weighted Cascade
//!   (WC) edge probabilities — the quality-evaluation setup of §6.1.
//! * [`spread`] — Independent Cascade Monte-Carlo estimation of the
//!   influence spread `σ(S)` (the paper uses 10,000 rounds).
//! * [`rrset`] — reverse-reachable (RR) set sampling and max-coverage seed
//!   selection over RR sets: the substrate of the IMM baseline and of UBI's
//!   spread estimates.
//! * [`rmat`] — the R-MAT recursive power-law graph generator used to
//!   synthesize social graphs for the SYN-O / SYN-N datasets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod graph;
pub mod rmat;
pub mod rrset;
pub mod spread;

pub use builder::build_window_graph;
pub use graph::InfluenceGraph;
pub use rmat::{RmatConfig, RmatGraph};
pub use rrset::{greedy_over_rr_sets, RrCollection};
pub use spread::monte_carlo_spread;
