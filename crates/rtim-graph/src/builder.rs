//! Building the per-window influence graph `G_t` under the Weighted Cascade
//! model.
//!
//! §6.1 of the paper: "we construct an influence graph `G_t` by treating
//! users as vertices and the influence relationships between users wrt.
//! `W_t` as directed edges. The edge probabilities between users are
//! assigned by the weighted cascade (WC) model."
//!
//! Concretely, for every action `a ∈ W_t` performed by `v` and every user
//! `u` who performed an ancestor of `a`, we add the directed influence edge
//! `u → v` (deduplicated).  Under WC the probability of an edge into `v` is
//! `1 / indeg(v)` where `indeg(v)` is the number of distinct in-neighbours
//! of `v`.

use crate::graph::InfluenceGraph;
use rtim_stream::{PropagationIndex, SlidingWindow, UserId};
use std::collections::HashSet;

/// Builds the influence graph of the current window with WC probabilities.
pub fn build_window_graph(window: &SlidingWindow, index: &PropagationIndex) -> InfluenceGraph {
    // First collect the distinct influence relationships (u -> v), u != v.
    let mut rels: HashSet<(UserId, UserId)> = HashSet::new();
    for action in window.iter() {
        let v = action.user;
        if let Some(ancestors) = index.ancestor_users(action.id) {
            for &u in ancestors {
                if u != v {
                    rels.insert((u, v));
                }
            }
        }
    }
    build_from_relationships(rels, window)
}

/// Builds a WC-weighted graph from explicit influence relationships,
/// registering every active user of the window as a node (so that isolated
/// users still count as possible seeds / spread targets).
pub fn build_from_relationships(
    relationships: impl IntoIterator<Item = (UserId, UserId)>,
    window: &SlidingWindow,
) -> InfluenceGraph {
    let rels: Vec<(UserId, UserId)> = relationships.into_iter().collect();

    let mut graph = InfluenceGraph::new();
    for u in window.active_users() {
        graph.add_user(u);
    }
    // Count distinct in-neighbours per target for the WC probability.
    let mut indeg: std::collections::HashMap<UserId, usize> = std::collections::HashMap::new();
    for (_, v) in &rels {
        *indeg.entry(*v).or_insert(0) += 1;
    }
    for (u, v) in &rels {
        let d = indeg[v].max(1) as f64;
        graph.add_edge(*u, *v, 1.0 / d);
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtim_stream::Action;

    fn figure1_setup(upto: usize) -> (SlidingWindow, PropagationIndex) {
        let actions = vec![
            Action::root(1u64, 1u32),
            Action::reply(2u64, 2u32, 1u64),
            Action::root(3u64, 3u32),
            Action::reply(4u64, 3u32, 1u64),
            Action::reply(5u64, 4u32, 3u64),
            Action::reply(6u64, 1u32, 3u64),
            Action::reply(7u64, 5u32, 3u64),
            Action::reply(8u64, 4u32, 7u64),
            Action::root(9u64, 2u32),
            Action::reply(10u64, 6u32, 9u64),
        ];
        let mut w = SlidingWindow::new(8);
        let mut idx = PropagationIndex::new();
        for a in actions.into_iter().take(upto) {
            idx.insert(&a);
            w.push(a);
        }
        (w, idx)
    }

    #[test]
    fn window8_graph_has_expected_edges() {
        let (w, idx) = figure1_setup(8);
        let g = build_window_graph(&w, &idx);
        // Active users u1..u5 are all nodes.
        assert_eq!(g.node_count(), 5);
        // Influence relationships at t=8 (excluding self-influence):
        // u1->u2 (a2), u1->u3 (a4), u3->u4 (a5, a8), u3->u1 (a6), u3->u5 (a7),
        // u5->u4 (a8). That is 6 distinct directed pairs.
        assert_eq!(g.edge_count(), 6);
        // WC probability into u4: two distinct in-neighbours (u3, u5) -> 1/2.
        let n4 = g.node_of(UserId(4)).unwrap();
        assert_eq!(g.in_degree(n4), 2);
        for &(_, p) in g.in_edges(n4) {
            assert!((p - 0.5).abs() < 1e-12);
        }
        // WC probability into u2: a single in-neighbour -> 1.0.
        let n2 = g.node_of(UserId(2)).unwrap();
        assert_eq!(g.in_degree(n2), 1);
        assert!((g.in_edges(n2)[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window10_graph_drops_expired_influence() {
        let (w, idx) = figure1_setup(10);
        let g = build_window_graph(&w, &idx);
        // u1 -> u2 existed only through a2, which expired at t=10.
        let n2 = g.node_of(UserId(2)).unwrap();
        let n1 = g.node_of(UserId(1)).unwrap();
        assert!(!g.in_edges(n2).iter().any(|&(s, _)| s == n1));
        // u1 -> u3 survives because a4 is still in the window.
        let n3 = g.node_of(UserId(3)).unwrap();
        assert!(g.in_edges(n3).iter().any(|&(s, _)| s == n1));
        // u6 joined through a10 (influenced by u2).
        assert!(g.node_of(UserId(6)).is_some());
    }

    #[test]
    fn wc_probabilities_sum_to_one_per_target() {
        let (w, idx) = figure1_setup(10);
        let g = build_window_graph(&w, &idx);
        for i in 0..g.node_count() {
            if g.in_degree(i) > 0 {
                let sum: f64 = g.in_edges(i).iter().map(|&(_, p)| p).sum();
                assert!((sum - 1.0).abs() < 1e-9, "node {i} in-prob sum {sum}");
            }
        }
    }

    #[test]
    fn empty_window_yields_empty_graph() {
        let w = SlidingWindow::new(4);
        let idx = PropagationIndex::new();
        let g = build_window_graph(&w, &idx);
        assert!(g.is_empty());
    }
}
