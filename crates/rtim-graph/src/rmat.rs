//! R-MAT recursive matrix graph generator (Chakrabarti, Zhan, Faloutsos 2004).
//!
//! The paper's synthetic datasets (§6.1) are built on R-MAT power-law graphs
//! with 1–5 million users.  R-MAT places each directed edge by recursively
//! descending into one of the four quadrants of the adjacency matrix with
//! probabilities `(a, b, c, d)`; the classic parameterization
//! `(0.57, 0.19, 0.19, 0.05)` produces a skewed, power-law-like degree
//! distribution resembling social "follow" graphs.
//!
//! The generated [`RmatGraph`] is a plain unweighted directed graph: the
//! datagen crate uses it to pick *who replies to whom*, while WC
//! probabilities for evaluation are always derived from the observed window.

use rand::Rng;
use rtim_stream::UserId;
use serde::{Deserialize, Serialize};

/// Parameters of the R-MAT generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RmatConfig {
    /// Number of users (nodes).  Rounded up to a power of two internally for
    /// the recursive descent, then mapped back into `0..users`.
    pub users: u32,
    /// Number of directed edges to generate (parallel edges are merged).
    pub edges: usize,
    /// Quadrant probabilities `(a, b, c, d)`; must be positive and sum to ~1.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability of the bottom-right quadrant.
    pub d: f64,
}

impl RmatConfig {
    /// Classic skewed R-MAT parameters with the requested size.
    pub fn new(users: u32, edges: usize) -> Self {
        RmatConfig {
            users,
            edges,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

/// A directed graph produced by the R-MAT generator.
#[derive(Debug, Clone)]
pub struct RmatGraph {
    users: u32,
    /// Out-neighbour lists indexed by user id.
    out: Vec<Vec<u32>>,
    edge_count: usize,
}

impl RmatGraph {
    /// Generates a graph from `config` using the provided RNG.
    pub fn generate<R: Rng + ?Sized>(config: &RmatConfig, rng: &mut R) -> Self {
        assert!(config.users > 0, "R-MAT needs at least one user");
        let sum = config.a + config.b + config.c + config.d;
        assert!(sum > 0.0, "R-MAT quadrant probabilities must be positive");
        let (a, b, c) = (config.a / sum, config.b / sum, config.c / sum);

        let levels = 32 - (config.users.max(2) - 1).leading_zeros();
        let size = 1u64 << levels;
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); config.users as usize];
        let mut edge_count = 0usize;
        let mut attempts = 0usize;
        let max_attempts = config.edges.saturating_mul(20).max(64);

        while edge_count < config.edges && attempts < max_attempts {
            attempts += 1;
            let (mut x0, mut x1) = (0u64, size);
            let (mut y0, mut y1) = (0u64, size);
            while x1 - x0 > 1 {
                let r: f64 = rng.gen();
                let (dx, dy) = if r < a {
                    (0, 0)
                } else if r < a + b {
                    (1, 0)
                } else if r < a + b + c {
                    (0, 1)
                } else {
                    (1, 1)
                };
                let mx = (x0 + x1) / 2;
                let my = (y0 + y1) / 2;
                if dx == 0 {
                    x1 = mx;
                } else {
                    x0 = mx;
                }
                if dy == 0 {
                    y1 = my;
                } else {
                    y0 = my;
                }
            }
            let src = (x0 % config.users as u64) as u32;
            let dst = (y0 % config.users as u64) as u32;
            if src == dst {
                continue;
            }
            let list = &mut out[src as usize];
            if list.contains(&dst) {
                continue;
            }
            list.push(dst);
            edge_count += 1;
        }

        RmatGraph {
            users: config.users,
            out,
            edge_count,
        }
    }

    /// Number of users.
    pub fn user_count(&self) -> u32 {
        self.users
    }

    /// Number of distinct directed edges generated.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Out-neighbours of `user`.
    pub fn out_neighbors(&self, user: UserId) -> &[u32] {
        static EMPTY: [u32; 0] = [];
        self.out
            .get(user.index())
            .map(|v| v.as_slice())
            .unwrap_or(&EMPTY)
    }

    /// Out-degree of `user`.
    pub fn out_degree(&self, user: UserId) -> usize {
        self.out_neighbors(user).len()
    }

    /// Picks a uniformly random out-neighbour of `user`, if any.
    pub fn random_out_neighbor<R: Rng + ?Sized>(
        &self,
        user: UserId,
        rng: &mut R,
    ) -> Option<UserId> {
        let ns = self.out_neighbors(user);
        if ns.is_empty() {
            None
        } else {
            Some(UserId(ns[rng.gen_range(0..ns.len())]))
        }
    }

    /// Maximum out-degree (a quick skewness indicator used in tests).
    pub fn max_out_degree(&self) -> usize {
        self.out.iter().map(|v| v.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn generates_requested_edge_count() {
        let cfg = RmatConfig::new(1000, 5000);
        let g = RmatGraph::generate(&cfg, &mut rng());
        // Duplicate collisions may leave slightly fewer edges, but we should
        // get close to the requested count on a sparse graph.
        assert!(g.edge_count() >= 4500, "edges {}", g.edge_count());
        assert_eq!(g.user_count(), 1000);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let cfg = RmatConfig::new(2000, 20_000);
        let g = RmatGraph::generate(&cfg, &mut rng());
        let avg = g.edge_count() as f64 / g.user_count() as f64;
        assert!(
            g.max_out_degree() as f64 > 5.0 * avg,
            "max degree {} not skewed vs avg {avg}",
            g.max_out_degree()
        );
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let cfg = RmatConfig::new(100, 500);
        let g = RmatGraph::generate(&cfg, &mut rng());
        for u in 0..100u32 {
            let ns = g.out_neighbors(UserId(u));
            let mut sorted = ns.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), ns.len());
            assert!(!ns.contains(&u));
        }
    }

    #[test]
    fn random_out_neighbor_is_a_neighbor() {
        let cfg = RmatConfig::new(200, 2000);
        let g = RmatGraph::generate(&cfg, &mut rng());
        let mut r = rng();
        for u in 0..200u32 {
            if let Some(v) = g.random_out_neighbor(UserId(u), &mut r) {
                assert!(g.out_neighbors(UserId(u)).contains(&v.0));
            }
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let cfg = RmatConfig::new(300, 1500);
        let g1 = RmatGraph::generate(&cfg, &mut StdRng::seed_from_u64(5));
        let g2 = RmatGraph::generate(&cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(g1.edge_count(), g2.edge_count());
        for u in 0..300u32 {
            assert_eq!(g1.out_neighbors(UserId(u)), g2.out_neighbors(UserId(u)));
        }
    }
}
