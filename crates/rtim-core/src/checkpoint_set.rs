//! The checkpoint collection shared by the IC and SIC frameworks.
//!
//! Both frameworks maintain an ordered list of [`Checkpoint`]s and do the
//! same three things with it every slide: create a checkpoint for the
//! arriving actions, feed the slide to every live checkpoint, and delete
//! checkpoints (expiry in IC, pruning + expiry in SIC).  A
//! [`CheckpointSet`] owns that list *and its execution strategy*, so the
//! frameworks are reduced to pure policy code over cached per-checkpoint
//! statistics — they never touch a raw checkpoint vector again.
//!
//! ## Execution strategies
//!
//! * `threads == 1` — checkpoints live inline in the set and slides are
//!   replayed on the calling thread (the fast path for SIC's usual handful
//!   of checkpoints, where any fan-out overhead would dominate).
//! * `threads > 1` — checkpoints live inside a persistent [`ShardPool`]:
//!   worker threads are spawned once when the set is created, each owns a
//!   stable shard, and every slide is broadcast as a single shared
//!   allocation.  Deleting a checkpoint rebalances the shards (see the
//!   [`pool`](crate::pool) module docs).
//!
//! ## The dense weight table
//!
//! Checkpoints and their oracles are weight-agnostic: they receive a
//! [`DenseWeights`] view per feed.  The set owns the single source of truth
//! for that view — for the cardinality objective it is simply
//! `DenseWeights::Unit`; for weighted objectives the set materializes
//! `weight.weight(raw)` into a flat `Vec<f64>` indexed by **dense** (interned)
//! user id as users are registered ([`CheckpointSet::register_users`],
//! driven by the engine's `UserInterner`).  Sharded execution broadcasts the
//! table's append-only deltas with each feed so every worker holds an
//! identical copy.  If the set is driven without registration (direct
//! framework tests feeding already-dense ids), missing entries are filled by
//! treating the dense id as the raw id — the identity mapping.
//!
//! Either way the set mirrors each checkpoint's `(start, value, updates)`
//! in an ordered list of [`CheckpointStat`]s, which is what the frameworks'
//! pruning/eviction/query policies consume; full [`Solution`]s (seed sets)
//! are fetched on demand.  Results are bit-identical across strategies —
//! `tests/determinism.rs` asserts this property for 2–8 workers.

use crate::config::SimConfig;
use crate::framework::{ResolvedAction, Solution};
use crate::pool::{AdaptiveConfig, CheckpointStat, PoolStats, ShardPool, WorkerFeedReport};
use crate::ssm::Checkpoint;
use rtim_stream::{UserId, WordArena};
use rtim_submodular::{DenseWeights, ElementWeight, OracleConfig, OracleKind};

/// Where the checkpoints physically live.
enum Exec {
    /// Inline on the calling thread, parallel to the stats list.  The
    /// [`WordArena`] recycles expired checkpoints' bitmap backing stores
    /// into the next slide's set promotions (sharded execution keeps one
    /// arena per worker instead).
    Sequential(Vec<Checkpoint>, WordArena),
    /// Sharded across persistent worker threads.
    Sharded(ShardPool),
}

/// An ordered collection of checkpoints (oldest first) plus the strategy
/// that executes slides against them.
///
/// See the [module docs](self) for the design.
pub struct CheckpointSet<W: ElementWeight + Send + 'static> {
    oracle: OracleKind,
    oracle_config: OracleConfig,
    weight: W,
    /// Cached `weight.is_unit()` — `true` means no table is ever built and
    /// every feed runs under `DenseWeights::Unit`.
    unit: bool,
    /// Dense weight table: `dense_weights[d]` is the element weight of the
    /// user with dense id `d`.  Empty for the cardinality objective.
    dense_weights: Vec<f64>,
    /// How many table entries the shard workers have already received
    /// (sharded execution ships `dense_weights[synced..]` with each feed).
    synced: usize,
    /// `true` once `cover_slide` identity-filled any table entry.  The two
    /// table-population modes — interned registration and the identity
    /// fallback — must never mix: registration after an identity fill would
    /// append the new users' weights at already-occupied dense slots.
    identity_filled: bool,
    /// Cached per-checkpoint stats, oldest first (same order as creation;
    /// starts are strictly increasing).
    stats: Vec<CheckpointStat>,
    exec: Exec,
}

impl<W: ElementWeight + Send + 'static> CheckpointSet<W> {
    /// Creates an empty set executing with `threads` workers
    /// (1 = sequential, no worker threads at all).
    pub fn new(oracle: OracleKind, oracle_config: OracleConfig, threads: usize, weight: W) -> Self {
        let exec = if threads.max(1) == 1 {
            Exec::Sequential(Vec::new(), WordArena::new())
        } else {
            Exec::Sharded(ShardPool::new(threads))
        };
        let unit = weight.is_unit();
        CheckpointSet {
            oracle,
            oracle_config,
            weight,
            unit,
            dense_weights: Vec::new(),
            synced: 0,
            identity_filled: false,
            stats: Vec::new(),
            exec,
        }
    }

    /// Creates an empty set from a SIM configuration (oracle kind, oracle
    /// parameters and thread count).
    pub fn from_config(config: &SimConfig, weight: W) -> Self {
        Self::new(config.oracle, config.oracle_config(), config.threads, weight)
    }

    /// Number of live checkpoints.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// `true` if no checkpoint is live.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Number of worker threads backing the set (1 = sequential).
    pub fn threads(&self) -> usize {
        match &self.exec {
            Exec::Sequential(..) => 1,
            Exec::Sharded(pool) => pool.threads(),
        }
    }

    /// Adaptive-placement counters of the backing [`ShardPool`]
    /// (placement fields are all-zero under sequential execution, which
    /// has no placement; the arena allocation counters are reported
    /// either way — sequential execution owns its arena inline).
    pub fn pool_stats(&self) -> PoolStats {
        match &self.exec {
            Exec::Sequential(_, arena) => {
                let (arena_takes, arena_hits) = arena.stats();
                PoolStats {
                    arena_takes,
                    arena_hits,
                    ..PoolStats::default()
                }
            }
            Exec::Sharded(pool) => pool.stats(),
        }
    }

    /// Latest per-shard feed reports (empty under sequential execution,
    /// where the whole feed is one span).  See
    /// [`ShardPool::last_feed_reports`].
    pub fn shard_feed_reports(&self) -> &[WorkerFeedReport] {
        match &self.exec {
            Exec::Sequential(..) => &[],
            Exec::Sharded(pool) => pool.last_feed_reports(),
        }
    }

    /// Reconfigures the backing pool's timing-driven placement (no-op
    /// under sequential execution).  See [`AdaptiveConfig`].
    pub fn set_adaptive(&mut self, config: AdaptiveConfig) {
        if let Exec::Sharded(pool) = &mut self.exec {
            pool.set_adaptive(config);
        }
    }

    /// Registers newly interned users in dense-id order, materializing their
    /// element weights into the dense table (no-op for the cardinality
    /// objective).  See [`crate::Framework::register_users`].
    ///
    /// # Panics
    /// Panics if a weighted set already served a feed without registration
    /// (identity-mapped mode) — the two table-population modes cannot mix.
    pub fn register_users(&mut self, new_raw: &[UserId]) {
        if self.unit {
            return;
        }
        assert!(
            !self.identity_filled,
            "register_users after an identity-mapped feed: drive a weighted \
             CheckpointSet either through the engine (interned ids, register \
             before every feed) or directly (no registration at all), never both"
        );
        self.dense_weights
            .extend(new_raw.iter().map(|&r| self.weight.weight(r)));
    }

    /// Extends the dense table to cover every dense id appearing in `slide`,
    /// treating unregistered dense ids as raw ids (the identity mapping used
    /// when the set is driven without an interner).
    fn cover_slide(&mut self, slide: &[ResolvedAction]) {
        if self.unit {
            return;
        }
        let max = slide
            .iter()
            .flat_map(|a| std::iter::once(a.actor).chain(a.ancestors.iter().copied()))
            .map(|u| u.index())
            .max();
        if let Some(max) = max {
            while self.dense_weights.len() <= max {
                let identity = UserId(self.dense_weights.len() as u32);
                self.dense_weights.push(self.weight.weight(identity));
                self.identity_filled = true;
            }
        }
    }

    /// Creates a checkpoint covering all actions with `id >= start` and
    /// appends it to the set.
    ///
    /// # Panics
    /// Panics if `start` is not greater than the newest checkpoint's start
    /// (the set is ordered oldest-first by construction).
    pub fn push(&mut self, start: u64) {
        if let Some(last) = self.stats.last() {
            assert!(
                start > last.start,
                "checkpoint starts must be strictly increasing ({start} after {})",
                last.start
            );
        }
        let checkpoint = Checkpoint::new(start, self.oracle, self.oracle_config);
        match &mut self.exec {
            Exec::Sequential(list, _) => list.push(checkpoint),
            Exec::Sharded(pool) => pool.add(checkpoint),
        }
        self.stats.push(CheckpointStat {
            start,
            value: 0.0,
            updates: 0,
        });
    }

    /// Feeds one slide of resolved actions to every live checkpoint and
    /// refreshes the cached stats.
    pub fn feed(&mut self, slide: &[ResolvedAction]) {
        if slide.is_empty() || self.stats.is_empty() {
            return;
        }
        self.cover_slide(slide);
        match &mut self.exec {
            Exec::Sequential(list, arena) => {
                let weights = if self.unit {
                    DenseWeights::Unit
                } else {
                    DenseWeights::Table(&self.dense_weights)
                };
                for (cp, stat) in list.iter_mut().zip(self.stats.iter_mut()) {
                    for action in slide {
                        cp.process_in(action, &weights, arena);
                    }
                    stat.value = cp.value();
                    stat.updates = cp.updates();
                }
                arena.end_slide();
            }
            Exec::Sharded(pool) => {
                let delta: Option<&[f64]> = if self.unit {
                    None
                } else {
                    Some(&self.dense_weights[self.synced..])
                };
                let fresh = pool.feed(slide, delta);
                self.synced = self.dense_weights.len();
                for stat in fresh {
                    // Starts are strictly increasing, so the ordered stats
                    // list is binary-searchable.
                    let i = self
                        .stats
                        .binary_search_by_key(&stat.start, |s| s.start)
                        .expect("pool returned stats for an unknown checkpoint");
                    self.stats[i] = stat;
                }
            }
        }
    }

    /// Deletes the checkpoint at position `i` (oldest = 0).
    pub fn remove(&mut self, i: usize) {
        let stat = self.stats.remove(i);
        match &mut self.exec {
            Exec::Sequential(list, arena) => {
                // Expired checkpoints donate their bitmap backing stores
                // to the next slide's promotions.
                list.remove(i).recycle_into(arena);
            }
            Exec::Sharded(pool) => pool.remove(stat.start),
        }
    }

    /// Start position of the checkpoint at `i`.
    pub fn start(&self, i: usize) -> u64 {
        self.stats[i].start
    }

    /// Influence value of the checkpoint at `i` (as of the last feed).
    pub fn value(&self, i: usize) -> f64 {
        self.stats[i].value
    }

    /// `true` once the checkpoint at `i` covers more than the window, i.e.
    /// its first covered action is older than the window start.
    pub fn is_expired(&self, i: usize, window_start: u64) -> bool {
        self.stats[i].start < window_start
    }

    /// Start positions of all live checkpoints, oldest first.
    pub fn starts(&self) -> Vec<u64> {
        self.stats.iter().map(|s| s.start).collect()
    }

    /// Influence values of all live checkpoints, oldest first.
    pub fn values(&self) -> Vec<f64> {
        self.stats.iter().map(|s| s.value).collect()
    }

    /// Total oracle element updates across all live checkpoints.
    pub fn total_updates(&self) -> u64 {
        self.stats.iter().map(|s| s.updates).sum()
    }

    /// Full solution (seeds + value) of the checkpoint at `i`.
    ///
    /// Seeds are in the id space the set was fed with (dense ids when driven
    /// through the engine; the engine translates back to raw ids at its
    /// query boundary).
    pub fn solution(&self, i: usize) -> Solution {
        match &self.exec {
            Exec::Sequential(list, _) => list[i].solution(),
            Exec::Sharded(pool) => pool.solution(self.stats[i].start),
        }
    }

    /// Captures the serializable state of every live checkpoint (shard
    /// contents are fetched from their workers without moving them), plus
    /// the dense weight table.  `None` if any checkpoint's oracle lacks
    /// snapshot support.
    pub fn snapshot(&self) -> Option<crate::snapshot::CheckpointSetState> {
        let mut checkpoints = Vec::with_capacity(self.stats.len());
        for (i, stat) in self.stats.iter().enumerate() {
            let state = match &self.exec {
                Exec::Sequential(list, _) => list[i].snapshot(),
                Exec::Sharded(pool) => pool.snapshot(stat.start),
            }?;
            checkpoints.push(state);
        }
        Some(crate::snapshot::CheckpointSetState {
            identity_filled: self.identity_filled,
            dense_weights: self.dense_weights.clone(),
            checkpoints,
        })
    }

    /// Rehydrates a checkpoint set from persisted state.
    ///
    /// Checkpoints are rebuilt oldest-first and — under a sharded
    /// configuration — re-placed into the pool in that order, so placement
    /// is deterministic (placement never affects answers, only balance).
    /// Restoring a weighted table requires a non-unit `weight`; the
    /// caller re-supplies the same weight function the snapshotted set ran
    /// with (it is not serializable).
    pub fn from_state(
        oracle: OracleKind,
        oracle_config: OracleConfig,
        threads: usize,
        weight: W,
        state: crate::snapshot::CheckpointSetState,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let mut set = Self::new(oracle, oracle_config, threads, weight);
        if set.unit && (!state.dense_weights.is_empty() || state.identity_filled) {
            return Err(crate::snapshot::SnapshotError::Unsupported(
                "snapshot carries a dense weight table but the restore weight is unit".into(),
            ));
        }
        set.identity_filled = state.identity_filled;
        set.dense_weights = state.dense_weights;
        // Workers start with empty tables; the first feed ships the whole
        // table as one delta.
        set.synced = 0;
        let mut last_start: Option<u64> = None;
        for cp_state in state.checkpoints {
            if let Some(prev) = last_start {
                if cp_state.start <= prev {
                    return Err(crate::snapshot::SnapshotError::Corrupt(format!(
                        "checkpoint starts must be strictly increasing: {} after {prev}",
                        cp_state.start
                    )));
                }
            }
            last_start = Some(cp_state.start);
            let checkpoint = Checkpoint::from_state(cp_state, oracle_config);
            set.stats.push(CheckpointStat {
                start: checkpoint.start(),
                value: checkpoint.value(),
                updates: checkpoint.updates(),
            });
            match &mut set.exec {
                Exec::Sequential(list, _) => list.push(checkpoint),
                Exec::Sharded(pool) => pool.add(checkpoint),
            }
        }
        Ok(set)
    }
}

impl<W: ElementWeight + Send + 'static> std::fmt::Debug for CheckpointSet<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointSet")
            .field("len", &self.stats.len())
            .field("threads", &self.threads())
            .field("starts", &self.starts())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtim_stream::UserId;
    use rtim_submodular::{MapWeight, UnitWeight};

    fn resolved(id: u64, actor: u32, ancestors: &[u32]) -> ResolvedAction {
        ResolvedAction {
            id,
            actor: UserId(actor),
            ancestors: ancestors.iter().map(|&u| UserId(u)).collect(),
        }
    }

    fn set(threads: usize) -> CheckpointSet<UnitWeight> {
        CheckpointSet::new(
            OracleKind::SieveStreaming,
            OracleConfig::new(2, 0.2),
            threads,
            UnitWeight,
        )
    }

    fn drive(threads: usize) -> CheckpointSet<UnitWeight> {
        let mut s = set(threads);
        for slide_idx in 0..6u64 {
            let base = slide_idx * 4 + 1;
            s.push(base);
            let slide: Vec<ResolvedAction> = (base..base + 4)
                .map(|t| {
                    if t % 3 == 0 {
                        resolved(t, (t % 5) as u32, &[((t + 1) % 5) as u32])
                    } else {
                        resolved(t, (t % 5) as u32, &[])
                    }
                })
                .collect();
            s.feed(&slide);
        }
        s
    }

    #[test]
    fn sequential_and_sharded_agree_bit_for_bit() {
        let seq = drive(1);
        for threads in [2usize, 3, 8] {
            let par = drive(threads);
            assert_eq!(par.threads(), threads);
            assert_eq!(seq.starts(), par.starts());
            assert_eq!(seq.total_updates(), par.total_updates());
            for i in 0..seq.len() {
                assert_eq!(seq.value(i).to_bits(), par.value(i).to_bits());
                let (a, b) = (seq.solution(i), par.solution(i));
                assert_eq!(a.seeds, b.seeds);
                assert_eq!(a.value.to_bits(), b.value.to_bits());
            }
        }
    }

    #[test]
    fn weighted_set_agrees_across_strategies() {
        // User 3 weighs 10; the table is built through register_users
        // exactly as the engine drives it.
        fn drive_weighted(threads: usize) -> CheckpointSet<MapWeight> {
            let mut table = std::collections::HashMap::new();
            table.insert(UserId(3), 10.0);
            let weight = MapWeight::new(table, 1.0);
            let mut s = CheckpointSet::new(
                OracleKind::SieveStreaming,
                OracleConfig::new(2, 0.2),
                threads,
                weight,
            );
            // Dense ids 0..5 behind raw ids 0..5 (identity interning order).
            s.register_users(&[UserId(0), UserId(1), UserId(2), UserId(3), UserId(4)]);
            s.push(1);
            let slide: Vec<ResolvedAction> = (1..=6u64)
                .map(|t| resolved(t, (t % 5) as u32, &[((t + 1) % 5) as u32]))
                .collect();
            s.feed(&slide);
            s
        }
        let seq = drive_weighted(1);
        let par = drive_weighted(3);
        assert_eq!(seq.values(), par.values());
        assert!(seq.value(0) >= 10.0, "heavy user not reflected: {}", seq.value(0));
        assert_eq!(seq.solution(0).seeds, par.solution(0).seeds);
    }

    #[test]
    fn unregistered_weighted_ids_fall_back_to_identity() {
        // No register_users call: dense ids are treated as raw ids, so the
        // MapWeight keyed by UserId(2) still applies to dense id 2.
        let mut table = std::collections::HashMap::new();
        table.insert(UserId(2), 5.0);
        let mut s = CheckpointSet::new(
            OracleKind::SieveStreaming,
            OracleConfig::new(1, 0.2),
            1,
            MapWeight::new(table, 1.0),
        );
        s.push(1);
        s.feed(&[resolved(1, 2, &[])]);
        assert_eq!(s.value(0), 5.0);
    }

    #[test]
    fn remove_keeps_order_and_stats_aligned() {
        for threads in [1usize, 3] {
            let mut s = drive(threads);
            assert_eq!(s.len(), 6);
            let starts = s.starts();
            s.remove(2);
            s.remove(0);
            assert_eq!(s.len(), 4);
            assert_eq!(s.start(0), starts[1]);
            assert_eq!(s.starts(), vec![starts[1], starts[3], starts[4], starts[5]]);
            // Remaining checkpoints still answer.
            for i in 0..s.len() {
                let _ = s.solution(i);
                assert!(s.value(i) >= 0.0);
            }
        }
    }

    #[test]
    fn values_are_monotone_in_coverage() {
        let s = drive(1);
        let values = s.values();
        for pair in values.windows(2) {
            assert!(pair[0] + 1e-9 >= pair[1], "not monotone: {values:?}");
        }
    }

    #[test]
    #[should_panic]
    fn non_increasing_push_is_rejected() {
        let mut s = set(1);
        s.push(5);
        s.push(5);
    }

    #[test]
    fn expiry_is_relative_to_window_start() {
        let mut s = set(1);
        s.push(5);
        assert!(!s.is_expired(0, 5));
        assert!(!s.is_expired(0, 3));
        assert!(s.is_expired(0, 6));
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic]
    fn registration_after_identity_feed_is_rejected() {
        let mut table = std::collections::HashMap::new();
        table.insert(UserId(1), 2.0);
        let mut s = CheckpointSet::new(
            OracleKind::SieveStreaming,
            OracleConfig::new(1, 0.2),
            1,
            MapWeight::new(table, 1.0),
        );
        s.push(1);
        s.feed(&[resolved(1, 2, &[])]); // identity fill up to dense id 2
        s.register_users(&[UserId(9)]); // must panic: modes cannot mix
    }

    #[test]
    fn from_config_honours_thread_count() {
        let config = SimConfig::new(2, 0.2, 8, 2).with_threads(3);
        let s = CheckpointSet::from_config(&config, UnitWeight);
        assert_eq!(s.threads(), 3);
        assert!(s.is_empty());
    }
}
