//! Persistent sharded checkpoint worker pool.
//!
//! Checkpoints are mutually independent: every checkpoint replays the same
//! slide of resolved actions against its own private state, so slides can be
//! fanned out across workers without any cross-checkpoint synchronization.
//! The old `parallel::feed_all_scoped` path exploited this with
//! `std::thread::scope`, paying thread startup on **every** slide; a
//! [`ShardPool`] instead spawns its workers **once** (per engine) and keeps
//! them alive for the lifetime of the pool, which is the shape a long-running
//! ingest server needs.
//!
//! ## Shard-ownership model
//!
//! * Each worker thread *owns* its shard of [`Checkpoint`]s outright — the
//!   checkpoints are moved into the worker on [`ShardPool::add`] and never
//!   aliased, so no locking is involved anywhere on the hot path.
//! * The pool (on the caller's thread) keeps only the *assignment map*
//!   (checkpoint start id → worker) and per-worker load counts; the start id
//!   is a stable unique key because both frameworks create checkpoints at
//!   strictly increasing stream positions.
//! * A slide is broadcast to all workers as one `Arc<[ResolvedAction]>` —
//!   one allocation per slide, shared by every shard, never cloned per
//!   checkpoint.  Workers reply with per-checkpoint
//!   [`CheckpointStat`]s (start, value, update count), which is all the
//!   frameworks need for pruning/eviction decisions; full solutions (seed
//!   sets) are fetched on demand by [`ShardPool::solution`].
//! * New checkpoints go to the least-loaded worker (lowest index on ties),
//!   and [`ShardPool::remove`] rebalances whenever shard sizes drift apart
//!   by ≥ 3 — SIC's pruning and IC's rotation both delete checkpoints in
//!   patterns that would otherwise starve some shards.  (The slack of 2
//!   leaves room for the timing-driven migrations below without the two
//!   mechanisms thrashing against each other.)
//!
//! ## Adaptive, timing-driven placement
//!
//! Checkpoint *counts* are a poor proxy for shard cost: an old checkpoint
//! has accumulated large influence sets and can cost an order of magnitude
//! more per slide than a fresh one.  Every worker therefore times its feed
//! round and reports `feed_nanos` with its stats; the pool folds these into
//! a per-shard EWMA and, when the measured skew exceeds
//! [`AdaptiveConfig::skew_ratio`] (plus gates: an absolute floor, a
//! post-migration cooldown, and a no-count-skew guard), migrates the
//! *oldest* checkpoint of the hottest shard to the coldest shard — at a
//! slide boundary, through the same Extract/Add machinery rebalancing uses.
//!
//! Migrating whole checkpoints is what keeps this safe: a checkpoint's
//! arithmetic is completely determined by the slides it observes, never by
//! which worker hosts it, so placement decisions (even timing-driven,
//! inherently non-deterministic ones) cannot change any result bit.  See
//! `docs/PERF.md` for the invariant writeup and knob guidance.
//!
//! ## Determinism
//!
//! Results are bit-for-bit identical to sequential processing: each
//! checkpoint still observes the slide in stream order against its own
//! state, and shard placement never influences any checkpoint's arithmetic.
//! The determinism property tests in `tests/determinism.rs` assert this for
//! both frameworks at 2–8 workers, including under an aggressive adaptive
//! configuration that migrates constantly.
//!
//! ## Shutdown
//!
//! Dropping the pool sends every worker a shutdown message and joins it; a
//! worker panic is re-raised on the caller's thread at that point (unless
//! the caller is already panicking).

use crate::framework::{ResolvedAction, Solution};
use crate::ssm::Checkpoint;
use rtim_stream::WordArena;
use rtim_submodular::DenseWeights;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Per-checkpoint summary returned by a feed round: everything the
/// frameworks need to make pruning/eviction decisions without touching the
/// checkpoint itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointStat {
    /// First action id covered by the checkpoint (its unique key).
    pub start: u64,
    /// Influence value `Λ_t[i]` after the feed.
    pub value: f64,
    /// Total oracle element updates performed by this checkpoint so far.
    pub updates: u64,
}

/// Knobs of the timing-driven adaptive placement (see the
/// [module docs](self)).  Runtime-only state — deliberately **not** part of
/// [`SimConfig`](crate::SimConfig) or the snapshot codec: placement never
/// affects results, so the knobs need no durability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// EWMA smoothing factor `α ∈ (0, 1]` applied to per-shard feed nanos
    /// (`ewma ← α·measured + (1−α)·ewma`).  Higher reacts faster, lower
    /// rides out noise.
    pub alpha: f64,
    /// Migration trigger: the hottest shard's EWMA must exceed the coldest
    /// shard's by at least this ratio.
    pub skew_ratio: f64,
    /// Absolute floor: no migration while the hottest shard's EWMA is
    /// below this many nanoseconds per slide (skew between trivially cheap
    /// shards is all noise).
    pub min_nanos: f64,
    /// Slides to wait after a migration before considering the next one
    /// (lets the EWMAs re-converge on the new placement).
    pub cooldown_slides: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            alpha: 0.3,
            skew_ratio: 1.5,
            min_nanos: 200_000.0,
            cooldown_slides: 4,
        }
    }
}

impl AdaptiveConfig {
    /// A maximally trigger-happy configuration (no floor, no cooldown,
    /// any skew migrates).  Used by the determinism proptests to force
    /// constant migration; not a sensible production setting.
    pub fn aggressive() -> Self {
        AdaptiveConfig {
            alpha: 1.0,
            skew_ratio: 1.0,
            min_nanos: 0.0,
            cooldown_slides: 0,
        }
    }
}

/// Observability snapshot of the adaptive pool, surfaced on
/// [`EngineStats`](crate::EngineStats) and the server `STATS` reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkpoints migrated between shards by the adaptive placement since
    /// the pool was created.
    pub migrations: u64,
    /// Smallest per-shard feed-time EWMA, in nanoseconds (rounded).
    pub ewma_min_nanos: u64,
    /// Largest per-shard feed-time EWMA, in nanoseconds (rounded).
    pub ewma_max_nanos: u64,
    /// Cumulative bitmap word-vectors requested from the workers' slide
    /// arenas (summed across shards).
    pub arena_takes: u64,
    /// Of [`PoolStats::arena_takes`], how many were served from the
    /// recycled free lists instead of fresh allocations.
    pub arena_hits: u64,
}

/// What one worker reports back with each feed round: its wall-clock span
/// for the slide plus the cumulative allocation counters of its private
/// [`WordArena`].  The pool retains the latest report per shard so the
/// engine can emit per-shard trace spans without extra channel traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerFeedReport {
    /// Wall-clock nanoseconds the worker spent on the slide.
    pub nanos: u64,
    /// Cumulative arena take count (see [`rtim_stream::WordArena::stats`]).
    pub arena_takes: u64,
    /// Cumulative arena free-list hits.
    pub arena_hits: u64,
}

/// Messages from the pool to a worker.
enum ShardMsg {
    /// Process a slide against every checkpoint in the shard and reply with
    /// `ShardReply::Fed`.  The second field is the element-weight update:
    /// `None` for the cardinality objective, `Some(delta)` to append the
    /// dense weights of users interned since the previous feed to the
    /// worker's local weight table (every worker maintains an identical
    /// copy; deltas are broadcast once as a shared allocation).
    Feed(Arc<[ResolvedAction]>, Option<Arc<[f64]>>),
    /// Adopt a checkpoint into the shard (no reply).
    Add(Box<Checkpoint>),
    /// Delete the checkpoint with this start id (no reply).
    Remove(u64),
    /// Remove the checkpoint with this start id and send it back
    /// (`ShardReply::Extracted`) — used for rebalancing.
    Extract(u64),
    /// Reply with the solution of the checkpoint with this start id.
    Query(u64),
    /// Reply with the serializable state of the checkpoint with this start
    /// id (`None` if its oracle lacks snapshot support).
    Snapshot(u64),
    /// Exit the worker loop.
    Shutdown,
}

/// Replies from a worker to the pool.
enum ShardReply {
    /// Per-checkpoint stats plus the worker's feed report (span nanos for
    /// the adaptive placement and trace spans, arena counters for the
    /// allocation gauges).
    Fed(Vec<CheckpointStat>, WorkerFeedReport),
    Extracted(Box<Checkpoint>),
    Solution(Box<Solution>),
    Snapshot(Box<Option<crate::snapshot::CheckpointState>>),
}

struct Worker {
    tx: Sender<ShardMsg>,
    rx: Receiver<ShardReply>,
    join: Option<JoinHandle<()>>,
}

/// A persistent pool of worker threads, each owning a stable shard of
/// checkpoints, fed window slides over channels.
///
/// See the [module docs](self) for the ownership and determinism model.
pub struct ShardPool {
    workers: Vec<Worker>,
    /// Checkpoint start id → index of the owning worker.
    assignment: HashMap<u64, usize>,
    /// Number of checkpoints currently owned by each worker.
    counts: Vec<usize>,
    /// Adaptive-placement knobs (see [`AdaptiveConfig`]).
    adaptive: AdaptiveConfig,
    /// Per-shard feed-time EWMA in nanoseconds (`0` until first feed).
    ewma: Vec<f64>,
    /// Slides remaining before the next migration is considered.
    cooldown: u32,
    /// Checkpoints migrated by the adaptive placement so far.
    migrations: u64,
    /// Latest per-worker feed report (all-zero until the first feed).
    last_feed: Vec<WorkerFeedReport>,
}

impl ShardPool {
    /// Spawns `threads` workers (at least 1), alive until the pool is
    /// dropped.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers = (0..threads)
            .map(|i| {
                let (msg_tx, msg_rx) = channel::<ShardMsg>();
                let (reply_tx, reply_rx) = channel::<ShardReply>();
                let join = std::thread::Builder::new()
                    .name(format!("rtim-shard-{i}"))
                    .spawn(move || worker_loop(msg_rx, reply_tx))
                    .expect("spawn shard worker");
                Worker {
                    tx: msg_tx,
                    rx: reply_rx,
                    join: Some(join),
                }
            })
            .collect();
        ShardPool {
            workers,
            assignment: HashMap::new(),
            counts: vec![0; threads],
            adaptive: AdaptiveConfig::default(),
            ewma: vec![0.0; threads],
            cooldown: 0,
            migrations: 0,
            last_feed: vec![WorkerFeedReport::default(); threads],
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Replaces the adaptive-placement knobs (takes effect from the next
    /// feed round; never affects results, only where checkpoints live).
    pub fn set_adaptive(&mut self, config: AdaptiveConfig) {
        self.adaptive = config;
    }

    /// The current adaptive-placement knobs.
    pub fn adaptive(&self) -> AdaptiveConfig {
        self.adaptive
    }

    /// Migration count and the current EWMA spread (observability; see
    /// [`PoolStats`]).
    pub fn stats(&self) -> PoolStats {
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for &e in &self.ewma {
            lo = lo.min(e);
            hi = hi.max(e);
        }
        PoolStats {
            migrations: self.migrations,
            ewma_min_nanos: if lo.is_finite() { lo as u64 } else { 0 },
            ewma_max_nanos: hi as u64,
            arena_takes: self.last_feed.iter().map(|r| r.arena_takes).sum(),
            arena_hits: self.last_feed.iter().map(|r| r.arena_hits).sum(),
        }
    }

    /// The latest per-worker feed report, indexed by shard (all-zero
    /// entries until the first feed).  Input to the engine's per-shard
    /// trace spans.
    pub fn last_feed_reports(&self) -> &[WorkerFeedReport] {
        &self.last_feed
    }

    /// Number of checkpoints currently owned across all shards.
    pub fn checkpoint_count(&self) -> usize {
        self.assignment.len()
    }

    /// Moves a checkpoint into the least-loaded shard (lowest worker index
    /// on ties, so placement is deterministic).
    ///
    /// # Panics
    /// Panics if a checkpoint with the same start id is already pooled.
    pub fn add(&mut self, checkpoint: Checkpoint) {
        let start = checkpoint.start();
        assert!(
            !self.assignment.contains_key(&start),
            "checkpoint starting at {start} already pooled"
        );
        let target = self.least_loaded();
        self.send(target, ShardMsg::Add(Box::new(checkpoint)));
        self.assignment.insert(start, target);
        self.counts[target] += 1;
    }

    /// Broadcasts one slide to every shard and gathers the per-checkpoint
    /// stats (in no particular order — keyed by `start`).
    ///
    /// `weight_delta` is `None` for the cardinality objective; for weighted
    /// objectives it carries the dense weights of users interned since the
    /// previous feed, which every worker appends to its local table.
    pub fn feed(
        &mut self,
        slide: &[ResolvedAction],
        weight_delta: Option<&[f64]>,
    ) -> Vec<CheckpointStat> {
        let shared: Arc<[ResolvedAction]> = slide.into();
        let shared_delta: Option<Arc<[f64]>> = weight_delta.map(Into::into);
        for i in 0..self.workers.len() {
            self.send(i, ShardMsg::Feed(shared.clone(), shared_delta.clone()));
        }
        let mut stats = Vec::with_capacity(self.assignment.len());
        for i in 0..self.workers.len() {
            match self.recv(i) {
                ShardReply::Fed(s, report) => {
                    stats.extend(s);
                    self.observe_feed_nanos(i, report.nanos);
                    self.last_feed[i] = report;
                }
                _ => unreachable!("worker answered Feed with a non-Fed reply"),
            }
        }
        self.adapt();
        stats
    }

    /// Folds one measured per-shard feed time into the EWMA.
    fn observe_feed_nanos(&mut self, worker: usize, nanos: u64) {
        let alpha = self.adaptive.alpha.clamp(0.0, 1.0);
        let e = &mut self.ewma[worker];
        *e = if *e <= 0.0 {
            nanos as f64
        } else {
            alpha * nanos as f64 + (1.0 - alpha) * *e
        };
    }

    /// Timing-driven migration, run once per feed round (i.e. at slide
    /// boundaries only): moves the oldest checkpoint of the hottest shard
    /// to the coldest shard when the measured skew warrants it.
    ///
    /// Whole-checkpoint moves cannot change results — a checkpoint's
    /// arithmetic depends only on the slides it observes (see the module
    /// docs) — so the gates below are pure performance heuristics.
    fn adapt(&mut self) {
        if self.workers.len() < 2 || self.assignment.is_empty() {
            return;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return;
        }
        let (mut hot, mut cold) = (0usize, 0usize);
        for (i, &e) in self.ewma.iter().enumerate() {
            if e > self.ewma[hot] {
                hot = i;
            }
            if e < self.ewma[cold] {
                cold = i;
            }
        }
        if hot == cold || self.counts[hot] == 0 {
            return;
        }
        if self.ewma[hot] < self.adaptive.min_nanos {
            return;
        }
        if self.ewma[hot] < self.adaptive.skew_ratio * self.ewma[cold].max(1.0) {
            return;
        }
        // Never create count skew the count-based rebalancer (slack 2)
        // would bounce straight back: after the move the cold shard may
        // hold at most one more checkpoint than the hot one.
        if self.counts[cold] > self.counts[hot] {
            return;
        }
        // Oldest checkpoint first: it has accumulated the largest
        // influence sets, so it is the likeliest cause of the skew (and a
        // deterministic choice).
        let moved = self
            .assignment
            .iter()
            .filter(|&(_, &w)| w == hot)
            .map(|(&start, _)| start)
            .min()
            .expect("hot shard is non-empty");
        self.transfer(moved, hot, cold);
        self.migrations += 1;
        self.cooldown = self.adaptive.cooldown_slides;
        // The placement just changed under both EWMAs; meet in the middle
        // and let fresh measurements re-skew if the move was not enough.
        let mid = (self.ewma[hot] + self.ewma[cold]) / 2.0;
        self.ewma[hot] = mid;
        self.ewma[cold] = mid;
    }

    /// Moves the checkpoint with start id `moved` from shard `from` to
    /// shard `to` through the worker channels, updating the bookkeeping.
    fn transfer(&mut self, moved: u64, from: usize, to: usize) {
        self.send(from, ShardMsg::Extract(moved));
        let checkpoint = match self.recv(from) {
            ShardReply::Extracted(cp) => cp,
            _ => unreachable!("worker answered Extract with a non-Extracted reply"),
        };
        self.send(to, ShardMsg::Add(checkpoint));
        self.assignment.insert(moved, to);
        self.counts[from] -= 1;
        self.counts[to] += 1;
    }

    /// Deletes the checkpoint with the given start id, then rebalances if
    /// shard sizes have drifted apart.
    pub fn remove(&mut self, start: u64) {
        let worker = self
            .assignment
            .remove(&start)
            .expect("removing a checkpoint the pool does not own");
        self.send(worker, ShardMsg::Remove(start));
        self.counts[worker] -= 1;
        self.rebalance();
    }

    /// Fetches the serializable state of the checkpoint with the given
    /// start id (without moving it out of its shard); `None` if its oracle
    /// lacks snapshot support.
    pub fn snapshot(&self, start: u64) -> Option<crate::snapshot::CheckpointState> {
        let worker = *self
            .assignment
            .get(&start)
            .expect("snapshotting a checkpoint the pool does not own");
        self.workers[worker]
            .tx
            .send(ShardMsg::Snapshot(start))
            .expect("shard worker hung up");
        match self.recv(worker) {
            ShardReply::Snapshot(s) => *s,
            _ => unreachable!("worker answered Snapshot with a non-Snapshot reply"),
        }
    }

    /// Fetches the full solution of the checkpoint with the given start id.
    pub fn solution(&self, start: u64) -> Solution {
        let worker = *self
            .assignment
            .get(&start)
            .expect("querying a checkpoint the pool does not own");
        self.workers[worker]
            .tx
            .send(ShardMsg::Query(start))
            .expect("shard worker hung up");
        match self.recv(worker) {
            ShardReply::Solution(s) => *s,
            _ => unreachable!("worker answered Query with a non-Solution reply"),
        }
    }

    /// Index of the worker owning the fewest checkpoints.
    fn least_loaded(&self) -> usize {
        let mut best = 0usize;
        for (i, &c) in self.counts.iter().enumerate() {
            if c < self.counts[best] {
                best = i;
            }
        }
        best
    }

    /// Moves checkpoints from the richest to the poorest shard until shard
    /// sizes differ by at most 2.  The newest checkpoint of the richest
    /// shard moves first (deterministic choice; which checkpoint lives where
    /// never affects results, only balance).  The slack of 2 leaves the
    /// timing-driven [`Self::adapt`] room to deliberately unbalance counts
    /// by one without the two mechanisms thrashing.
    fn rebalance(&mut self) {
        loop {
            let poorest = self.least_loaded();
            let richest = self
                .counts
                .iter()
                .enumerate()
                .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
                .map(|(i, _)| i)
                .expect("pool has at least one worker");
            if self.counts[richest] <= self.counts[poorest] + 2 {
                return;
            }
            let moved = self
                .assignment
                .iter()
                .filter(|&(_, &w)| w == richest)
                .map(|(&start, _)| start)
                .max()
                .expect("richest shard is non-empty");
            self.transfer(moved, richest, poorest);
        }
    }

    fn send(&self, worker: usize, msg: ShardMsg) {
        self.workers[worker]
            .tx
            .send(msg)
            .expect("shard worker hung up");
    }

    fn recv(&self, worker: usize) -> ShardReply {
        self.workers[worker]
            .rx
            .recv()
            .expect("shard worker hung up without replying")
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        for w in &self.workers {
            // A worker that already panicked has dropped its receiver; the
            // failed send is fine, the join below surfaces the panic.
            let _ = w.tx.send(ShardMsg::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(join) = w.join.take() {
                if join.join().is_err() && !std::thread::panicking() {
                    panic!("shard worker panicked");
                }
            }
        }
    }
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("threads", &self.workers.len())
            .field("checkpoints", &self.assignment.len())
            .field("counts", &self.counts)
            .finish()
    }
}

/// The worker loop: owns its shard (plus its copy of the dense weight
/// table and its bitmap-recycling [`WordArena`]), serves messages until
/// shutdown.
fn worker_loop(rx: Receiver<ShardMsg>, tx: Sender<ShardReply>) {
    let mut shard: Vec<Checkpoint> = Vec::new();
    // `Some` once any feed carried a weight table (weighted objective).
    let mut table: Option<Vec<f64>> = None;
    // Slide-loop bitmap recycling: expired checkpoints (Remove) donate
    // their bitmap backing stores to the next slide's set promotions.
    let mut arena = WordArena::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Feed(slide, delta) => {
                if let Some(d) = delta {
                    table.get_or_insert_with(Vec::new).extend_from_slice(&d);
                }
                let weights = match &table {
                    None => DenseWeights::Unit,
                    Some(t) => DenseWeights::Table(t),
                };
                let started = std::time::Instant::now();
                let mut stats = Vec::with_capacity(shard.len());
                for cp in shard.iter_mut() {
                    for action in slide.iter() {
                        cp.process_in(action, &weights, &mut arena);
                    }
                    stats.push(CheckpointStat {
                        start: cp.start(),
                        value: cp.value(),
                        updates: cp.updates(),
                    });
                }
                arena.end_slide();
                let (arena_takes, arena_hits) = arena.stats();
                let report = WorkerFeedReport {
                    nanos: started.elapsed().as_nanos() as u64,
                    arena_takes,
                    arena_hits,
                };
                if tx.send(ShardReply::Fed(stats, report)).is_err() {
                    break;
                }
            }
            ShardMsg::Add(cp) => shard.push(*cp),
            ShardMsg::Remove(start) => {
                if let Some(pos) = shard.iter().position(|c| c.start() == start) {
                    shard.swap_remove(pos).recycle_into(&mut arena);
                }
            }
            ShardMsg::Extract(start) => {
                let pos = shard
                    .iter()
                    .position(|c| c.start() == start)
                    .expect("extracting a checkpoint this shard does not own");
                let cp = shard.swap_remove(pos);
                if tx.send(ShardReply::Extracted(Box::new(cp))).is_err() {
                    break;
                }
            }
            ShardMsg::Query(start) => {
                let cp = shard
                    .iter()
                    .find(|c| c.start() == start)
                    .expect("querying a checkpoint this shard does not own");
                if tx.send(ShardReply::Solution(Box::new(cp.solution()))).is_err() {
                    break;
                }
            }
            ShardMsg::Snapshot(start) => {
                let cp = shard
                    .iter()
                    .find(|c| c.start() == start)
                    .expect("snapshotting a checkpoint this shard does not own");
                if tx.send(ShardReply::Snapshot(Box::new(cp.snapshot()))).is_err() {
                    break;
                }
            }
            ShardMsg::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtim_stream::UserId;
    use rtim_submodular::{OracleConfig, OracleKind};

    fn resolved(id: u64, actor: u32, ancestors: &[u32]) -> ResolvedAction {
        ResolvedAction {
            id,
            actor: UserId(actor),
            ancestors: ancestors.iter().map(|&u| UserId(u)).collect(),
        }
    }

    fn slide() -> Vec<ResolvedAction> {
        (1..=40u64)
            .map(|t| {
                if t % 3 == 0 {
                    resolved(t, (t % 7) as u32, &[((t + 1) % 7) as u32])
                } else {
                    resolved(t, (t % 7) as u32, &[])
                }
            })
            .collect()
    }

    fn checkpoint(start: u64, k: usize) -> Checkpoint {
        Checkpoint::new(start, OracleKind::SieveStreaming, OracleConfig::new(k, 0.2))
    }

    /// Feeds `fed` sequentially to 7 checkpoints with distinct starts 1..=7
    /// and distinct k; `fed` must only contain ids ≥ 7 so every checkpoint
    /// may observe every action.
    fn sequential_stats(fed: &[ResolvedAction]) -> Vec<CheckpointStat> {
        (0..7usize)
            .map(|i| {
                let mut cp = checkpoint(1 + i as u64, 1 + (i % 4));
                for a in fed {
                    cp.process(a, &DenseWeights::Unit);
                }
                CheckpointStat {
                    start: cp.start(),
                    value: cp.value(),
                    updates: cp.updates(),
                }
            })
            .collect()
    }

    #[test]
    fn pool_feed_matches_sequential_bit_for_bit() {
        let slide = slide();
        let fed = &slide[6..]; // ids 7..=40, observable by every checkpoint
        let expected = sequential_stats(fed);
        for threads in [1usize, 2, 4, 8] {
            let mut pool = ShardPool::new(threads);
            for i in 0..7usize {
                pool.add(checkpoint(1 + i as u64, 1 + (i % 4)));
            }
            let mut stats = pool.feed(fed, None);
            stats.sort_by_key(|s| s.start);
            for (got, want) in stats.iter().zip(&expected) {
                assert_eq!(got.start, want.start);
                assert_eq!(got.value.to_bits(), want.value.to_bits());
                assert_eq!(got.updates, want.updates);
            }
        }
    }

    #[test]
    fn add_places_on_least_loaded_worker() {
        let mut pool = ShardPool::new(3);
        for i in 0..7u64 {
            pool.add(checkpoint(i + 1, 2));
        }
        assert_eq!(pool.checkpoint_count(), 7);
        let max = *pool.counts.iter().max().unwrap();
        let min = *pool.counts.iter().min().unwrap();
        assert!(max - min <= 1, "counts: {:?}", pool.counts);
    }

    #[test]
    fn remove_rebalances_skewed_shards() {
        let mut pool = ShardPool::new(2);
        for i in 0..8u64 {
            pool.add(checkpoint(i + 1, 2));
        }
        // Worker 0 owns the odd-numbered adds (1,3,5,7 → starts 1,3,5,7).
        // Deleting three checkpoints from one shard must trigger moves.
        let victims: Vec<u64> = pool
            .assignment
            .iter()
            .filter(|&(_, &w)| w == 0)
            .map(|(&s, _)| s)
            .take(3)
            .collect();
        for v in victims {
            pool.remove(v);
        }
        let max = *pool.counts.iter().max().unwrap();
        let min = *pool.counts.iter().min().unwrap();
        assert!(max - min <= 1, "counts: {:?}", pool.counts);
        assert_eq!(pool.checkpoint_count(), 5);
        // The moved checkpoints still answer queries.
        for (&start, _) in pool.assignment.clone().iter() {
            let _ = pool.solution(start);
        }
    }

    #[test]
    fn solution_round_trips_through_the_owning_worker() {
        let mut pool = ShardPool::new(2);
        pool.add(checkpoint(1, 2));
        pool.add(checkpoint(2, 2));
        let slide = slide();
        pool.feed(&slide[1..], None); // ids 2..=40, observable by both
        let s = pool.solution(1);
        assert!(s.value > 0.0);
        assert!(!s.seeds.is_empty());
    }

    #[test]
    fn aggressive_adaptation_migrates_and_stays_bit_identical() {
        // Sequential ground truth: 3 checkpoints over repeated slides.
        let slide = slide();
        let fed = &slide[6..];
        let rounds = 10usize;
        let mut seq: Vec<Checkpoint> = (0..3usize)
            .map(|i| checkpoint(1 + i as u64, 1 + (i % 4)))
            .collect();
        for _ in 0..rounds {
            for cp in seq.iter_mut() {
                for a in fed {
                    cp.process(a, &DenseWeights::Unit);
                }
            }
        }

        // 2 workers, 3 checkpoints: shard 0 starts with 2 of them, so its
        // EWMA genuinely dominates and the zero-threshold config migrates.
        let mut pool = ShardPool::new(2);
        pool.set_adaptive(AdaptiveConfig::aggressive());
        assert_eq!(pool.adaptive(), AdaptiveConfig::aggressive());
        for i in 0..3usize {
            pool.add(checkpoint(1 + i as u64, 1 + (i % 4)));
        }
        for _ in 0..rounds {
            pool.feed(fed, None);
        }
        let stats = pool.stats();
        assert!(stats.migrations >= 1, "no migration in {rounds} rounds");
        assert!(stats.ewma_max_nanos >= stats.ewma_min_nanos);
        assert!(stats.ewma_min_nanos > 0);
        // Count skew introduced by migration stays within the rebalance
        // slack, and every checkpoint still answers bit-identically.
        let max = *pool.counts.iter().max().unwrap();
        let min = *pool.counts.iter().min().unwrap();
        assert!(max - min <= 2, "counts: {:?}", pool.counts);
        for cp in &seq {
            let s = pool.solution(cp.start());
            let want = cp.solution();
            assert_eq!(s.seeds, want.seeds);
            assert_eq!(s.value.to_bits(), want.value.to_bits());
        }
    }

    #[test]
    fn adapt_holds_off_below_the_time_floor() {
        // Default config: min_nanos is far above anything these tiny
        // slides can accumulate, so no migration may ever fire.
        let slide = slide();
        let mut pool = ShardPool::new(2);
        for i in 0..4u64 {
            pool.add(checkpoint(i + 1, 2));
        }
        let config = AdaptiveConfig {
            min_nanos: 1e15,
            ..AdaptiveConfig::default()
        };
        pool.set_adaptive(config);
        for _ in 0..10 {
            pool.feed(&slide[6..], None);
        }
        assert_eq!(pool.stats().migrations, 0);
    }

    #[test]
    fn feed_reports_surface_span_and_arena_counters() {
        let mut pool = ShardPool::new(2);
        for i in 0..4u64 {
            pool.add(checkpoint(i + 1, 2));
        }
        pool.feed(&slide()[6..], None);
        assert!(pool.last_feed_reports().iter().any(|r| r.nanos > 0));
        let stats = pool.stats();
        assert!(stats.arena_takes >= stats.arena_hits);
    }

    #[test]
    fn empty_pool_feed_is_a_no_op() {
        let mut pool = ShardPool::new(4);
        assert!(pool.feed(&slide(), None).is_empty());
        assert_eq!(pool.checkpoint_count(), 0);
        assert_eq!(pool.threads(), 4);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let pool = ShardPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let mut pool = ShardPool::new(4);
        for i in 0..4u64 {
            pool.add(checkpoint(i + 1, 1));
        }
        pool.feed(&slide()[3..], None); // ids 4..=40, observable by every checkpoint
        drop(pool); // must not hang or panic
    }
}
