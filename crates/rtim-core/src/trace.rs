//! In-memory flight recorder: lock-free per-thread trace rings, slow-op
//! capture and bounded passive dumps.
//!
//! The recorder answers the questions `/metrics` aggregates cannot:
//! *which* frame spent its latency where (parse, queue wait, journal,
//! resolve, shard feed, reply drain), and *what happened just before* a
//! durability transition.  Design constraints, in order:
//!
//! 1. **Zero allocation on the hot path.**  Events are fixed 32-byte
//!    records ([`TraceEvent`]) written into pre-allocated rings; recording
//!    is a handful of atomic stores.  With the `trace` cargo feature off,
//!    [`TraceConfig::is_enabled`] is compile-time `false`, so every
//!    instrumentation site folds to nothing.
//! 2. **Purely passive reads.**  Dumping ([`FlightRecorder::dump`]) scans
//!    the rings without stopping writers and never enqueues engine work —
//!    the same scrape-determinism argument as the metrics sidecar, which
//!    is why tracing preserves bit-identity (pinned by the 256-connection
//!    determinism test at sample rate 1).
//! 3. **Single writer per lane.**  Each recording thread registers its own
//!    ring lane ([`FlightRecorder::writer`]); there is no cross-thread
//!    write contention, and per-lane event indices make dump ordering
//!    exactly monotonic per thread.
//!
//! Each ring slot is guarded by a per-slot sequence word (a seqlock):
//! the writer publishes `2·index+1` before touching the slot's data words
//! and `2·index+2` after, with release fences between; a reader keeps a
//! slot only if the sequence was even and unchanged around its copy of
//! the data.  Torn reads are therefore impossible (property-tested against
//! a naive `VecDeque` model with a racing writer), the writer never waits,
//! and the oldest events are silently overwritten — flight-recorder
//! semantics.  Everything is safe Rust over `AtomicU64`s; this crate
//! forbids `unsafe`.
//!
//! Slow-op capture is the exception to sampling: any request whose
//! end-to-end span exceeds [`TraceConfig::slow_nanos`] has its full stage
//! breakdown promoted to a separate bounded log ([`SlowOp`]), mutex-kept
//! because promotion is off the common path.  See `docs/TRACING.md`.

use rtim_stream::trace::{SlowOp, TraceDump, TraceEvent, STAGE_COUNT};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Hard cap on writer lanes; registration beyond it yields disarmed
/// writers (recording drops, counted) rather than unbounded memory.
pub const MAX_LANES: usize = 32;

/// Flight-recorder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Sample 1-in-`sample` request frames (`0` disables tracing, `1`
    /// traces every frame).  Lifecycle events and slow-op capture ignore
    /// sampling — they are always on while tracing is enabled.
    pub sample: u32,
    /// End-to-end threshold (nanoseconds) above which a request's stage
    /// breakdown is promoted to the retained slow-op log.  `u64::MAX`
    /// disables promotion; `0` promotes everything (useful in smokes).
    pub slow_nanos: u64,
    /// Events retained per writer lane (ring capacity).
    pub ring_capacity: usize,
    /// Slow-op records retained (oldest evicted first).
    pub slow_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample: 0,
            slow_nanos: u64::MAX,
            ring_capacity: 4096,
            slow_capacity: 256,
        }
    }
}

impl TraceConfig {
    /// Tracing enabled at 1-in-`sample`, slow-op threshold in millis.
    pub fn sampled(sample: u32, slow_ms: u64) -> Self {
        TraceConfig {
            sample,
            slow_nanos: slow_ms.saturating_mul(1_000_000),
            ..TraceConfig::default()
        }
    }

    /// Whether this configuration records anything at all.  With the
    /// `trace` cargo feature disabled this is compile-time `false`: the
    /// recorder is never constructed and every instrumentation site —
    /// all guarded by an `Option` that stays `None` — folds away, giving
    /// the required zero-allocation no-op path.
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.sample > 0
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }
}

/// One single-writer ring lane: `capacity` slots, each a sequence word
/// plus four data words (the [`TraceEvent`] packing).
struct Lane {
    /// Per-slot sequence: `0` = never written, odd = write in progress,
    /// `2·index+2` = event `index` committed.
    seq: Vec<AtomicU64>,
    /// Slot data, 4 words per slot.
    words: Vec<AtomicU64>,
}

impl Lane {
    fn new(capacity: usize) -> Lane {
        Lane {
            seq: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            words: (0..capacity * 4).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Seqlock-validated snapshot: every committed slot as
    /// `(event index, event)`, in no particular order.  Slots mid-write
    /// (or overwritten between the two sequence reads) are skipped — a
    /// reader never observes a torn event.
    fn snapshot(&self, out: &mut Vec<(u64, TraceEvent)>) {
        for (slot, seq) in self.seq.iter().enumerate() {
            let s1 = seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue;
            }
            let base = slot * 4;
            let words = [
                self.words[base].load(Ordering::Relaxed),
                self.words[base + 1].load(Ordering::Relaxed),
                self.words[base + 2].load(Ordering::Relaxed),
                self.words[base + 3].load(Ordering::Relaxed),
            ];
            fence(Ordering::Acquire);
            let s2 = seq.load(Ordering::Relaxed);
            if s1 == s2 {
                out.push((s1 / 2 - 1, TraceEvent::from_words(words)));
            }
        }
    }
}

/// Single-writer handle onto one recorder lane.
///
/// Created via [`FlightRecorder::writer`]; each recording thread owns
/// exactly one (the engine loop, each event-loop thread, the persistence
/// layer's lifecycle lane, …), which is what makes the rings lock-free.
pub struct TraceWriter {
    recorder: Arc<FlightRecorder>,
    lane: Option<(u8, Arc<Lane>)>,
    next: u64,
}

impl TraceWriter {
    /// Nanoseconds since the recorder epoch (monotonic).
    pub fn now_nanos(&self) -> u64 {
        self.recorder.now_nanos()
    }

    /// The shared recorder this writer feeds.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// This writer's lane id (`u8::MAX` when disarmed past [`MAX_LANES`]).
    pub fn lane(&self) -> u8 {
        self.lane.as_ref().map_or(u8::MAX, |(id, _)| *id)
    }

    /// Records one event (the `lane` field is stamped here).  Wait-free:
    /// a claim, four stores and a commit; overwrites the lane's oldest
    /// event once the ring is full.
    pub fn record(&mut self, mut event: TraceEvent) {
        let Some((lane_id, lane)) = &self.lane else {
            self.recorder.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        event.lane = *lane_id;
        let index = self.next;
        self.next += 1;
        let slot = (index % lane.seq.len() as u64) as usize;
        let words = event.to_words();
        lane.seq[slot].store(2 * index + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        let base = slot * 4;
        for (i, w) in words.iter().enumerate() {
            lane.words[base + i].store(*w, Ordering::Relaxed);
        }
        fence(Ordering::Release);
        lane.seq[slot].store(2 * index + 2, Ordering::Release);
        self.recorder.bump_stage(event.stage, event.duration_nanos);
    }

    /// Convenience: record a completed span ending now.
    #[allow(clippy::too_many_arguments)]
    pub fn span(&mut self, stage: u8, conn: u64, corr: u32, duration_nanos: u64, aux: u16) {
        let nanos = self.now_nanos();
        self.record(TraceEvent {
            nanos,
            duration_nanos,
            conn,
            corr,
            stage,
            lane: 0,
            aux,
        });
    }
}

/// The shared flight recorder: lane registry, slow-op log, cumulative
/// per-stage totals and the passive [`dump`](FlightRecorder::dump).
pub struct FlightRecorder {
    config: TraceConfig,
    epoch: Instant,
    lanes: Mutex<Vec<Arc<Lane>>>,
    slow: Mutex<std::collections::VecDeque<SlowOp>>,
    /// Cumulative (events, span nanos) per stage code, since creation.
    stage_counts: [AtomicU64; STAGE_COUNT],
    stage_nanos: [AtomicU64; STAGE_COUNT],
    slow_total: AtomicU64,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder with the given configuration.
    pub fn new(config: TraceConfig) -> Arc<FlightRecorder> {
        Arc::new(FlightRecorder {
            config,
            epoch: Instant::now(),
            lanes: Mutex::new(Vec::new()),
            slow: Mutex::new(std::collections::VecDeque::new()),
            stage_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            stage_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            slow_total: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// The recorder's configuration.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Nanoseconds since the recorder epoch (monotonic, shared by every
    /// lane — cross-lane event times are directly comparable).
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Registers a new writer lane for the calling thread.  Past
    /// [`MAX_LANES`] the writer is disarmed (its records are counted as
    /// dropped) so lane memory stays bounded no matter how many threads
    /// ask.
    pub fn writer(self: &Arc<FlightRecorder>) -> TraceWriter {
        let mut lanes = self.lanes.lock().expect("lane registry poisoned");
        let lane = if lanes.len() < MAX_LANES {
            let lane = Arc::new(Lane::new(self.config.ring_capacity.max(1)));
            lanes.push(Arc::clone(&lane));
            Some(((lanes.len() - 1) as u8, lane))
        } else {
            None
        };
        TraceWriter {
            recorder: Arc::clone(self),
            lane,
            next: 0,
        }
    }

    fn bump_stage(&self, stage: u8, nanos: u64) {
        if let Some(counter) = self.stage_counts.get(stage as usize) {
            counter.fetch_add(1, Ordering::Relaxed);
            self.stage_nanos[stage as usize].fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Promotes a slow-op record to the retained log (oldest evicted at
    /// [`TraceConfig::slow_capacity`]).  Off the common path by
    /// definition — only requests over the threshold arrive here.
    pub fn record_slow(&self, op: SlowOp) {
        self.slow_total.fetch_add(1, Ordering::Relaxed);
        let mut slow = self.slow.lock().expect("slow log poisoned");
        if slow.len() >= self.config.slow_capacity.max(1) {
            slow.pop_front();
        }
        slow.push_back(op);
    }

    /// Total events recorded since creation (all stages).
    pub fn events_total(&self) -> u64 {
        self.stage_counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Total slow ops promoted since creation.
    pub fn slow_total(&self) -> u64 {
        self.slow_total.load(Ordering::Relaxed)
    }

    /// Events dropped by disarmed writers (lane cap exceeded).
    pub fn dropped_total(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Passive bounded dump: seqlock-validated ring snapshot (newest
    /// `max_events` across lanes, ordered by `(lane, nanos)` — exactly
    /// monotonic per lane), the retained slow ops, and the cumulative
    /// stage totals.  Never blocks writers, never allocates on their
    /// path, and never enqueues engine work; `slow_only` skips the ring
    /// scan entirely.
    pub fn dump(&self, max_events: usize, slow_only: bool) -> TraceDump {
        let mut events = Vec::new();
        if !slow_only && max_events > 0 {
            let lanes: Vec<Arc<Lane>> = self
                .lanes
                .lock()
                .expect("lane registry poisoned")
                .clone();
            let mut indexed: Vec<(u64, TraceEvent)> = Vec::new();
            for lane in &lanes {
                lane.snapshot(&mut indexed);
            }
            if indexed.len() > max_events {
                // Keep the newest events by end time, then restore the
                // canonical (lane, nanos) presentation order.
                indexed.sort_by_key(|(_, e)| e.nanos);
                let cut = indexed.len() - max_events;
                indexed.drain(..cut);
            }
            indexed.sort_by_key(|(index, e)| (e.lane, *index));
            events = indexed.into_iter().map(|(_, e)| e).collect();
        }
        let slow_ops: Vec<SlowOp> = {
            let slow = self.slow.lock().expect("slow log poisoned");
            slow.iter().copied().collect()
        };
        let mut stage_totals = [(0u64, 0u64); STAGE_COUNT];
        for (i, slot) in stage_totals.iter_mut().enumerate() {
            *slot = (
                self.stage_counts[i].load(Ordering::Relaxed),
                self.stage_nanos[i].load(Ordering::Relaxed),
            );
        }
        TraceDump {
            events,
            slow_ops,
            stage_totals,
        }
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("config", &self.config)
            .field("events_total", &self.events_total())
            .field("slow_total", &self.slow_total())
            .finish()
    }
}

/// Per-request span context, stamped by the front-end when a sampled (or
/// potentially slow) frame is parsed and carried on the engine command so
/// the engine thread can attribute its stage timings to the request.
///
/// `Copy` and 40 bytes — attaching it to commands costs no allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanCtx {
    /// Front-end connection id.
    pub conn: u64,
    /// Correlation id (`u32::MAX` = none).
    pub corr: u32,
    /// Request kind (protocol tag of the triggering frame).
    pub kind: u8,
    /// Whether this frame fell in the 1-in-N sample (ring events are
    /// emitted only for sampled frames; slow-op promotion ignores this).
    pub sampled: bool,
    /// Socket-readable time (nanos since recorder epoch) — the
    /// end-to-end span starts here.
    pub start_nanos: u64,
    /// Readable→parsed duration measured by the front-end.
    pub parse_nanos: u64,
    /// Enqueue time into the bounded command queue (queue wait ends at
    /// engine dequeue).
    pub enqueue_nanos: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtim_stream::trace::TraceStage;

    fn event(n: u64) -> TraceEvent {
        TraceEvent {
            nanos: n,
            duration_nanos: n * 10,
            conn: 1,
            corr: n as u32,
            stage: TraceStage::Parse.code(),
            lane: 0,
            aux: 0,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_dump_is_monotonic() {
        let rec = FlightRecorder::new(TraceConfig {
            sample: 1,
            ring_capacity: 8,
            ..TraceConfig::default()
        });
        let mut w = rec.writer();
        for n in 0..20 {
            w.record(event(n));
        }
        let dump = rec.dump(usize::MAX, false);
        let nanos: Vec<u64> = dump.events.iter().map(|e| e.nanos).collect();
        assert_eq!(nanos, (12..20).collect::<Vec<_>>());
        assert_eq!(rec.events_total(), 20);
    }

    #[test]
    fn dump_caps_to_newest_events() {
        let rec = FlightRecorder::new(TraceConfig {
            sample: 1,
            ring_capacity: 64,
            ..TraceConfig::default()
        });
        let mut w = rec.writer();
        for n in 0..50 {
            w.record(event(n));
        }
        let dump = rec.dump(10, false);
        assert_eq!(dump.events.len(), 10);
        assert_eq!(dump.events[0].nanos, 40);
        assert_eq!(dump.stage_totals[TraceStage::Parse.code() as usize].0, 50);
    }

    #[test]
    fn slow_log_is_bounded() {
        let rec = FlightRecorder::new(TraceConfig {
            sample: 1,
            slow_capacity: 4,
            ..TraceConfig::default()
        });
        for n in 0..10u64 {
            rec.record_slow(SlowOp {
                conn: n,
                corr: 0,
                kind: 1,
                start_nanos: n,
                total_nanos: 1,
                stages: [0; rtim_stream::trace::SLOW_STAGES],
            });
        }
        let dump = rec.dump(0, true);
        assert_eq!(dump.slow_ops.len(), 4);
        assert_eq!(dump.slow_ops[0].conn, 6);
        assert_eq!(rec.slow_total(), 10);
        assert!(dump.events.is_empty());
    }

    #[test]
    fn lane_cap_disarms_instead_of_growing() {
        let rec = FlightRecorder::new(TraceConfig {
            sample: 1,
            ring_capacity: 4,
            ..TraceConfig::default()
        });
        let mut writers: Vec<TraceWriter> = (0..MAX_LANES + 3).map(|_| rec.writer()).collect();
        for w in &mut writers {
            w.record(event(1));
        }
        assert_eq!(rec.dropped_total(), 3);
        assert_eq!(writers[MAX_LANES].lane(), u8::MAX);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn enabled_follows_sample_rate() {
        assert!(!TraceConfig::default().is_enabled());
        assert!(TraceConfig::sampled(64, 50).is_enabled());
        assert_eq!(TraceConfig::sampled(64, 50).slow_nanos, 50_000_000);
    }
}
