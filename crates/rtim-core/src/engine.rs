//! The SIM engine: stream driver around a checkpoint framework.
//!
//! The engine owns the pieces every framework needs but should not manage
//! itself (§4's separation of concerns):
//!
//! * the [`SlidingWindow`] of the `N` most recent actions,
//! * the [`PropagationIndex`] resolving reply ancestries, and
//! * a [`Framework`] (IC or SIC) fed with resolved actions slide by slide.
//!
//! Ingestion comes in three granularities:
//!
//! * [`SimEngine::process_slide`] — one explicit slide (any size),
//! * [`SimEngine::ingest_batch`] — a server-shaped batch of any number of
//!   actions: ancestries are resolved in **one** pass over the batch, then
//!   the resolved actions are cut into `L`-sized slides and pipelined into
//!   the framework (and its shard pool) without re-cloning per checkpoint,
//! * [`SimEngine::run_stream`] — replays a whole [`SocialStream`], querying
//!   after every slide, and returns a [`RunReport`] with per-slide timings
//!   and answers (what the benches and figure binaries consume).
//!
//! It also exposes the pieces the evaluation harness needs: the exact
//! window-scoped influence sets (for the Greedy baseline / quality metric)
//! and per-slide statistics.

use crate::config::SimConfig;
use crate::framework::{Framework, FrameworkKind, ResolvedAction, Solution};
use crate::ic::IcFramework;
use crate::intern::UserInterner;
use crate::sic::SicFramework;
use rtim_stream::{
    window_influence_sets, Action, InfluenceSets, PropagationIndex, SlidingWindow, SocialStream,
};
use rtim_submodular::ElementWeight;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Per-slide statistics reported by [`SimEngine::process_slide`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SlideReport {
    /// Number of actions processed in this slide.
    pub actions: usize,
    /// Number of actions evicted from the window by this slide.
    pub expired: usize,
    /// Checkpoints maintained by the framework after the slide.
    pub checkpoints: usize,
    /// Total oracle element updates performed by the framework so far.
    pub oracle_updates: u64,
    /// Wall-clock nanoseconds spent ingesting this slide: ancestry
    /// resolution (amortized per action for batched ingestion), window
    /// maintenance and the framework's checkpoint updates.
    pub feed_nanos: u64,
    /// Wall-clock nanoseconds spent answering the SIM query after this
    /// slide.  Filled by [`SimEngine::run_stream`] (which queries every
    /// slide); 0 when the caller never queried.
    pub query_nanos: u64,
    /// Ingest-queue depth observed when the batch producing this slide was
    /// dequeued.  Filled by [`crate::EngineHandle`]'s engine thread (the
    /// asynchronous ingest pipeline); `None` for synchronous callers
    /// ([`SimEngine::process_slide`], [`SimEngine::run_stream`]), which
    /// have no queue — so depth aggregations can skip offline slides
    /// instead of counting them as zero-depth samples.
    pub queue_depth: Option<usize>,
}

/// Stage split of one batched ingest, for the tracing pipeline: how the
/// batch's wall time divided between ancestry resolution and the window +
/// checkpoint feed.  Returned by [`SimEngine::ingest_batch_traced`];
/// the per-slide [`SlideReport::feed_nanos`] remains the amortized total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedBreakdown {
    /// Nanoseconds resolving ancestries + interning over the whole batch.
    pub resolve_nanos: u64,
    /// Nanoseconds feeding the cut slides (window maintenance + framework
    /// checkpoint fan-out, summed across the batch's slides).
    pub feed_nanos: u64,
}

/// Aggregated result of replaying a whole stream
/// ([`SimEngine::run_stream`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RunReport {
    /// One report per window slide, in stream order.
    pub slides: Vec<SlideReport>,
    /// The SIM answer after each slide (aligned with `slides`).
    pub solutions: Vec<Solution>,
}

impl RunReport {
    /// Total actions processed.
    pub fn actions(&self) -> u64 {
        self.slides.iter().map(|r| r.actions as u64).sum()
    }

    /// Total nanoseconds spent feeding slides (resolution + window +
    /// checkpoint updates).  Saturates instead of wrapping: a soak long
    /// enough to overflow `u64` nanoseconds must pin at the maximum, not
    /// silently report a tiny total.
    pub fn feed_nanos(&self) -> u64 {
        self.slides
            .iter()
            .fold(0u64, |total, r| total.saturating_add(r.feed_nanos))
    }

    /// Total nanoseconds spent answering queries (saturating, like
    /// [`RunReport::feed_nanos`]).
    pub fn query_nanos(&self) -> u64 {
        self.slides
            .iter()
            .fold(0u64, |total, r| total.saturating_add(r.query_nanos))
    }

    /// Aggregate throughput in actions per second of processing time
    /// (feeding + querying), the metric of Figures 7 and 9–12.
    pub fn throughput(&self) -> f64 {
        let nanos = self.feed_nanos().saturating_add(self.query_nanos());
        if nanos == 0 {
            f64::INFINITY
        } else {
            self.actions() as f64 / (nanos as f64 / 1e9)
        }
    }

    /// The answer after the final slide (empty if the stream was empty).
    pub fn final_solution(&self) -> Solution {
        self.solutions.last().cloned().unwrap_or_else(Solution::empty)
    }
}

/// Continuous SIM query processor.
///
/// The engine is also the **interning boundary**: raw user ids are mapped to
/// dense ids (first-appearance order) during ancestry resolution, before any
/// slide reaches the framework or its shard pool — shard workers never mint
/// ids, so sharded execution stays bit-identical to sequential.  Everything
/// behind [`Framework`] speaks dense ids; [`SimEngine::query`] translates
/// the answer's seeds back to raw ids.
pub struct SimEngine {
    config: SimConfig,
    window: SlidingWindow,
    index: PropagationIndex,
    framework: Box<dyn Framework>,
    slides: u64,
    /// Raw-id → dense-id mapping, minted at resolve time.
    interner: UserInterner,
    /// Number of interned users already announced to the framework via
    /// [`Framework::register_users`].
    registered: usize,
}

impl SimEngine {
    /// Creates an engine running the IC framework with the cardinality
    /// influence function.
    pub fn new_ic(config: SimConfig) -> Self {
        Self::with_framework(config, Box::new(IcFramework::new(config)))
    }

    /// Creates an engine running the SIC framework with the cardinality
    /// influence function.
    pub fn new_sic(config: SimConfig) -> Self {
        Self::with_framework(config, Box::new(SicFramework::new(config)))
    }

    /// Creates an engine for the given framework kind.
    pub fn new(config: SimConfig, kind: FrameworkKind) -> Self {
        match kind {
            FrameworkKind::Ic => Self::new_ic(config),
            FrameworkKind::Sic => Self::new_sic(config),
        }
    }

    /// Creates an engine running IC with a custom influence function
    /// (e.g. conformity-aware weights, Appendix A).
    pub fn new_ic_weighted<W: ElementWeight + Send + 'static>(config: SimConfig, weight: W) -> Self {
        Self::with_framework(config, Box::new(IcFramework::with_weight(config, weight)))
    }

    /// Creates an engine running SIC with a custom influence function.
    pub fn new_sic_weighted<W: ElementWeight + Send + 'static>(
        config: SimConfig,
        weight: W,
    ) -> Self {
        Self::with_framework(config, Box::new(SicFramework::with_weight(config, weight)))
    }

    /// Creates an engine around an arbitrary framework implementation.
    pub fn with_framework(config: SimConfig, framework: Box<dyn Framework>) -> Self {
        SimEngine {
            config,
            window: SlidingWindow::new(config.window_size),
            index: PropagationIndex::new(),
            framework,
            slides: 0,
            interner: UserInterner::new(),
            registered: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The current sliding window.
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }

    /// The propagation index accumulated so far.
    pub fn index(&self) -> &PropagationIndex {
        &self.index
    }

    /// Which framework the engine runs.
    pub fn framework_kind(&self) -> FrameworkKind {
        self.framework.kind()
    }

    /// Number of slides processed so far.
    pub fn slides_processed(&self) -> u64 {
        self.slides
    }

    /// Adaptive-placement counters of the framework's shard pool (all
    /// zeros under sequential execution); see [`crate::pool::PoolStats`].
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.framework.pool_stats()
    }

    /// Reconfigures the timing-driven checkpoint placement of the
    /// framework's shard pool (no-op under sequential execution);
    /// placement never affects answers, only load balance.
    pub fn set_adaptive(&mut self, config: crate::pool::AdaptiveConfig) {
        self.framework.set_adaptive(config);
    }

    /// Latest per-shard feed reports from the framework's pool (empty
    /// under sequential execution); input to per-shard trace spans.
    pub fn shard_feed_reports(&self) -> &[crate::pool::WorkerFeedReport] {
        self.framework.shard_feed_reports()
    }

    /// The engine's user interner (raw ↔ dense id mapping).
    pub fn interner(&self) -> &UserInterner {
        &self.interner
    }

    /// Interned users already announced to the framework (snapshot
    /// bookkeeping; equals [`UserInterner::len`] between batches).
    pub fn registered_users(&self) -> usize {
        self.registered
    }

    /// The framework's serializable state (`None` for custom frameworks or
    /// oracles without snapshot support); see [`crate::snapshot`].
    pub(crate) fn framework_snapshot(&self) -> Option<crate::snapshot::FrameworkState> {
        self.framework.snapshot_state()
    }

    /// Reassembles an engine from restored parts (the
    /// [`SimEngine::restore`](crate::snapshot) path), validating the
    /// invariants the streaming constructors normally establish.
    pub(crate) fn from_restored_parts(
        config: SimConfig,
        framework: Box<dyn Framework>,
        slides: u64,
        registered: usize,
        interner_raws: Vec<rtim_stream::UserId>,
        window_actions: Vec<Action>,
        index: PropagationIndex,
    ) -> Result<SimEngine, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let interner = UserInterner::from_raws(interner_raws).map_err(SnapshotError::Corrupt)?;
        if registered > interner.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{registered} users registered but only {} interned",
                interner.len()
            )));
        }
        if window_actions.len() > config.window_size {
            return Err(SnapshotError::Corrupt(format!(
                "window holds {} actions but N = {}",
                window_actions.len(),
                config.window_size
            )));
        }
        let mut window = SlidingWindow::new(config.window_size);
        for action in window_actions {
            window.push(action);
        }
        Ok(SimEngine {
            config,
            window,
            index,
            framework,
            slides,
            interner,
            registered,
        })
    }

    /// Resolves the reply ancestry of every action in `actions` through the
    /// propagation index, in one pass, interning every user into the dense
    /// id space as it appears.  The returned actions carry **dense** ids.
    fn resolve(&mut self, actions: &[Action]) -> Vec<ResolvedAction> {
        let mut resolved = Vec::with_capacity(actions.len());
        for action in actions {
            let updated = self.index.insert(action);
            // `updated` = actor followed by ancestor users (raw ids).
            let (actor, ancestors) = updated.split_first().expect("non-empty update set");
            resolved.push(ResolvedAction {
                id: action.id.0,
                actor: self.interner.intern(*actor),
                ancestors: ancestors.iter().map(|&u| self.interner.intern(u)).collect(),
            });
        }
        resolved
    }

    /// Announces users interned since the last announcement to the
    /// framework, so its dense weight table covers the coming slide.
    fn register_new_users(&mut self) {
        if self.registered < self.interner.len() {
            self.framework
                .register_users(&self.interner.raws()[self.registered..]);
            self.registered = self.interner.len();
        }
    }

    /// Pushes one already-resolved slide through the window and the
    /// framework, returning the slide report (without query timing).
    fn feed_slide(
        &mut self,
        actions: &[Action],
        resolved: &[ResolvedAction],
        resolve_nanos: u64,
    ) -> SlideReport {
        let started = Instant::now();
        self.register_new_users();
        let mut expired = 0usize;
        for &action in actions {
            if self.window.push(action).is_some() {
                expired += 1;
            }
        }
        let window_start = self.window.oldest_id().map(|a| a.0).unwrap_or(1);
        self.framework.process_slide(resolved, window_start);
        self.slides += 1;
        SlideReport {
            actions: actions.len(),
            expired,
            checkpoints: self.framework.checkpoint_count(),
            oracle_updates: self.framework.oracle_updates(),
            feed_nanos: resolve_nanos + started.elapsed().as_nanos() as u64,
            query_nanos: 0,
            queue_depth: None,
        }
    }

    /// Processes one window slide (any number of actions; the configured
    /// slide length `L` is the convention used by the experiment harness but
    /// the engine accepts arbitrary batch sizes, including 1).
    pub fn process_slide(&mut self, actions: &[Action]) -> SlideReport {
        if actions.is_empty() {
            return SlideReport {
                checkpoints: self.framework.checkpoint_count(),
                oracle_updates: self.framework.oracle_updates(),
                ..SlideReport::default()
            };
        }
        let started = Instant::now();
        let resolved = self.resolve(actions);
        let resolve_nanos = started.elapsed().as_nanos() as u64;
        self.feed_slide(actions, &resolved, resolve_nanos)
    }

    /// Ingests a batch of any number of actions: ancestries are resolved in
    /// one pass over the whole batch, then the batch is cut into slides of
    /// the configured length `L` and each slide is fed to the framework.
    /// Returns one report per slide (the resolution cost is amortized across
    /// the slides proportionally to their size).
    ///
    /// This is the server-shaped ingest path: a front-end can hand the
    /// engine whatever burst of actions arrived since the last call.  Slide
    /// boundaries are cut **within** each call — a burst whose length is not
    /// a multiple of `L` ends with one shorter slide (fully processed and
    /// queryable immediately; nothing is buffered across calls), exactly as
    /// if that shorter slide had been passed to [`Self::process_slide`].
    /// Front-ends that need slides of exactly `L` actions should accumulate
    /// to `L` before calling.
    pub fn ingest_batch(&mut self, actions: &[Action]) -> Vec<SlideReport> {
        self.ingest_batch_traced(actions).0
    }

    /// [`Self::ingest_batch`] plus the batch's [`FeedBreakdown`] — the
    /// resolve/feed stage split the flight recorder attributes to traced
    /// requests.  Identical processing (the plain path delegates here), so
    /// tracing can never perturb results.
    pub fn ingest_batch_traced(&mut self, actions: &[Action]) -> (Vec<SlideReport>, FeedBreakdown) {
        if actions.is_empty() {
            return (Vec::new(), FeedBreakdown::default());
        }
        let started = Instant::now();
        let resolved = self.resolve(actions);
        let resolve_nanos = started.elapsed().as_nanos() as u64;
        let per_action = resolve_nanos / actions.len() as u64;

        let slide_len = self.config.slide;
        let feed_started = Instant::now();
        let mut reports = Vec::with_capacity(actions.len().div_ceil(slide_len));
        for (chunk, resolved_chunk) in actions.chunks(slide_len).zip(resolved.chunks(slide_len)) {
            reports.push(self.feed_slide(chunk, resolved_chunk, per_action * chunk.len() as u64));
        }
        let breakdown = FeedBreakdown {
            resolve_nanos,
            feed_nanos: feed_started.elapsed().as_nanos() as u64,
        };
        (reports, breakdown)
    }

    /// Replays a whole stream in `L`-sized slides, answering the SIM query
    /// after every slide, and reports per-slide statistics, timings and
    /// answers.
    pub fn run_stream(&mut self, stream: &SocialStream) -> RunReport {
        let mut slides = Vec::with_capacity(stream.len().div_ceil(self.config.slide));
        let mut solutions = Vec::with_capacity(slides.capacity());
        for batch in stream.batches(self.config.slide) {
            for mut report in self.ingest_batch(batch) {
                let started = Instant::now();
                let solution = self.query();
                report.query_nanos = started.elapsed().as_nanos() as u64;
                slides.push(report);
                solutions.push(solution);
            }
        }
        RunReport { slides, solutions }
    }

    /// Answers the SIM query for the current window.
    ///
    /// The framework answers in dense-id space; the seeds are translated
    /// back to raw user ids here.
    pub fn query(&self) -> Solution {
        let mut solution = self.framework.query();
        for seed in &mut solution.seeds {
            *seed = self.interner.raw(*seed);
        }
        solution
    }

    /// Number of checkpoints currently maintained by the framework.
    pub fn checkpoint_count(&self) -> usize {
        self.framework.checkpoint_count()
    }

    /// Total oracle element updates performed by the framework so far.
    pub fn oracle_updates(&self) -> u64 {
        self.framework.oracle_updates()
    }

    /// Exact influence sets of the current window (recomputed from scratch;
    /// used by baselines, the quality metric and tests — not on the
    /// streaming hot path).
    pub fn window_influence_sets(&self) -> InfluenceSets {
        window_influence_sets(&self.window, &self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtim_submodular::{brute_force_best, UnitWeight};
    use rtim_stream::UserId;

    fn figure1_actions() -> Vec<Action> {
        vec![
            Action::root(1u64, 1u32),
            Action::reply(2u64, 2u32, 1u64),
            Action::root(3u64, 3u32),
            Action::reply(4u64, 3u32, 1u64),
            Action::reply(5u64, 4u32, 3u64),
            Action::reply(6u64, 1u32, 3u64),
            Action::reply(7u64, 5u32, 3u64),
            Action::reply(8u64, 4u32, 7u64),
            Action::root(9u64, 2u32),
            Action::reply(10u64, 6u32, 9u64),
        ]
    }

    #[test]
    fn ic_engine_tracks_example2() {
        let mut engine = SimEngine::new_ic(SimConfig::new(2, 0.3, 8, 1));
        let mut values = Vec::new();
        for a in figure1_actions() {
            engine.process_slide(&[a]);
            values.push(engine.query().value);
        }
        assert_eq!(values[7], 5.0);
        assert_eq!(values[9], 6.0);
        assert_eq!(engine.framework_kind(), FrameworkKind::Ic);
        assert_eq!(engine.slides_processed(), 10);
    }

    #[test]
    fn sic_engine_stays_within_bound_of_window_optimum() {
        let config = SimConfig::new(2, 0.2, 8, 2);
        let mut engine = SimEngine::new_sic(config);
        for slide in figure1_actions().chunks(2) {
            engine.process_slide(slide);
            let solution = engine.query();
            let inf = engine.window_influence_sets();
            let opt = brute_force_best(&inf, 2, &UnitWeight).value;
            let bound = (0.5 - 0.2) * (1.0 - 0.2) / 2.0;
            assert!(solution.value >= bound * opt - 1e-9);
            assert!(solution.value <= opt + 1e-9);
            // The reported seeds themselves achieve a comparable coverage in
            // the *checkpoint's* (append-only) view; against the exact
            // window sets they can only be evaluated upward (Theorem 2).
            let realized = inf.coverage(&solution.seeds) as f64;
            assert!(realized + 1e-9 >= solution.value * 0.99 || realized >= bound * opt);
        }
    }

    #[test]
    fn slide_report_counts_actions_and_expiry() {
        let mut engine = SimEngine::new_ic(SimConfig::new(2, 0.3, 4, 2));
        let actions = figure1_actions();
        let r1 = engine.process_slide(&actions[..2]);
        assert_eq!(r1.actions, 2);
        assert_eq!(r1.expired, 0);
        let _ = engine.process_slide(&actions[2..4]);
        let r3 = engine.process_slide(&actions[4..6]);
        assert_eq!(r3.expired, 2);
        assert!(r3.oracle_updates > 0);
        assert!(r3.checkpoints <= 2);
    }

    #[test]
    fn ingest_batch_matches_per_slide_processing() {
        let config = SimConfig::new(2, 0.3, 8, 2);
        let actions = figure1_actions();
        // Engine A: explicit slides of L = 2.
        let mut by_slide = SimEngine::new_ic(config);
        let mut slide_values = Vec::new();
        for chunk in actions.chunks(2) {
            by_slide.process_slide(chunk);
            slide_values.push(by_slide.query().value);
        }
        // Engine B: one batch covering the whole stream; the engine must cut
        // it into the same L-aligned slides.
        let mut by_batch = SimEngine::new_ic(config);
        let reports = by_batch.ingest_batch(&actions);
        assert_eq!(reports.len(), 5);
        assert_eq!(reports.iter().map(|r| r.actions).sum::<usize>(), 10);
        assert!(reports.iter().all(|r| r.feed_nanos > 0));
        assert_eq!(by_batch.slides_processed(), 5);
        assert_eq!(by_batch.query().value, *slide_values.last().unwrap());
        assert_eq!(by_batch.checkpoint_count(), by_slide.checkpoint_count());
        // Engine C: two separate batches (4 + 6) must yield the same final
        // state — the engine cuts at L boundaries within each call.
        let mut ragged = SimEngine::new_ic(config);
        let head = ragged.ingest_batch(&actions[..4]);
        let tail = ragged.ingest_batch(&actions[4..]);
        assert_eq!(head.len() + tail.len(), 5);
        assert_eq!(ragged.query().value, *slide_values.last().unwrap());
    }

    #[test]
    fn ingest_batch_cuts_slides_within_each_call() {
        // A burst that is NOT a multiple of L ends with one shorter slide;
        // nothing is buffered across calls (documented behaviour).  3 + 7
        // actions with L = 2 → slides of 2,1 then 2,2,2,1.
        let config = SimConfig::new(2, 0.3, 8, 2);
        let actions = figure1_actions();
        let mut engine = SimEngine::new_ic(config);
        let head = engine.ingest_batch(&actions[..3]);
        assert_eq!(head.iter().map(|r| r.actions).collect::<Vec<_>>(), vec![2, 1]);
        let tail = engine.ingest_batch(&actions[3..]);
        assert_eq!(
            tail.iter().map(|r| r.actions).collect::<Vec<_>>(),
            vec![2, 2, 2, 1]
        );
        assert_eq!(engine.slides_processed(), 6);
        // The shorter slides are fully processed: same result as the same
        // slide pattern through process_slide.
        let mut by_slide = SimEngine::new_ic(config);
        for chunk in [&actions[..2], &actions[2..3], &actions[3..5], &actions[5..7], &actions[7..9], &actions[9..]] {
            by_slide.process_slide(chunk);
        }
        assert_eq!(engine.query(), by_slide.query());
        assert_eq!(engine.checkpoint_count(), by_slide.checkpoint_count());
    }

    #[test]
    fn run_stream_reports_per_slide_answers_and_timings() {
        let stream = SocialStream::new(figure1_actions()).unwrap();
        let config = SimConfig::new(2, 0.3, 8, 2);
        let mut engine = SimEngine::new_ic(config);
        let report = engine.run_stream(&stream);
        assert_eq!(report.slides.len(), 5);
        assert_eq!(report.solutions.len(), 5);
        assert_eq!(report.actions(), 10);
        // Same per-slide answers as explicit slide-by-slide processing.
        assert_eq!(report.solutions[3].value, 5.0);
        assert_eq!(report.solutions[4].value, 6.0);
        assert_eq!(report.final_solution().value, 6.0);
        assert!(report.feed_nanos() > 0);
        assert!(report.query_nanos() > 0);
        assert!(report.throughput() > 0.0);
        assert!(report.slides.iter().all(|r| r.query_nanos > 0));
    }

    #[test]
    fn run_stream_with_sharded_engine_matches_sequential() {
        let stream = SocialStream::new(figure1_actions()).unwrap();
        let sequential = SimConfig::new(2, 0.2, 8, 2);
        let sharded = sequential.with_threads(4);
        let mut seq = SimEngine::new_sic(sequential);
        let mut par = SimEngine::new_sic(sharded);
        let seq_report = seq.run_stream(&stream);
        let par_report = par.run_stream(&stream);
        assert_eq!(seq_report.solutions, par_report.solutions);
        assert_eq!(
            seq_report.slides.iter().map(|r| r.checkpoints).collect::<Vec<_>>(),
            par_report.slides.iter().map(|r| r.checkpoints).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn run_report_nano_sums_saturate_instead_of_wrapping() {
        // A soak whose accumulated nanos exceed u64 must pin at the
        // maximum (regression: these sums used wrapping `Iterator::sum`).
        let report = RunReport {
            slides: vec![
                SlideReport {
                    feed_nanos: u64::MAX - 10,
                    query_nanos: u64::MAX - 10,
                    ..SlideReport::default()
                },
                SlideReport {
                    actions: 1,
                    feed_nanos: 100,
                    query_nanos: 100,
                    ..SlideReport::default()
                },
            ],
            solutions: Vec::new(),
        };
        assert_eq!(report.feed_nanos(), u64::MAX);
        assert_eq!(report.query_nanos(), u64::MAX);
        // throughput's feed+query sum must saturate too, not panic.
        assert!(report.throughput() >= 0.0);
    }

    #[test]
    fn offline_slides_carry_no_queue_depth() {
        let mut engine = SimEngine::new_ic(SimConfig::new(2, 0.3, 8, 2));
        let reports = engine.ingest_batch(&figure1_actions());
        assert!(reports.iter().all(|r| r.queue_depth.is_none()));
    }

    #[test]
    fn empty_slide_is_harmless() {
        let mut engine = SimEngine::new_sic(SimConfig::new(2, 0.3, 8, 1));
        let report = engine.process_slide(&[]);
        assert_eq!(report.actions, 0);
        assert!(engine.ingest_batch(&[]).is_empty());
        assert_eq!(engine.query(), Solution::empty());
    }

    #[test]
    fn weighted_engine_prefers_heavy_users() {
        use rtim_submodular::MapWeight;
        use std::collections::HashMap;
        // User 6 is worth 100; everything else 1.  An engine with that
        // weighting must report a much larger value once u6 acts.
        let mut weights = HashMap::new();
        weights.insert(UserId(6), 100.0);
        let weight = MapWeight::new(weights, 1.0);
        let mut engine = SimEngine::new_sic_weighted(SimConfig::new(2, 0.2, 8, 1), weight);
        for a in figure1_actions() {
            engine.process_slide(&[a]);
        }
        assert!(engine.query().value >= 100.0);
    }

    #[test]
    fn window_influence_sets_match_direct_computation() {
        let mut engine = SimEngine::new_ic(SimConfig::new(2, 0.3, 8, 1));
        for a in figure1_actions() {
            engine.process_slide(&[a]);
        }
        let inf = engine.window_influence_sets();
        assert_eq!(inf.coverage(&[UserId(2), UserId(3)]), 6);
        assert_eq!(engine.window().len(), 8);
    }
}
