//! The SIM engine: stream driver around a checkpoint framework.
//!
//! The engine owns the pieces every framework needs but should not manage
//! itself (§4's separation of concerns):
//!
//! * the [`SlidingWindow`] of the `N` most recent actions,
//! * the [`PropagationIndex`] resolving reply ancestries, and
//! * a [`Framework`] (IC or SIC) fed with resolved actions slide by slide.
//!
//! It also exposes the pieces the evaluation harness needs: the exact
//! window-scoped influence sets (for the Greedy baseline / quality metric)
//! and per-slide statistics.

use crate::config::SimConfig;
use crate::framework::{Framework, FrameworkKind, ResolvedAction, Solution};
use crate::ic::IcFramework;
use crate::sic::SicFramework;
use rtim_stream::{
    window_influence_sets, Action, InfluenceSets, PropagationIndex, SlidingWindow,
};
use rtim_submodular::ElementWeight;
use serde::{Deserialize, Serialize};

/// Per-slide statistics reported by [`SimEngine::process_slide`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SlideReport {
    /// Number of actions processed in this slide.
    pub actions: usize,
    /// Number of actions evicted from the window by this slide.
    pub expired: usize,
    /// Checkpoints maintained by the framework after the slide.
    pub checkpoints: usize,
    /// Total oracle element updates performed by the framework so far.
    pub oracle_updates: u64,
}

/// Continuous SIM query processor.
pub struct SimEngine {
    config: SimConfig,
    window: SlidingWindow,
    index: PropagationIndex,
    framework: Box<dyn Framework>,
    slides: u64,
}

impl SimEngine {
    /// Creates an engine running the IC framework with the cardinality
    /// influence function.
    pub fn new_ic(config: SimConfig) -> Self {
        Self::with_framework(config, Box::new(IcFramework::new(config)))
    }

    /// Creates an engine running the SIC framework with the cardinality
    /// influence function.
    pub fn new_sic(config: SimConfig) -> Self {
        Self::with_framework(config, Box::new(SicFramework::new(config)))
    }

    /// Creates an engine for the given framework kind.
    pub fn new(config: SimConfig, kind: FrameworkKind) -> Self {
        match kind {
            FrameworkKind::Ic => Self::new_ic(config),
            FrameworkKind::Sic => Self::new_sic(config),
        }
    }

    /// Creates an engine running IC with a custom influence function
    /// (e.g. conformity-aware weights, Appendix A).
    pub fn new_ic_weighted<W: ElementWeight + Send + 'static>(config: SimConfig, weight: W) -> Self {
        Self::with_framework(config, Box::new(IcFramework::with_weight(config, weight)))
    }

    /// Creates an engine running SIC with a custom influence function.
    pub fn new_sic_weighted<W: ElementWeight + Send + 'static>(
        config: SimConfig,
        weight: W,
    ) -> Self {
        Self::with_framework(config, Box::new(SicFramework::with_weight(config, weight)))
    }

    /// Creates an engine around an arbitrary framework implementation.
    pub fn with_framework(config: SimConfig, framework: Box<dyn Framework>) -> Self {
        SimEngine {
            config,
            window: SlidingWindow::new(config.window_size),
            index: PropagationIndex::new(),
            framework,
            slides: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The current sliding window.
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }

    /// The propagation index accumulated so far.
    pub fn index(&self) -> &PropagationIndex {
        &self.index
    }

    /// Which framework the engine runs.
    pub fn framework_kind(&self) -> FrameworkKind {
        self.framework.kind()
    }

    /// Number of slides processed so far.
    pub fn slides_processed(&self) -> u64 {
        self.slides
    }

    /// Processes one window slide (any number of actions; the configured
    /// slide length `L` is the convention used by the experiment harness but
    /// the engine accepts arbitrary batch sizes, including 1).
    pub fn process_slide(&mut self, actions: &[Action]) -> SlideReport {
        if actions.is_empty() {
            return SlideReport {
                checkpoints: self.framework.checkpoint_count(),
                oracle_updates: self.framework.oracle_updates(),
                ..SlideReport::default()
            };
        }
        let mut resolved = Vec::with_capacity(actions.len());
        let mut expired = 0usize;
        for &action in actions {
            let updated = self.index.insert(&action);
            // `updated` = actor followed by ancestor users.
            let (actor, ancestors) = updated.split_first().expect("non-empty update set");
            resolved.push(ResolvedAction {
                id: action.id.0,
                actor: *actor,
                ancestors: ancestors.to_vec(),
            });
            if self.window.push(action).is_some() {
                expired += 1;
            }
        }
        let window_start = self.window.oldest_id().map(|a| a.0).unwrap_or(1);
        self.framework.process_slide(&resolved, window_start);
        self.slides += 1;
        SlideReport {
            actions: actions.len(),
            expired,
            checkpoints: self.framework.checkpoint_count(),
            oracle_updates: self.framework.oracle_updates(),
        }
    }

    /// Answers the SIM query for the current window.
    pub fn query(&self) -> Solution {
        self.framework.query()
    }

    /// Number of checkpoints currently maintained by the framework.
    pub fn checkpoint_count(&self) -> usize {
        self.framework.checkpoint_count()
    }

    /// Exact influence sets of the current window (recomputed from scratch;
    /// used by baselines, the quality metric and tests — not on the
    /// streaming hot path).
    pub fn window_influence_sets(&self) -> InfluenceSets {
        window_influence_sets(&self.window, &self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtim_submodular::{brute_force_best, UnitWeight};
    use rtim_stream::UserId;

    fn figure1_actions() -> Vec<Action> {
        vec![
            Action::root(1u64, 1u32),
            Action::reply(2u64, 2u32, 1u64),
            Action::root(3u64, 3u32),
            Action::reply(4u64, 3u32, 1u64),
            Action::reply(5u64, 4u32, 3u64),
            Action::reply(6u64, 1u32, 3u64),
            Action::reply(7u64, 5u32, 3u64),
            Action::reply(8u64, 4u32, 7u64),
            Action::root(9u64, 2u32),
            Action::reply(10u64, 6u32, 9u64),
        ]
    }

    #[test]
    fn ic_engine_tracks_example2() {
        let mut engine = SimEngine::new_ic(SimConfig::new(2, 0.3, 8, 1));
        let mut values = Vec::new();
        for a in figure1_actions() {
            engine.process_slide(&[a]);
            values.push(engine.query().value);
        }
        assert_eq!(values[7], 5.0);
        assert_eq!(values[9], 6.0);
        assert_eq!(engine.framework_kind(), FrameworkKind::Ic);
        assert_eq!(engine.slides_processed(), 10);
    }

    #[test]
    fn sic_engine_stays_within_bound_of_window_optimum() {
        let config = SimConfig::new(2, 0.2, 8, 2);
        let mut engine = SimEngine::new_sic(config);
        for slide in figure1_actions().chunks(2) {
            engine.process_slide(slide);
            let solution = engine.query();
            let inf = engine.window_influence_sets();
            let opt = brute_force_best(&inf, 2, &UnitWeight).value;
            let bound = (0.5 - 0.2) * (1.0 - 0.2) / 2.0;
            assert!(solution.value >= bound * opt - 1e-9);
            assert!(solution.value <= opt + 1e-9);
            // The reported seeds themselves achieve a comparable coverage in
            // the *checkpoint's* (append-only) view; against the exact
            // window sets they can only be evaluated upward (Theorem 2).
            let realized = inf.coverage(&solution.seeds) as f64;
            assert!(realized + 1e-9 >= solution.value * 0.99 || realized >= bound * opt);
        }
    }

    #[test]
    fn slide_report_counts_actions_and_expiry() {
        let mut engine = SimEngine::new_ic(SimConfig::new(2, 0.3, 4, 2));
        let actions = figure1_actions();
        let r1 = engine.process_slide(&actions[..2]);
        assert_eq!(r1.actions, 2);
        assert_eq!(r1.expired, 0);
        let _ = engine.process_slide(&actions[2..4]);
        let r3 = engine.process_slide(&actions[4..6]);
        assert_eq!(r3.expired, 2);
        assert!(r3.oracle_updates > 0);
        assert!(r3.checkpoints <= 2);
    }

    #[test]
    fn empty_slide_is_harmless() {
        let mut engine = SimEngine::new_sic(SimConfig::new(2, 0.3, 8, 1));
        let report = engine.process_slide(&[]);
        assert_eq!(report.actions, 0);
        assert_eq!(engine.query(), Solution::empty());
    }

    #[test]
    fn weighted_engine_prefers_heavy_users() {
        use rtim_submodular::MapWeight;
        use std::collections::HashMap;
        // User 6 is worth 100; everything else 1.  An engine with that
        // weighting must report a much larger value once u6 acts.
        let mut weights = HashMap::new();
        weights.insert(UserId(6), 100.0);
        let weight = MapWeight::new(weights, 1.0);
        let mut engine = SimEngine::new_sic_weighted(SimConfig::new(2, 0.2, 8, 1), weight);
        for a in figure1_actions() {
            engine.process_slide(&[a]);
        }
        assert!(engine.query().value >= 100.0);
    }

    #[test]
    fn window_influence_sets_match_direct_computation() {
        let mut engine = SimEngine::new_ic(SimConfig::new(2, 0.3, 8, 1));
        for a in figure1_actions() {
            engine.process_slide(&[a]);
        }
        let inf = engine.window_influence_sets();
        assert_eq!(inf.coverage(&[UserId(2), UserId(3)]), 6);
        assert_eq!(engine.window().len(), 8);
    }
}
