//! Server-side observability: log-scale latency histograms with
//! sliding-window quantiles, and the shared metrics registry the engine
//! thread, the front-ends and the `/metrics` scrape endpoint meet at.
//!
//! The design follows the paper's streaming discipline rather than a
//! general metrics library:
//!
//! * [`Histogram`] — 65 fixed power-of-two buckets over `u64` values
//!   (nanoseconds or queue depths).  Recording is one branch-free index
//!   computation plus two saturating adds; quantiles are answered from
//!   the bucket upper bounds, so p50/p95/p99 cost one pass over 65
//!   counters and never allocate.
//! * [`SlidingHistogram`] — a ring of `W` per-slide histograms rotated by
//!   the engine thread once per window slide.  A sample recorded in slide
//!   `s` is part of every aggregate up to and including slide `s + W − 1`
//!   and expires on the rotation that starts slide `s + W`: the window is
//!   *exactly* the last `W` slides, mirroring the engine's own
//!   sliding-window semantics instead of wall-clock decay.
//! * [`EngineMetrics`] — the registry: sliding histograms for feed time,
//!   query time and observed ingest-queue depth (engine thread only, one
//!   short mutex hold per slide), plain atomic counters for the
//!   front-end events that never touch the engine thread (`BUSY`
//!   replies, parked requests, connection churn), and atomic gauges
//!   refreshed from [`EngineStats`] after every batch.
//!
//! Scraping is **passive**: [`EngineMetrics::render_prometheus`] reads
//! the registry and nothing else — it never enqueues an engine command —
//! so a scraper polling at any rate cannot reorder the arrival sequence
//! or otherwise perturb the served answers (the determinism suite pins
//! this with a scraper thread racing a 256-connection ingest).

use crate::engine::SlideReport;
use crate::handle::EngineStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket
/// `i ∈ 1..=64` holds values in `[2^(i−1), 2^i − 1]` (bucket 64's upper
/// bound saturates at `u64::MAX`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Window of the sliding aggregation, in engine slides: quantiles answer
/// over the samples of the last this-many window slides.
pub const METRICS_WINDOW_SLIDES: usize = 256;

/// A fixed-size log₂-bucketed histogram of `u64` samples.
///
/// Buckets are powers of two, so the relative quantile error is bounded
/// by 2× — coarse for billing, exactly right for spotting a p99 that
/// moved an order of magnitude — and recording never allocates or
/// branches on data-dependent state.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    /// Saturating sum of every recorded sample (long soaks must degrade
    /// to a pinned maximum, not wrap).
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// The bucket index a value lands in: 0 for an exact zero, else
    /// `64 − leading_zeros(v)` (so 1 → bucket 1, 2..=3 → bucket 2, …,
    /// values ≥ 2⁶³ → bucket 64).
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The largest value bucket `index` can hold: 0 for bucket 0,
    /// `2^index − 1` otherwise (`u64::MAX` for bucket 64).
    #[inline]
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of every recorded sample.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw bucket counts (index = [`Histogram::bucket_index`]).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Clears every counter.
    pub fn clear(&mut self) {
        self.buckets = [0; HISTOGRAM_BUCKETS];
        self.count = 0;
        self.sum = 0;
    }

    /// Adds every sample of `other` into `self` (counts and sums
    /// saturate).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), answered as the **upper bound**
    /// of the bucket in which the rank-`⌈q·count⌉` sample lies — an upper
    /// estimate within 2× of the true sample.  `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(n);
            if cumulative >= target {
                return Some(Self::bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }
}

/// A ring of per-slide [`Histogram`]s giving exact slide-count windowed
/// aggregation: rotate once per engine slide, aggregate on demand.
#[derive(Debug)]
pub struct SlidingHistogram {
    slots: Vec<Histogram>,
    head: usize,
}

impl SlidingHistogram {
    /// A window of `window` slides (clamped to at least 1).
    pub fn new(window: usize) -> Self {
        SlidingHistogram {
            slots: vec![Histogram::new(); window.max(1)],
            head: 0,
        }
    }

    /// The configured window, in slides.
    pub fn window(&self) -> usize {
        self.slots.len()
    }

    /// Records one sample into the current slide's slot.
    pub fn record(&mut self, value: u64) {
        self.slots[self.head].record(value);
    }

    /// Starts a new slide: advances the ring and clears the slot the new
    /// slide will write into, expiring whatever was recorded exactly
    /// `window` slides ago.
    pub fn rotate(&mut self) {
        self.head = (self.head + 1) % self.slots.len();
        self.slots[self.head].clear();
    }

    /// Merges the whole window into one histogram.
    pub fn aggregate(&self) -> Histogram {
        let mut total = Histogram::new();
        for slot in &self.slots {
            total.merge(slot);
        }
        total
    }
}

/// The engine-thread side of the registry, behind one mutex: the three
/// sliding histograms share a rotation so "the last W slides" means the
/// same thing for every quantile.
struct MetricsInner {
    /// Per-slide feed time (resolution + window + checkpoint updates).
    feed: SlidingHistogram,
    /// Per-request query answer time.
    query: SlidingHistogram,
    /// Ingest-queue depth observed when each slide's batch was dequeued
    /// (only slides that crossed the queue are sampled — synchronous
    /// replays carry no depth).
    depth: SlidingHistogram,
}

/// Shared metrics registry of one engine pipeline.
///
/// Created by [`crate::EngineHandle::spawn`] and shared (`Arc`) between
/// the engine thread (histograms + gauges), the server front-ends
/// (connection/backpressure counters) and whatever serves `/metrics`
/// (reads only).  All methods take `&self`.
pub struct EngineMetrics {
    inner: Mutex<MetricsInner>,
    // ---- front-end event counters (never touch the engine thread) ----
    busy_replies: AtomicU64,
    parked_requests: AtomicU64,
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    queries: AtomicU64,
    // ---- gauges refreshed from EngineStats after every batch ----
    actions: AtomicU64,
    batches: AtomicU64,
    slides: AtomicU64,
    checkpoints: AtomicU64,
    oracle_updates: AtomicU64,
    queue_depth: AtomicU64,
    max_queue_depth: AtomicU64,
    users: AtomicU64,
    orphaned_replies: AtomicU64,
    shard_migrations: AtomicU64,
    shard_ewma_min_nanos: AtomicU64,
    shard_ewma_max_nanos: AtomicU64,
    journal_lag_batches: AtomicU64,
    snapshot_age_slides: AtomicU64,
    durability_state: AtomicU64,
    // ---- arena + tracing gauges (engine thread, refreshed per batch) ----
    arena_takes: AtomicU64,
    arena_hits: AtomicU64,
    trace_events: AtomicU64,
    trace_slow_ops: AtomicU64,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        EngineMetrics::new()
    }
}

impl EngineMetrics {
    /// A registry with the default [`METRICS_WINDOW_SLIDES`] window.
    pub fn new() -> Self {
        Self::with_window(METRICS_WINDOW_SLIDES)
    }

    /// A registry whose quantiles cover the last `window` slides.
    pub fn with_window(window: usize) -> Self {
        EngineMetrics {
            inner: Mutex::new(MetricsInner {
                feed: SlidingHistogram::new(window),
                query: SlidingHistogram::new(window),
                depth: SlidingHistogram::new(window),
            }),
            busy_replies: AtomicU64::new(0),
            parked_requests: AtomicU64::new(0),
            connections_opened: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            actions: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            slides: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            oracle_updates: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            users: AtomicU64::new(0),
            orphaned_replies: AtomicU64::new(0),
            shard_migrations: AtomicU64::new(0),
            shard_ewma_min_nanos: AtomicU64::new(0),
            shard_ewma_max_nanos: AtomicU64::new(0),
            journal_lag_batches: AtomicU64::new(0),
            snapshot_age_slides: AtomicU64::new(0),
            durability_state: AtomicU64::new(0),
            arena_takes: AtomicU64::new(0),
            arena_hits: AtomicU64::new(0),
            trace_events: AtomicU64::new(0),
            trace_slow_ops: AtomicU64::new(0),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, MetricsInner> {
        // A poisoned registry would mean a panic mid-record; the counters
        // are still internally consistent (each record is atomic under
        // the lock), so keep serving them.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Engine thread: one completed slide.  Records its feed time and (if
    /// the batch crossed the ingest queue) its observed dequeue depth,
    /// then rotates the window — the slide boundary is the tick every
    /// sliding quantile shares.
    pub fn record_slide(&self, report: &SlideReport) {
        let mut inner = self.locked();
        inner.feed.record(report.feed_nanos);
        if let Some(depth) = report.queue_depth {
            inner.depth.record(depth as u64);
        }
        inner.feed.rotate();
        inner.query.rotate();
        inner.depth.rotate();
    }

    /// Engine thread: one answered query took `nanos`.
    pub fn record_query(&self, nanos: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.locked().query.record(nanos);
    }

    /// Engine thread: refreshes every gauge from a finished stats
    /// snapshot (after each batch and on every STATS answer).
    pub fn observe_stats(&self, stats: &EngineStats) {
        self.actions.store(stats.actions, Ordering::Relaxed);
        self.batches.store(stats.batches, Ordering::Relaxed);
        self.slides.store(stats.slides, Ordering::Relaxed);
        self.checkpoints.store(stats.checkpoints, Ordering::Relaxed);
        self.oracle_updates.store(stats.oracle_updates, Ordering::Relaxed);
        self.queue_depth.store(stats.queue_depth, Ordering::Relaxed);
        self.max_queue_depth.store(stats.max_queue_depth, Ordering::Relaxed);
        self.users.store(stats.users, Ordering::Relaxed);
        self.orphaned_replies.store(stats.orphaned_replies, Ordering::Relaxed);
        self.shard_migrations.store(stats.shard_migrations, Ordering::Relaxed);
        self.shard_ewma_min_nanos.store(stats.shard_ewma_min_nanos, Ordering::Relaxed);
        self.shard_ewma_max_nanos.store(stats.shard_ewma_max_nanos, Ordering::Relaxed);
        self.journal_lag_batches.store(stats.journal_lag_batches, Ordering::Relaxed);
        self.snapshot_age_slides.store(stats.snapshot_age_slides, Ordering::Relaxed);
        self.durability_state.store(stats.durability_state, Ordering::Relaxed);
    }

    /// Engine thread: refreshes the bitmap-arena allocation gauges
    /// (cumulative word-vector takes and how many were served from the
    /// recycled free lists) from the pool's per-batch stats.
    pub fn observe_arena(&self, takes: u64, hits: u64) {
        self.arena_takes.store(takes, Ordering::Relaxed);
        self.arena_hits.store(hits, Ordering::Relaxed);
    }

    /// Engine thread: refreshes the flight-recorder visibility gauges
    /// (events recorded, slow ops promoted) so trace activity shows up on
    /// `/metrics` without scraping `/trace`.
    pub fn observe_trace(&self, events: u64, slow_ops: u64) {
        self.trace_events.store(events, Ordering::Relaxed);
        self.trace_slow_ops.store(slow_ops, Ordering::Relaxed);
    }

    /// Front-end: one `BUSY` backpressure reply was sent (threaded
    /// front-end only — the event loop parks instead).
    pub fn incr_busy_reply(&self) {
        self.busy_replies.fetch_add(1, Ordering::Relaxed);
    }

    /// Front-end: one request found the engine queue full and was parked
    /// until a slot freed (event-loop front-end).
    pub fn incr_parked_request(&self) {
        self.parked_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Front-end: one client connection was accepted.
    pub fn incr_connection_opened(&self) {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Front-end: one client connection was closed.
    pub fn incr_connection_closed(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// `BUSY` replies sent so far.
    pub fn busy_replies(&self) -> u64 {
        self.busy_replies.load(Ordering::Relaxed)
    }

    /// Requests parked on a full queue so far.
    pub fn parked_requests(&self) -> u64 {
        self.parked_requests.load(Ordering::Relaxed)
    }

    /// Connections opened (accepted) so far.
    pub fn connections_opened(&self) -> u64 {
        self.connections_opened.load(Ordering::Relaxed)
    }

    /// Connections closed so far.
    pub fn connections_closed(&self) -> u64 {
        self.connections_closed.load(Ordering::Relaxed)
    }

    /// Aggregated feed-time histogram over the current window.
    pub fn feed_histogram(&self) -> Histogram {
        self.locked().feed.aggregate()
    }

    /// Aggregated query-time histogram over the current window.
    pub fn query_histogram(&self) -> Histogram {
        self.locked().query.aggregate()
    }

    /// Aggregated queue-depth histogram over the current window.
    pub fn depth_histogram(&self) -> Histogram {
        self.locked().depth.aggregate()
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format (version 0.0.4): three windowed summaries
    /// (`rtim_feed_nanos`, `rtim_query_nanos`, `rtim_queue_depth`) with
    /// p50/p95/p99 quantiles, the pipeline counters, and the
    /// durability/pool gauges.  Purely a read — never talks to the
    /// engine.
    pub fn render_prometheus(&self) -> String {
        let (feed, query, depth) = {
            let inner = self.locked();
            (
                inner.feed.aggregate(),
                inner.query.aggregate(),
                inner.depth.aggregate(),
            )
        };
        let mut out = String::with_capacity(4096);
        render_summary(
            &mut out,
            "rtim_feed_nanos",
            "Per-slide feed time in nanoseconds over the sliding window",
            &feed,
        );
        render_summary(
            &mut out,
            "rtim_query_nanos",
            "Per-query answer time in nanoseconds over the sliding window",
            &query,
        );
        render_summary(
            &mut out,
            "rtim_queue_depth",
            "Ingest-queue depth observed at batch dequeue over the sliding window",
            &depth,
        );
        let counters: [(&str, &str, u64); 13] = [
            ("rtim_actions_total", "Actions ingested", self.actions.load(Ordering::Relaxed)),
            ("rtim_batches_total", "Ingest batches dequeued", self.batches.load(Ordering::Relaxed)),
            ("rtim_slides_total", "Window slides fed", self.slides.load(Ordering::Relaxed)),
            ("rtim_queries_total", "SIM queries answered", self.queries.load(Ordering::Relaxed)),
            (
                "rtim_busy_replies_total",
                "BUSY backpressure replies sent (threaded front-end)",
                self.busy_replies.load(Ordering::Relaxed),
            ),
            (
                "rtim_parked_requests_total",
                "Requests parked on a full queue (event-loop front-end)",
                self.parked_requests.load(Ordering::Relaxed),
            ),
            (
                "rtim_connections_opened_total",
                "Client connections accepted",
                self.connections_opened.load(Ordering::Relaxed),
            ),
            (
                "rtim_connections_closed_total",
                "Client connections closed",
                self.connections_closed.load(Ordering::Relaxed),
            ),
            (
                "rtim_orphaned_replies_total",
                "Replies degraded to roots (unknown or pruned parent)",
                self.orphaned_replies.load(Ordering::Relaxed),
            ),
            (
                "rtim_arena_takes_total",
                "Bitmap word-vectors requested from the slide arenas",
                self.arena_takes.load(Ordering::Relaxed),
            ),
            (
                "rtim_arena_hits_total",
                "Arena requests served from the recycled free lists",
                self.arena_hits.load(Ordering::Relaxed),
            ),
            (
                "rtim_trace_events_total",
                "Flight-recorder trace events recorded",
                self.trace_events.load(Ordering::Relaxed),
            ),
            (
                "rtim_trace_slow_ops_total",
                "Requests promoted to the slow-op log",
                self.trace_slow_ops.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, value) in counters {
            render_scalar(&mut out, name, help, "counter", value);
        }
        let gauges: [(&str, &str, u64); 10] = [
            (
                "rtim_queue_depth_current",
                "Commands waiting in the ingest queue now",
                self.queue_depth.load(Ordering::Relaxed),
            ),
            (
                "rtim_queue_depth_max",
                "Maximum queue depth observed at any dequeue",
                self.max_queue_depth.load(Ordering::Relaxed),
            ),
            ("rtim_checkpoints", "Checkpoints currently maintained", self.checkpoints.load(Ordering::Relaxed)),
            ("rtim_users", "Distinct users interned", self.users.load(Ordering::Relaxed)),
            (
                "rtim_oracle_updates_total",
                "Oracle element updates performed",
                self.oracle_updates.load(Ordering::Relaxed),
            ),
            (
                "rtim_shard_migrations_total",
                "Checkpoints migrated between pool shards",
                self.shard_migrations.load(Ordering::Relaxed),
            ),
            (
                "rtim_shard_ewma_min_nanos",
                "Smallest per-shard feed-time EWMA",
                self.shard_ewma_min_nanos.load(Ordering::Relaxed),
            ),
            (
                "rtim_shard_ewma_max_nanos",
                "Largest per-shard feed-time EWMA",
                self.shard_ewma_max_nanos.load(Ordering::Relaxed),
            ),
            (
                "rtim_journal_lag_batches",
                "Ingested batches whose journal persistence is not yet guaranteed",
                self.journal_lag_batches.load(Ordering::Relaxed),
            ),
            (
                "rtim_snapshot_age_slides",
                "Window slides since the last successful snapshot",
                self.snapshot_age_slides.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, value) in gauges {
            render_scalar(&mut out, name, help, "gauge", value);
        }
        render_scalar(
            &mut out,
            "rtim_durability_state",
            "Durability state: 0 disabled, 1 durable, 2 degraded",
            "gauge",
            self.durability_state.load(Ordering::Relaxed),
        );
        out
    }
}

impl std::fmt::Debug for EngineMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineMetrics")
            .field("busy_replies", &self.busy_replies())
            .field("parked_requests", &self.parked_requests())
            .finish()
    }
}

/// The quantiles every summary exposes.
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

fn render_summary(out: &mut String, name: &str, help: &str, hist: &Histogram) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} summary");
    for (q, label) in QUANTILES {
        // An empty window renders NaN, the Prometheus convention for an
        // unknown quantile.
        match hist.quantile(q) {
            Some(v) => drop(writeln!(out, "{name}{{quantile=\"{label}\"}} {v}")),
            None => drop(writeln!(out, "{name}{{quantile=\"{label}\"}} NaN")),
        }
    }
    let _ = writeln!(out, "{name}_sum {}", hist.sum());
    let _ = writeln!(out, "{name}_count {}", hist.count());
}

fn render_scalar(out: &mut String, name: &str, help: &str, kind: &str, value: u64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index((1 << 63) - 1), 63);
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_are_inclusive_maxima() {
        for i in 0..HISTOGRAM_BUCKETS {
            let ub = Histogram::bucket_upper_bound(i);
            assert_eq!(Histogram::bucket_index(ub), i, "upper bound of bucket {i}");
            if i < 64 {
                assert_eq!(Histogram::bucket_index(ub + 1), i + 1);
            }
        }
    }

    #[test]
    fn quantiles_answer_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        // p50 → rank 3 (value 30, bucket 5, upper bound 31).
        assert_eq!(h.quantile(0.5), Some(31));
        // p99 → rank 5 (value 1000, bucket 10, upper bound 1023).
        assert_eq!(h.quantile(0.99), Some(1023));
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1100);
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn record_saturates_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn sliding_window_expires_after_exactly_w_rotations() {
        let w = 4;
        let mut s = SlidingHistogram::new(w);
        s.record(42);
        for i in 1..w {
            s.rotate();
            assert_eq!(s.aggregate().count(), 1, "survives rotation {i}");
        }
        s.rotate(); // the W-th rotation expires the sample
        assert_eq!(s.aggregate().count(), 0);
    }

    #[test]
    fn registry_renders_required_metric_names() {
        let metrics = EngineMetrics::with_window(8);
        metrics.record_slide(&SlideReport {
            actions: 10,
            feed_nanos: 1234,
            queue_depth: Some(3),
            ..SlideReport::default()
        });
        metrics.record_query(5678);
        metrics.incr_busy_reply();
        metrics.incr_parked_request();
        metrics.observe_arena(100, 90);
        metrics.observe_trace(7, 2);
        let text = metrics.render_prometheus();
        for needle in [
            "rtim_feed_nanos{quantile=\"0.5\"}",
            "rtim_feed_nanos{quantile=\"0.95\"}",
            "rtim_feed_nanos{quantile=\"0.99\"}",
            "rtim_query_nanos{quantile=\"0.99\"}",
            "rtim_queue_depth{quantile=\"0.99\"}",
            "rtim_busy_replies_total 1",
            "rtim_parked_requests_total 1",
            "rtim_journal_lag_batches",
            "rtim_snapshot_age_slides",
            "rtim_durability_state",
            "rtim_arena_takes_total 100",
            "rtim_arena_hits_total 90",
            "rtim_trace_events_total 7",
            "rtim_trace_slow_ops_total 2",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // Every exposed family carries HELP and TYPE lines.
        assert!(text.contains("# TYPE rtim_feed_nanos summary"));
        assert!(text.contains("# TYPE rtim_actions_total counter"));
        assert!(text.contains("# TYPE rtim_durability_state gauge"));
    }

    #[test]
    fn offline_slides_contribute_no_depth_samples() {
        let metrics = EngineMetrics::with_window(8);
        metrics.record_slide(&SlideReport {
            feed_nanos: 100,
            queue_depth: None,
            ..SlideReport::default()
        });
        assert_eq!(metrics.feed_histogram().count(), 1);
        assert_eq!(metrics.depth_histogram().count(), 0);
    }
}
