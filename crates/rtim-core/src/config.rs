//! SIM query configuration.

use rtim_submodular::{OracleConfig, OracleKind};
use serde::{Deserialize, Serialize};

/// Configuration of a continuous SIM query (Definition 2 plus the framework
/// parameters of §4–§5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Seed-set cardinality constraint `k`.
    pub k: usize,
    /// Accuracy/efficiency trade-off `β ∈ (0, 1)` shared by the checkpoint
    /// oracle (SieveStreaming's guess grid) and SIC's pruning rule.
    pub beta: f64,
    /// Sliding-window size `N` (number of most recent actions considered).
    pub window_size: usize,
    /// Slide length `L`: number of actions per window shift (§5.3).
    pub slide: usize,
    /// Which streaming-submodular oracle backs each checkpoint (Table 2).
    pub oracle: OracleKind,
    /// Number of worker threads used to update checkpoints per slide
    /// (1 = sequential; see [`crate::parallel`]).
    pub threads: usize,
}

impl SimConfig {
    /// Creates a configuration with the default SieveStreaming oracle.
    ///
    /// # Panics
    /// Panics if `k == 0`, `window_size == 0`, `slide == 0` or
    /// `slide > window_size`.
    pub fn new(k: usize, beta: f64, window_size: usize, slide: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(window_size > 0, "window size N must be positive");
        assert!(slide > 0, "slide length L must be positive");
        assert!(
            slide <= window_size,
            "slide length L must not exceed the window size N"
        );
        SimConfig {
            k,
            beta: beta.clamp(1e-6, 0.999_999),
            window_size,
            slide,
            oracle: OracleKind::SieveStreaming,
            threads: 1,
        }
    }

    /// Selects a different checkpoint oracle.
    pub fn with_oracle(mut self, oracle: OracleKind) -> Self {
        self.oracle = oracle;
        self
    }

    /// Enables parallel checkpoint updates with the given worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The paper's default parameters (Table 4, defaults in bold): `k = 50`,
    /// `β = 0.1`, `N = 250 000`, `L = 5 000`.
    pub fn paper_defaults() -> Self {
        SimConfig::new(50, 0.1, 250_000, 5_000)
    }

    /// Number of checkpoints the IC framework maintains: `⌈N / L⌉`.
    pub fn checkpoint_capacity(&self) -> usize {
        self.window_size.div_ceil(self.slide)
    }

    /// The oracle configuration derived from this SIM configuration.
    pub fn oracle_config(&self) -> OracleConfig {
        OracleConfig::new(self.k, self.beta)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_capacity_is_ceiling() {
        assert_eq!(SimConfig::new(5, 0.1, 10, 5).checkpoint_capacity(), 2);
        assert_eq!(SimConfig::new(5, 0.1, 10, 3).checkpoint_capacity(), 4);
        assert_eq!(SimConfig::new(5, 0.1, 10, 10).checkpoint_capacity(), 1);
    }

    #[test]
    fn paper_defaults_match_table4() {
        let c = SimConfig::paper_defaults();
        assert_eq!(c.k, 50);
        assert_eq!(c.window_size, 250_000);
        assert_eq!(c.slide, 5_000);
        assert_eq!(c.checkpoint_capacity(), 50);
        assert_eq!(c.oracle, OracleKind::SieveStreaming);
        assert_eq!(SimConfig::default(), c);
    }

    #[test]
    fn oracle_config_propagates_k_and_beta() {
        let c = SimConfig::new(7, 0.25, 100, 10);
        let oc = c.oracle_config();
        assert_eq!(oc.k, 7);
        assert!((oc.beta - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn slide_larger_than_window_rejected() {
        let _ = SimConfig::new(5, 0.1, 10, 11);
    }

    #[test]
    fn beta_is_clamped() {
        let c = SimConfig::new(1, 5.0, 10, 1);
        assert!(c.beta < 1.0);
    }
}
