//! Durable engine snapshots and crash recovery.
//!
//! A [`SimEngine`] keeps all influence state in memory; without snapshots a
//! restart means replaying the entire arrival journal from zero.  This
//! module gives every stateful structure in the engine a canonical
//! serialized form and a determinism-preserving rehydration path:
//!
//! * [`EngineSnapshot`] — the full engine state: configuration, interner
//!   table, window contents, propagation index, and the framework's
//!   checkpoints with their influence accumulators and oracle states.  It
//!   encodes to a single `RTSS` document (magic + schema version +
//!   CRC-checked sections — see [`rtim_stream::persist::state`]) and
//!   carries the **journal watermark**: the id of the last action the
//!   engine had processed, so recovery replays only the journal suffix.
//! * [`write_snapshot_atomic`] — temp-file + `fsync` + rename + parent
//!   directory `fsync`, so a crash at any point (including a machine
//!   crash right after the rename) can never leave a torn snapshot
//!   visible under the live name, and a published snapshot is durable.
//! * [`recover_engine`] — the startup decision tree over a persistence
//!   *directory*: load the latest valid snapshot (falling back to a cold
//!   engine if it is missing, corrupt, or was taken under a different
//!   configuration), then replay the segmented journal past the snapshot
//!   watermark, batch by batch and across segment boundaries.  Because the
//!   journal records *batches* (the engine's slide-cut unit), a recovered
//!   engine's subsequent answers are **bit-identical** to an engine that
//!   never stopped.
//!
//! All file I/O flows through the fault-injectable
//! [`rtim_stream::persist::faultfs::Fs`] layer; the `*_with` variants take
//! an explicit handle, the plain ones use the zero-cost pass-through.
//! The recovery semantics and file formats are documented in
//! `docs/RECOVERY.md`.

use crate::config::SimConfig;
use crate::engine::SimEngine;
use crate::framework::FrameworkKind;
use crate::ic::IcFramework;
use crate::sic::SicFramework;
use rtim_stream::persist::faultfs::Fs;
use rtim_stream::persist::segjournal::{
    read_journal_dir, resume_plan, CompletedSegment, JournalDirContents, JournalResume,
    ResumePoint,
};
use rtim_stream::persist::state::{
    decode_actions, decode_influence_sets, decode_propagation_index, encode_actions,
    encode_influence_sets, encode_propagation_index, ByteReader, StateDocument, StateError,
    StateWriter,
};
use rtim_stream::{Action, InfluenceSets, PropagationIndex, UserId};
use rtim_submodular::{OracleKind, OracleState};
use std::io;
use std::path::Path;

/// File name of the snapshot inside a persistence directory.
pub const SNAPSHOT_FILE: &str = "snapshot.rtss";

/// Errors produced when capturing or rehydrating engine state (codec-level
/// failures are [`StateError`]; this type covers the semantic layer).
#[derive(Debug)]
pub enum SnapshotError {
    /// The engine holds state with no serialized form (a custom oracle or
    /// framework implementation without snapshot support, or a weighted
    /// objective restored without its weight function).
    Unsupported(String),
    /// The snapshot decoded structurally but violates an engine invariant.
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Unsupported(what) => write!(f, "snapshot unsupported: {what}"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt engine snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serialized state of one checkpoint: its append-only influence
/// accumulator plus its oracle.
#[derive(Debug, Clone)]
pub struct CheckpointState {
    /// First action id the checkpoint covers.
    pub start: u64,
    /// Oracle element updates performed so far.
    pub updates: u64,
    /// The accumulated per-user influence sets.
    pub sets: InfluenceSets,
    /// The wrapped oracle's state.
    pub oracle: OracleState,
}

/// Serialized state of a checkpoint set (shard contents plus the dense
/// weight table).
#[derive(Debug, Clone, Default)]
pub struct CheckpointSetState {
    /// Whether the dense table was populated by the identity fallback.
    pub identity_filled: bool,
    /// The materialized dense weight table (empty for the cardinality
    /// objective).
    pub dense_weights: Vec<f64>,
    /// Checkpoints oldest-first (starts strictly increasing).
    pub checkpoints: Vec<CheckpointState>,
}

/// Serialized state of a checkpoint framework (IC or SIC policy state over
/// a [`CheckpointSetState`]).
#[derive(Debug, Clone)]
pub struct FrameworkState {
    /// Which framework this is.
    pub kind: FrameworkKind,
    /// SIC's recorded window start (0 for IC).
    pub window_start: u64,
    /// SIC's pruned-checkpoint counter (0 for IC).
    pub pruned: u64,
    /// The checkpoint collection.
    pub set: CheckpointSetState,
}

/// A complete, restorable capture of a [`SimEngine`].
///
/// Obtained from [`SimEngine::snapshot`]; restored with
/// [`SimEngine::restore`].  [`EngineSnapshot::encode`] /
/// [`EngineSnapshot::decode`] convert to/from the durable `RTSS` form.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// The engine's configuration (restore refuses a mismatch — answers
    /// must reflect the configuration the operator asked for).
    pub config: SimConfig,
    /// Window slides processed so far.
    pub slides: u64,
    /// Interned users already announced to the framework.
    pub registered: u64,
    /// Id of the last action the engine processed — the journal offset
    /// recovery replays from.
    pub watermark: u64,
    /// The interner table: raw user ids in dense-id order.
    pub interner: Vec<UserId>,
    /// The sliding-window contents, oldest first.
    pub window: Vec<Action>,
    /// The propagation (reply-ancestry) index.
    pub index: PropagationIndex,
    /// The checkpoint framework's state.
    pub framework: FrameworkState,
}

/// Largest pool-thread count a decoded snapshot may declare.  Restoring a
/// sharded set spawns this many OS threads, so a CRC-valid but hostile
/// file must not be able to demand millions of them; no real deployment
/// approaches this bound.
const MAX_RESTORE_THREADS: usize = 1024;

/// Section tags of the engine-snapshot document.
const SEC_CONFIG: [u8; 4] = *b"CONF";
const SEC_INTERNER: [u8; 4] = *b"INTR";
const SEC_WINDOW: [u8; 4] = *b"WIND";
const SEC_INDEX: [u8; 4] = *b"PIDX";
const SEC_FRAMEWORK: [u8; 4] = *b"FRWK";

/// Wire tags for [`OracleKind`] / [`FrameworkKind`].
fn oracle_kind_tag(kind: OracleKind) -> u8 {
    match kind {
        OracleKind::SieveStreaming => 0,
        OracleKind::ThresholdStream => 1,
        OracleKind::Swap => 2,
    }
}

fn oracle_kind_from_tag(tag: u8) -> Result<OracleKind, StateError> {
    match tag {
        0 => Ok(OracleKind::SieveStreaming),
        1 => Ok(OracleKind::ThresholdStream),
        2 => Ok(OracleKind::Swap),
        other => Err(StateError::Corrupt(format!("unknown oracle kind tag {other}"))),
    }
}

fn framework_kind_tag(kind: FrameworkKind) -> u8 {
    match kind {
        FrameworkKind::Ic => 0,
        FrameworkKind::Sic => 1,
    }
}

fn framework_kind_from_tag(tag: u8) -> Result<FrameworkKind, StateError> {
    match tag {
        0 => Ok(FrameworkKind::Ic),
        1 => Ok(FrameworkKind::Sic),
        other => Err(StateError::Corrupt(format!(
            "unknown framework kind tag {other}"
        ))),
    }
}

impl EngineSnapshot {
    /// Serializes the snapshot into a single `RTSS` document.
    ///
    /// The encoding is deterministic: equal state always produces equal
    /// bytes (hash-map iteration order never leaks in).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = StateWriter::new();

        let conf = w.section(SEC_CONFIG);
        conf.extend_from_slice(&(self.config.k as u64).to_le_bytes());
        conf.extend_from_slice(&self.config.beta.to_bits().to_le_bytes());
        conf.extend_from_slice(&(self.config.window_size as u64).to_le_bytes());
        conf.extend_from_slice(&(self.config.slide as u64).to_le_bytes());
        conf.push(oracle_kind_tag(self.config.oracle));
        conf.extend_from_slice(&(self.config.threads as u64).to_le_bytes());
        conf.extend_from_slice(&self.slides.to_le_bytes());
        conf.extend_from_slice(&self.registered.to_le_bytes());
        conf.extend_from_slice(&self.watermark.to_le_bytes());

        let intr = w.section(SEC_INTERNER);
        intr.extend_from_slice(&(self.interner.len() as u32).to_le_bytes());
        for raw in &self.interner {
            intr.extend_from_slice(&raw.0.to_le_bytes());
        }

        encode_actions(&self.window, w.section(SEC_WINDOW));
        encode_propagation_index(&self.index, w.section(SEC_INDEX));

        let frwk = w.section(SEC_FRAMEWORK);
        frwk.push(framework_kind_tag(self.framework.kind));
        frwk.extend_from_slice(&self.framework.window_start.to_le_bytes());
        frwk.extend_from_slice(&self.framework.pruned.to_le_bytes());
        frwk.push(self.framework.set.identity_filled as u8);
        frwk.extend_from_slice(&(self.framework.set.dense_weights.len() as u64).to_le_bytes());
        for weight in &self.framework.set.dense_weights {
            frwk.extend_from_slice(&weight.to_bits().to_le_bytes());
        }
        frwk.extend_from_slice(&(self.framework.set.checkpoints.len() as u32).to_le_bytes());
        for cp in &self.framework.set.checkpoints {
            frwk.extend_from_slice(&cp.start.to_le_bytes());
            frwk.extend_from_slice(&cp.updates.to_le_bytes());
            encode_influence_sets(&cp.sets, frwk);
            cp.oracle.encode(frwk);
        }

        w.finish()
    }

    /// Parses and validates an `RTSS` engine snapshot.
    ///
    /// Decoding is defensive end to end: lengths are checked before
    /// allocation, CRCs before interpretation, and every structural
    /// invariant (increasing window ids, increasing checkpoint starts,
    /// distinct interner entries, a configuration `SimConfig` would accept)
    /// is re-validated — a hostile file is a typed [`StateError`], never a
    /// panic.
    pub fn decode(data: &[u8]) -> Result<EngineSnapshot, StateError> {
        let doc = StateDocument::parse(data)?;

        let mut r = ByteReader::new(doc.section(SEC_CONFIG)?);
        let k = r.u64()? as usize;
        let beta = r.f64()?;
        let window_size = r.u64()? as usize;
        let slide = r.u64()? as usize;
        let oracle = oracle_kind_from_tag(r.u8()?)?;
        let threads = r.u64()? as usize;
        let slides = r.u64()?;
        let registered = r.u64()?;
        let watermark = r.u64()?;
        r.finish()?;
        if k == 0 || window_size == 0 || slide == 0 || slide > window_size {
            return Err(StateError::Corrupt(format!(
                "invalid configuration: k={k}, N={window_size}, L={slide}"
            )));
        }
        if !beta.is_finite() {
            return Err(StateError::Corrupt("non-finite beta".into()));
        }
        if threads > MAX_RESTORE_THREADS {
            // Restoring spawns `threads` pool workers; a hostile file must
            // not drive that.
            return Err(StateError::Corrupt(format!(
                "declared pool thread count {threads} exceeds the restore cap \
                 {MAX_RESTORE_THREADS}"
            )));
        }
        let config = SimConfig::new(k, beta, window_size, slide)
            .with_oracle(oracle)
            .with_threads(threads);

        let mut r = ByteReader::new(doc.section(SEC_INTERNER)?);
        let declared = r.u32()? as u64;
        let count = r.array_len(declared, 4)?;
        let mut interner = Vec::with_capacity(count);
        for _ in 0..count {
            interner.push(r.user()?);
        }
        r.finish()?;
        if registered > interner.len() as u64 {
            return Err(StateError::Corrupt(format!(
                "{registered} users registered but only {} interned",
                interner.len()
            )));
        }

        let mut r = ByteReader::new(doc.section(SEC_WINDOW)?);
        let window = decode_actions(&mut r)?;
        r.finish()?;
        if window.len() > window_size {
            return Err(StateError::Corrupt(format!(
                "window holds {} actions but N = {window_size}",
                window.len()
            )));
        }
        for pair in window.windows(2) {
            if pair[1].id <= pair[0].id {
                return Err(StateError::Corrupt(format!(
                    "window ids must be strictly increasing: {} after {}",
                    pair[1].id, pair[0].id
                )));
            }
        }
        if let Some(last) = window.last() {
            if last.id.0 > watermark {
                return Err(StateError::Corrupt(format!(
                    "window reaches {} past the watermark {watermark}",
                    last.id
                )));
            }
        }

        let mut r = ByteReader::new(doc.section(SEC_INDEX)?);
        let index = decode_propagation_index(&mut r)?;
        r.finish()?;

        let mut r = ByteReader::new(doc.section(SEC_FRAMEWORK)?);
        let kind = framework_kind_from_tag(r.u8()?)?;
        let window_start = r.u64()?;
        let pruned = r.u64()?;
        let identity_filled = match r.u8()? {
            0 => false,
            1 => true,
            other => {
                return Err(StateError::Corrupt(format!(
                    "bad identity-filled flag {other}"
                )))
            }
        };
        let declared = r.u64()?;
        let weight_count = r.array_len(declared, 8)?;
        let mut dense_weights = Vec::with_capacity(weight_count);
        for _ in 0..weight_count {
            dense_weights.push(r.f64()?);
        }
        let declared = r.u32()? as u64;
        // A checkpoint costs at least 8 + 8 + 4 + 1 bytes.
        let cp_count = r.array_len(declared, 21)?;
        let mut checkpoints = Vec::with_capacity(cp_count);
        let mut last_start: Option<u64> = None;
        for _ in 0..cp_count {
            let start = r.u64()?;
            if let Some(prev) = last_start {
                if start <= prev {
                    return Err(StateError::Corrupt(format!(
                        "checkpoint starts must be strictly increasing: {start} after {prev}"
                    )));
                }
            }
            last_start = Some(start);
            let updates = r.u64()?;
            let sets = decode_influence_sets(&mut r)?;
            let oracle = OracleState::decode(&mut r)?;
            checkpoints.push(CheckpointState {
                start,
                updates,
                sets,
                oracle,
            });
        }
        r.finish()?;

        Ok(EngineSnapshot {
            config,
            slides,
            registered,
            watermark,
            interner,
            window,
            index,
            framework: FrameworkState {
                kind,
                window_start,
                pruned,
                set: CheckpointSetState {
                    identity_filled,
                    dense_weights,
                    checkpoints,
                },
            },
        })
    }

    /// Which framework the snapshotted engine ran.
    pub fn kind(&self) -> FrameworkKind {
        self.framework.kind
    }
}

impl SimEngine {
    /// Captures the engine's full state as a restorable snapshot.
    ///
    /// Fails with [`SnapshotError::Unsupported`] if the framework or any
    /// checkpoint oracle is a custom implementation without snapshot
    /// support.
    pub fn snapshot(&self) -> Result<EngineSnapshot, SnapshotError> {
        let framework = self.framework_snapshot().ok_or_else(|| {
            SnapshotError::Unsupported(
                "the engine's framework or one of its oracles does not implement \
                 state snapshots"
                    .into(),
            )
        })?;
        Ok(EngineSnapshot {
            config: *self.config(),
            slides: self.slides_processed(),
            registered: self.registered_users() as u64,
            watermark: self.index().latest_id(),
            interner: self.interner().raws().to_vec(),
            window: self.window().iter().copied().collect(),
            index: self.index().clone(),
            framework,
        })
    }

    /// Rehydrates an engine from a snapshot, bit-identical to the engine
    /// the snapshot was taken from: same interner table, same window, same
    /// checkpoints (re-sharded deterministically oldest-first when the
    /// configuration asks for pool threads), same cached float state.
    ///
    /// Only the built-in unit-weight (cardinality) frameworks can be
    /// restored through this entry point — a snapshot whose dense weight
    /// table is non-empty was taken from a weighted engine, whose weight
    /// *function* is not serializable; restoring one is
    /// [`SnapshotError::Unsupported`].
    pub fn restore(snapshot: EngineSnapshot) -> Result<SimEngine, SnapshotError> {
        let config = snapshot.config;
        if !snapshot.framework.set.dense_weights.is_empty()
            || snapshot.framework.set.identity_filled
        {
            return Err(SnapshotError::Unsupported(
                "snapshot was taken from a weighted engine; the weight function \
                 itself is not serializable"
                    .into(),
            ));
        }
        let framework: Box<dyn crate::framework::Framework> = match snapshot.framework.kind {
            FrameworkKind::Ic => Box::new(IcFramework::from_state(config, snapshot.framework)?),
            FrameworkKind::Sic => Box::new(SicFramework::from_state(config, snapshot.framework)?),
        };
        SimEngine::from_restored_parts(
            config,
            framework,
            snapshot.slides,
            snapshot.registered as usize,
            snapshot.interner,
            snapshot.window,
            snapshot.index,
        )
    }
}

/// Writes a snapshot durably and atomically: encode, write to
/// `<path>.tmp`, `fsync`, rename over `path`, then `fsync` the parent
/// directory.  A crash at any point leaves either the previous snapshot or
/// none — never a torn file under the live name (property-tested in
/// `tests/snapshot_props.rs`) — and once this returns, the rename itself
/// is durable (without the directory `fsync` a machine crash could undo
/// the publish even though the data blocks survived).
///
/// Returns the encoded size in bytes.
pub fn write_snapshot_atomic(
    path: impl AsRef<Path>,
    snapshot: &EngineSnapshot,
) -> io::Result<u64> {
    write_snapshot_atomic_with(path.as_ref(), snapshot, &Fs::real())
}

/// [`write_snapshot_atomic`] through an explicit (possibly
/// fault-injected) [`Fs`].
pub fn write_snapshot_atomic_with(
    path: &Path,
    snapshot: &EngineSnapshot,
    fs: &Fs,
) -> io::Result<u64> {
    write_snapshot_bytes_atomic(path, &snapshot.encode(), fs)
}

/// The byte-level core of [`write_snapshot_atomic`], for callers that
/// already hold the encoded document (the background snapshot writer).
pub fn write_snapshot_bytes_atomic(path: &Path, bytes: &[u8], fs: &Fs) -> io::Result<u64> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = fs.create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs.rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs.sync_dir(parent)?;
        }
    }
    Ok(bytes.len() as u64)
}

/// Loads and decodes a snapshot file.  A missing file is
/// `StateError::Io(NotFound)`; corruption is the decoder's typed error.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<EngineSnapshot, StateError> {
    load_snapshot_with(path.as_ref(), &Fs::real())
}

/// [`load_snapshot`] through an explicit [`Fs`].
pub fn load_snapshot_with(path: &Path, fs: &Fs) -> Result<EngineSnapshot, StateError> {
    let data = fs.read(path)?;
    EngineSnapshot::decode(&data)
}

/// What [`recover_engine`] reconstructed, and how.
pub struct RecoveryOutcome {
    /// The recovered engine, ready to serve.
    pub engine: SimEngine,
    /// `true` if a valid, configuration-matching snapshot was used.
    pub used_snapshot: bool,
    /// The snapshot's watermark (0 without a snapshot).
    pub snapshot_watermark: u64,
    /// Window slides the snapshot had processed (0 without a snapshot) —
    /// the baseline for `snapshot_age_slides` accounting.
    pub snapshot_slides: u64,
    /// Journal batches replayed past the watermark.
    pub replayed_batches: u64,
    /// Journal actions replayed past the watermark.
    pub replayed_actions: u64,
    /// Id of the last action the engine has now processed.
    pub watermark: u64,
    /// How a resumed journal writer must re-arm: which segment to append
    /// to (and at what truncation offset), which files to orphan first,
    /// and which completed segments are compaction candidates.
    pub journal_resume: JournalResume,
    /// Human-readable notes about fallbacks taken (corrupt snapshot,
    /// configuration mismatch, torn journal tail, rejected or orphaned
    /// segments, detected data-loss gaps, …).
    pub notes: Vec<String>,
}

/// The startup recovery decision tree over a persistence directory (see
/// `docs/RECOVERY.md`):
///
/// 1. Try `snapshot.rtss`.  Use it only if it decodes, matches the
///    requested configuration and framework, and restores cleanly;
///    otherwise note the reason and fall back to a cold engine.
/// 2. Read every journal segment (missing → empty; torn tail in the newest
///    segment → valid prefix; a torn/corrupt *older* segment severs the
///    sequence there) and replay every batch past the snapshot watermark,
///    batch by batch and across segment boundaries — the journal's batch
///    boundaries reproduce the engine's original slide cuts, so the
///    recovered engine's answers are bit-identical to an uninterrupted
///    engine's.
/// 3. Enforce id continuity past the watermark: rebased ids are
///    consecutive, so a jump means actions were lost (e.g. a crash between
///    a degraded-period re-arm and its covering snapshot).  Replay stops
///    at the gap, the unreachable suffix is marked for orphaning, and the
///    loss is noted — the engine serves the longest provably consistent
///    prefix rather than a silently wrong stream.
///
/// This function never fails: every degraded path falls back to replaying
/// more (or, at worst, a cold engine) and records a note.
pub fn recover_engine(
    config: SimConfig,
    kind: FrameworkKind,
    dir: impl AsRef<Path>,
) -> RecoveryOutcome {
    recover_engine_with(config, kind, dir.as_ref(), &Fs::real())
}

/// [`recover_engine`] through an explicit (possibly fault-injected)
/// [`Fs`].
pub fn recover_engine_with(
    config: SimConfig,
    kind: FrameworkKind,
    dir: &Path,
    fs: &Fs,
) -> RecoveryOutcome {
    let mut notes = Vec::new();
    let mut engine = None;
    let mut used_snapshot = false;
    let mut snapshot_watermark = 0u64;
    let mut snapshot_slides = 0u64;

    match load_snapshot_with(&dir.join(SNAPSHOT_FILE), fs) {
        Ok(snap) => {
            if snap.config != config || snap.framework.kind != kind {
                notes.push(format!(
                    "snapshot was taken under a different configuration \
                     ({:?} {:?} vs requested {:?} {:?}); falling back to full replay",
                    snap.framework.kind, snap.config, kind, config
                ));
            } else {
                let watermark = snap.watermark;
                let slides = snap.slides;
                match SimEngine::restore(snap) {
                    Ok(restored) => {
                        engine = Some(restored);
                        used_snapshot = true;
                        snapshot_watermark = watermark;
                        snapshot_slides = slides;
                    }
                    Err(e) => notes.push(format!(
                        "snapshot failed to restore ({e}); falling back to full replay"
                    )),
                }
            }
        }
        Err(StateError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => notes.push(format!(
            "snapshot is unreadable ({e}); falling back to full replay"
        )),
    }

    let mut engine = engine.unwrap_or_else(|| SimEngine::new(config, kind));
    let mut replayed_batches = 0u64;
    let mut replayed_actions = 0u64;

    let contents = match read_journal_dir(dir, fs) {
        Ok(contents) => contents,
        Err(e) => {
            notes.push(format!(
                "journal directory is unreadable ({e}); starting a fresh journal{}",
                if used_snapshot { " from the snapshot" } else { "" }
            ));
            JournalDirContents::default()
        }
    };
    notes.extend(contents.notes.iter().cloned());
    if used_snapshot && contents.last_id() < snapshot_watermark {
        notes.push(format!(
            "journal ends at {} before the snapshot watermark {snapshot_watermark} \
             (journal lost or compacted); serving from the snapshot alone",
            contents.last_id()
        ));
    }

    // Replay across segments, enforcing consecutive ids past the
    // watermark.  `expected` is the next id replay must see; `None` until
    // a durable basis exists (a cold engine accepts any starting id — a
    // compacted journal whose snapshot was lost legitimately starts
    // mid-stream, and the best effort is its valid prefix).
    let mut expected: Option<u64> = if used_snapshot {
        Some(snapshot_watermark + 1)
    } else {
        None
    };
    let mut gap_at: Option<(usize, usize)> = None;
    'replay: for (si, seg) in contents.segments.iter().enumerate() {
        for (bi, batch) in seg.contents.batches.iter().enumerate() {
            let last = batch.last().map_or(0, |a| a.id.0);
            if last <= snapshot_watermark {
                continue; // already inside the snapshot
            }
            // Snapshots are taken between batches, so a batch straddling
            // the watermark means the files disagree; replay only the
            // unseen suffix to stay safe.
            let tail_start = batch
                .iter()
                .position(|a| a.id.0 > snapshot_watermark)
                .expect("batch reaches past the watermark");
            if tail_start > 0 {
                notes.push(format!(
                    "journal batch straddles the watermark {snapshot_watermark}; \
                     replaying its suffix only"
                ));
            }
            let tail = &batch[tail_start..];
            let first = tail.first().map_or(0, |a| a.id.0);
            if let Some(exp) = expected {
                if first > exp {
                    notes.push(format!(
                        "journal gap past the watermark: expected action {exp}, found \
                         {first} (actions {exp}–{} were lost in a degraded period); \
                         serving the consistent prefix and orphaning the unreachable \
                         suffix",
                        first - 1
                    ));
                    gap_at = Some((si, bi));
                    break 'replay;
                }
            }
            engine.ingest_batch(tail);
            replayed_batches += 1;
            replayed_actions += tail.len() as u64;
            expected = Some(last + 1);
        }
    }

    let journal_resume = match gap_at {
        None => resume_plan(&contents),
        Some((si, bi)) => gap_resume_plan(&contents, si, bi),
    };

    let watermark = engine.index().latest_id();
    RecoveryOutcome {
        engine,
        used_snapshot,
        snapshot_watermark,
        snapshot_slides,
        replayed_batches,
        replayed_actions,
        watermark,
        journal_resume,
        notes,
    }
}

/// Rebuilds the journal-resume plan after replay stopped at a gap in
/// segment `si`, batch `bi`: everything from the gap on is unreachable and
/// must be orphaned, and appending resumes at the last batch boundary of
/// the kept prefix.
fn gap_resume_plan(contents: &JournalDirContents, si: usize, bi: usize) -> JournalResume {
    let base = resume_plan(contents);
    let mut plan = JournalResume {
        next_seq: base.next_seq,
        orphans: base.orphans,
        ..JournalResume::default()
    };
    // Segments fully before the gap are kept whole; the gap segment keeps
    // its batches `..bi` (truncated via the recorded batch-end offset).
    let keep_partial = bi > 0;
    let full_keep = if keep_partial { si + 1 } else { si };
    for seg in &contents.segments[..full_keep.saturating_sub(1)] {
        plan.completed.push(CompletedSegment {
            seq: seg.seq,
            path: seg.path.clone(),
            last_id: seg.contents.last_id(),
        });
    }
    if full_keep > 0 {
        let resumed = &contents.segments[full_keep - 1];
        let valid_len = if keep_partial {
            resumed.contents.batch_ends[bi - 1]
        } else {
            resumed.contents.valid_len
        };
        plan.resume = Some(ResumePoint {
            seq: resumed.seq,
            path: resumed.path.clone(),
            valid_len,
        });
    }
    for seg in &contents.segments[full_keep..] {
        plan.orphans.push(seg.path.clone());
    }
    plan.last_id = if keep_partial {
        contents.segments[si].contents.batches[bi - 1]
            .last()
            .map_or(0, |a| a.id.0)
    } else {
        contents.segments[..si]
            .iter()
            .rev()
            .map(|s| s.contents.last_id())
            .find(|&id| id != 0)
            .unwrap_or(0)
    };
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtim_stream::persist::journal::JournalWriter;

    fn figure1_actions() -> Vec<Action> {
        vec![
            Action::root(1u64, 1u32),
            Action::reply(2u64, 2u32, 1u64),
            Action::root(3u64, 3u32),
            Action::reply(4u64, 3u32, 1u64),
            Action::reply(5u64, 4u32, 3u64),
            Action::reply(6u64, 1u32, 3u64),
            Action::reply(7u64, 5u32, 3u64),
            Action::reply(8u64, 4u32, 7u64),
            Action::root(9u64, 2u32),
            Action::reply(10u64, 6u32, 9u64),
        ]
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rtim-snapshot-{}-{name}", std::process::id()));
        // Directory-based recovery scans every file, so a stale directory
        // from an earlier failed run must not leak into this one.
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn snapshot_restores_bit_identically_and_keeps_evolving() {
        for kind in [FrameworkKind::Ic, FrameworkKind::Sic] {
            let config = SimConfig::new(2, 0.3, 8, 2);
            let actions = figure1_actions();
            let mut original = SimEngine::new(config, kind);
            original.ingest_batch(&actions[..6]);

            let snap = original.snapshot().unwrap();
            assert_eq!(snap.watermark, 6);
            let bytes = snap.encode();
            let decoded = EngineSnapshot::decode(&bytes).unwrap();
            // Deterministic encoding: decode → encode is the identity.
            assert_eq!(decoded.encode(), bytes);
            let mut restored = SimEngine::restore(decoded).unwrap();

            assert_eq!(restored.query(), original.query());
            assert_eq!(restored.checkpoint_count(), original.checkpoint_count());
            assert_eq!(restored.slides_processed(), original.slides_processed());
            assert_eq!(restored.oracle_updates(), original.oracle_updates());
            // Both engines keep evolving identically.
            let a = original.ingest_batch(&actions[6..]);
            let b = restored.ingest_batch(&actions[6..]);
            assert_eq!(a.len(), b.len());
            let (qa, qb) = (original.query(), restored.query());
            assert_eq!(qa.seeds, qb.seeds);
            assert_eq!(qa.value.to_bits(), qb.value.to_bits());
            assert_eq!(
                original.window_influence_sets().total_facts(),
                restored.window_influence_sets().total_facts()
            );
        }
    }

    #[test]
    fn restore_of_a_sharded_snapshot_matches_sequential() {
        let actions = figure1_actions();
        let sequential = SimConfig::new(2, 0.2, 8, 2);
        let sharded = sequential.with_threads(4);
        let mut seq = SimEngine::new_sic(sequential);
        let mut par = SimEngine::new_sic(sharded);
        seq.ingest_batch(&actions[..6]);
        par.ingest_batch(&actions[..6]);
        let mut seq_restored = SimEngine::restore(seq.snapshot().unwrap()).unwrap();
        let mut par_restored = SimEngine::restore(par.snapshot().unwrap()).unwrap();
        seq_restored.ingest_batch(&actions[6..]);
        par_restored.ingest_batch(&actions[6..]);
        let (a, b) = (seq_restored.query(), par_restored.query());
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.value.to_bits(), b.value.to_bits());
    }

    #[test]
    fn weighted_snapshots_are_refused_at_restore() {
        use rtim_submodular::MapWeight;
        let mut weights = std::collections::HashMap::new();
        weights.insert(rtim_stream::UserId(6), 100.0);
        let mut engine =
            SimEngine::new_sic_weighted(SimConfig::new(2, 0.2, 8, 2), MapWeight::new(weights, 1.0));
        engine.ingest_batch(&figure1_actions());
        let snap = engine.snapshot().unwrap();
        assert!(!snap.framework.set.dense_weights.is_empty());
        assert!(matches!(
            SimEngine::restore(snap),
            Err(SnapshotError::Unsupported(_))
        ));
    }

    #[test]
    fn empty_engine_round_trips() {
        let engine = SimEngine::new_ic(SimConfig::new(2, 0.3, 8, 2));
        let snap = engine.snapshot().unwrap();
        assert_eq!(snap.watermark, 0);
        let restored = SimEngine::restore(EngineSnapshot::decode(&snap.encode()).unwrap()).unwrap();
        assert_eq!(restored.query(), engine.query());
        assert_eq!(restored.checkpoint_count(), 0);
    }

    #[test]
    fn decode_rejects_invalid_configurations() {
        let engine = SimEngine::new_ic(SimConfig::new(2, 0.3, 8, 2));
        let snap = engine.snapshot().unwrap();
        let bytes = snap.encode();
        // Zero out k (first 8 bytes of the CONF payload); the CRC must be
        // refreshed so the corruption reaches the semantic validator.
        let mut w = StateWriter::new();
        let doc = StateDocument::parse(&bytes).unwrap();
        for sec in doc.sections() {
            let payload = w.section(sec.tag);
            payload.extend_from_slice(sec.payload);
            if sec.tag == SEC_CONFIG {
                payload[..8].copy_from_slice(&0u64.to_le_bytes());
            }
        }
        let err = EngineSnapshot::decode(&w.finish()).unwrap_err();
        assert!(matches!(err, StateError::Corrupt(_)), "{err}");
    }

    /// A CRC-valid snapshot declaring an absurd pool-thread count is
    /// rejected before restore could spawn that many workers.
    #[test]
    fn decode_rejects_absurd_thread_counts() {
        let engine = SimEngine::new_ic(SimConfig::new(2, 0.3, 8, 2));
        let bytes = engine.snapshot().unwrap().encode();
        let doc = StateDocument::parse(&bytes).unwrap();
        let mut w = StateWriter::new();
        for sec in doc.sections() {
            let payload = w.section(sec.tag);
            payload.extend_from_slice(sec.payload);
            if sec.tag == SEC_CONFIG {
                // threads is the u64 after k, beta, N, L and the oracle tag.
                payload[33..41].copy_from_slice(&10_000_000u64.to_le_bytes());
            }
        }
        let err = EngineSnapshot::decode(&w.finish()).unwrap_err();
        assert!(
            matches!(&err, StateError::Corrupt(msg) if msg.contains("thread count")),
            "{err}"
        );
    }

    #[test]
    fn recover_prefers_snapshot_and_replays_only_the_tail() {
        let dir = temp_dir("tail");
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let journal_path = dir.join("journal.rtaj");
        let config = SimConfig::new(2, 0.3, 8, 2);
        let actions = figure1_actions();

        // A server's life: journal every batch, snapshot after the third.
        let mut journal = JournalWriter::create(&journal_path).unwrap();
        let mut engine = SimEngine::new_sic(config);
        for (i, batch) in actions.chunks(2).enumerate() {
            journal.append_batch(batch).unwrap();
            engine.ingest_batch(batch);
            if i == 2 {
                write_snapshot_atomic(&snapshot_path, &engine.snapshot().unwrap()).unwrap();
            }
        }
        drop(journal);
        let expected = engine.query();

        let outcome = recover_engine(config, FrameworkKind::Sic, &dir);
        assert!(outcome.used_snapshot);
        assert_eq!(outcome.snapshot_watermark, 6);
        assert_eq!(outcome.snapshot_slides, 3);
        assert_eq!(outcome.replayed_batches, 2);
        assert_eq!(outcome.replayed_actions, 4);
        assert_eq!(outcome.watermark, 10);
        let resume = outcome.journal_resume.resume.as_ref().unwrap();
        assert_eq!(resume.path, journal_path);
        assert!(outcome.journal_resume.orphans.is_empty());
        let got = outcome.engine.query();
        assert_eq!(got.seeds, expected.seeds);
        assert_eq!(got.value.to_bits(), expected.value.to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Rotation transparency: the same stream split across several
    /// segments recovers bit-identically to the single-file layout.
    #[test]
    fn recover_replays_across_segment_boundaries() {
        use rtim_stream::persist::segjournal::segment_file_name;
        let dir = temp_dir("segments");
        let config = SimConfig::new(2, 0.3, 8, 2);
        let actions = figure1_actions();

        let mut engine = SimEngine::new_sic(config);
        for (i, batch) in actions.chunks(2).enumerate() {
            // One batch per segment: seqs 1..=5.
            let mut journal =
                JournalWriter::create(dir.join(segment_file_name(i as u64 + 1))).unwrap();
            journal.append_batch(batch).unwrap();
            engine.ingest_batch(batch);
            if i == 2 {
                write_snapshot_atomic(dir.join(SNAPSHOT_FILE), &engine.snapshot().unwrap())
                    .unwrap();
            }
        }
        let expected = engine.query();

        let outcome = recover_engine(config, FrameworkKind::Sic, &dir);
        assert!(outcome.used_snapshot);
        assert_eq!(outcome.replayed_batches, 2);
        assert_eq!(outcome.watermark, 10);
        assert_eq!(outcome.journal_resume.next_seq, 6);
        let got = outcome.engine.query();
        assert_eq!(got.seeds, expected.seeds);
        assert_eq!(got.value.to_bits(), expected.value.to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// An id gap past the watermark (actions lost in a degraded period
    /// without a covering snapshot) stops replay at the gap: the engine
    /// serves the consistent prefix, and the unreachable suffix is marked
    /// for orphaning.
    #[test]
    fn recover_stops_at_an_id_gap_and_orphans_the_suffix() {
        use rtim_stream::persist::segjournal::segment_file_name;
        let dir = temp_dir("gap");
        let config = SimConfig::new(2, 0.3, 8, 2);
        let actions = figure1_actions();

        // Segment 1 holds ids 1..=4; segment 2 jumps to 7..=10 — ids 5–6
        // were lost (never journaled during a degraded period, and the
        // re-arm snapshot that would cover them never landed).
        let mut j1 = JournalWriter::create(dir.join(segment_file_name(1))).unwrap();
        j1.append_batch(&actions[..4]).unwrap();
        drop(j1);
        let mut j2 = JournalWriter::create(dir.join(segment_file_name(2))).unwrap();
        j2.append_batch(&actions[6..]).unwrap();
        drop(j2);

        let outcome = recover_engine(config, FrameworkKind::Sic, &dir);
        assert!(!outcome.used_snapshot);
        assert_eq!(outcome.watermark, 4, "replay must stop at the gap");
        assert!(
            outcome.notes.iter().any(|n| n.contains("journal gap")),
            "{:?}",
            outcome.notes
        );
        // The kept prefix resumes in segment 1; segment 2 is unreachable.
        let resume = outcome.journal_resume.resume.as_ref().unwrap();
        assert_eq!(resume.seq, 1);
        assert_eq!(
            outcome.journal_resume.orphans,
            vec![dir.join(segment_file_name(2))]
        );
        assert_eq!(outcome.journal_resume.last_id, 4);
        assert_eq!(outcome.journal_resume.next_seq, 3);

        // The answers match an engine that only ever saw the prefix.
        let mut reference = SimEngine::new_sic(config);
        reference.ingest_batch(&actions[..4]);
        let (got, expected) = (outcome.engine.query(), reference.query());
        assert_eq!(got.seeds, expected.seeds);
        assert_eq!(got.value.to_bits(), expected.value.to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A gap at a mid-segment batch boundary truncates the resumed segment
    /// at the last good batch end.
    #[test]
    fn recover_gap_inside_a_segment_truncates_at_the_batch_boundary() {
        let dir = temp_dir("gap-mid");
        let config = SimConfig::new(2, 0.3, 8, 2);
        let actions = figure1_actions();

        let path = dir.join("journal.rtaj");
        let mut journal = JournalWriter::create(&path).unwrap();
        journal.append_batch(&actions[..4]).unwrap();
        journal.append_batch(&actions[6..]).unwrap(); // ids 7..=10: gap at 5–6
        drop(journal);
        let disk_len = std::fs::metadata(&path).unwrap().len();

        let outcome = recover_engine(config, FrameworkKind::Sic, &dir);
        assert_eq!(outcome.watermark, 4);
        let resume = outcome.journal_resume.resume.as_ref().unwrap();
        assert!(
            resume.valid_len < disk_len,
            "resume must cut off the unreachable batch ({} vs {disk_len})",
            resume.valid_len
        );
        assert_eq!(outcome.journal_resume.last_id, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_falls_back_to_full_replay_when_the_snapshot_is_corrupt() {
        let dir = temp_dir("corrupt-snap");
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let journal_path = dir.join("journal.rtaj");
        let config = SimConfig::new(2, 0.3, 8, 2);
        let actions = figure1_actions();

        let mut journal = JournalWriter::create(&journal_path).unwrap();
        let mut engine = SimEngine::new_ic(config);
        for batch in actions.chunks(2) {
            journal.append_batch(batch).unwrap();
            engine.ingest_batch(batch);
        }
        drop(journal);
        std::fs::write(&snapshot_path, b"RTSSgarbage").unwrap();

        let outcome = recover_engine(config, FrameworkKind::Ic, &dir);
        assert!(!outcome.used_snapshot);
        assert!(!outcome.notes.is_empty());
        assert_eq!(outcome.replayed_actions, 10);
        let got = outcome.engine.query();
        let expected = engine.query();
        assert_eq!(got.seeds, expected.seeds);
        assert_eq!(got.value.to_bits(), expected.value.to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_ignores_a_snapshot_with_a_different_configuration() {
        let dir = temp_dir("config-mismatch");
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let old = SimConfig::new(2, 0.3, 8, 2);
        let mut engine = SimEngine::new_ic(old);
        engine.ingest_batch(&figure1_actions()[..4]);
        write_snapshot_atomic(&snapshot_path, &engine.snapshot().unwrap()).unwrap();

        let new = SimConfig::new(3, 0.3, 8, 2); // operator changed k
        let outcome = recover_engine(new, FrameworkKind::Ic, &dir);
        assert!(!outcome.used_snapshot);
        assert!(outcome.notes.iter().any(|n| n.contains("different configuration")));
        assert_eq!(outcome.engine.config().k, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cold_start_with_no_files_is_a_fresh_engine() {
        let dir = temp_dir("cold");
        let outcome = recover_engine(SimConfig::new(2, 0.3, 8, 2), FrameworkKind::Sic, &dir);
        assert!(!outcome.used_snapshot);
        assert_eq!(outcome.watermark, 0);
        assert!(outcome.notes.is_empty());
        assert!(outcome.journal_resume.resume.is_none());
        assert_eq!(outcome.journal_resume.next_seq, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_replaces_and_removes_the_temp_file() {
        let dir = temp_dir("atomic");
        let path = dir.join("snapshot.rtss");
        let mut engine = SimEngine::new_ic(SimConfig::new(2, 0.3, 8, 2));
        engine.ingest_batch(&figure1_actions()[..4]);
        let first = engine.snapshot().unwrap();
        let bytes = write_snapshot_atomic(&path, &first).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        engine.ingest_batch(&figure1_actions()[4..]);
        let second = engine.snapshot().unwrap();
        write_snapshot_atomic(&path, &second).unwrap();
        assert!(!dir.join("snapshot.rtss.tmp").exists());
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(loaded.watermark, 10);
        std::fs::remove_dir_all(&dir).ok();
    }
}
