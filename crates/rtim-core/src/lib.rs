//! # rtim-core
//!
//! The paper's primary contribution: continuous **Stream Influence
//! Maximization (SIM)** over sliding windows of social actions.
//!
//! * [`config`] — the SIM query configuration (`k`, `β`, window size `N`,
//!   slide length `L`, checkpoint-oracle choice).
//! * [`ssm`] — the Set-Stream Mapping (§4.2): a [`Checkpoint`] adapts any
//!   append-only streaming-submodular-optimization oracle into a checkpoint
//!   oracle over the action stream, preserving its approximation ratio
//!   (Theorem 2).
//! * [`framework`] — the common interface of the two checkpoint frameworks
//!   and the [`Solution`] type.
//! * [`ic`] — the **Influential Checkpoints** framework (§4, Algorithm 1):
//!   one checkpoint per window slide, `ε`-approximate answers.
//! * [`sic`] — the **Sparse Influential Checkpoints** framework (§5,
//!   Algorithm 2): `O(log N / β)` checkpoints, `ε(1−β)/2`-approximate
//!   answers (Theorems 3–5).
//! * [`checkpoint_set`] — the [`CheckpointSet`] layer shared by both
//!   frameworks: owns the ordered checkpoint list and its execution
//!   strategy (sequential, or sharded across a persistent worker pool).
//! * [`pool`] — the [`ShardPool`]: long-lived worker threads, each owning a
//!   stable shard of checkpoints, fed slides over channels with
//!   bit-identical-to-sequential results.
//! * [`parallel`] — the legacy per-slide scoped-thread feeding, retained
//!   only as the benchmark baseline the pool is compared against.
//! * [`engine`] — the [`SimEngine`] driver: maintains the sliding window and
//!   the propagation index, feeds resolved actions into a framework, and
//!   answers SIM queries after every slide (including multi-action slides,
//!   §5.3).  Batched ingestion ([`SimEngine::ingest_batch`]) and whole-stream
//!   replay ([`SimEngine::run_stream`]) sit on top.
//! * [`handle`] — the asynchronous ingest pipeline ([`EngineHandle`]): a
//!   bounded queue decoupling producers from a dedicated engine thread while
//!   preserving the one-writer determinism invariant (what the
//!   `rtim-server` TCP front-end runs on), with optional durable
//!   persistence (disk journal + snapshots + startup recovery).
//! * [`metrics`] — the observability layer: log-scale latency histograms
//!   with sliding-window p50/p95/p99 aggregation and the shared
//!   [`EngineMetrics`] registry the engine thread, the server front-ends
//!   and the `/metrics` scrape endpoint meet at.
//! * [`trace`] — the flight recorder: lock-free per-thread rings of
//!   fixed-size trace events spanning every pipeline stage, slow-op
//!   capture, and passive bounded dumps (`TRACE` command, `GET /trace`,
//!   `rtim-cli trace`); see `docs/TRACING.md`.
//! * [`snapshot`] — durable engine snapshots ([`EngineSnapshot`], `RTSS`
//!   codec), atomic writes, and the crash-recovery decision tree
//!   ([`recover_engine`]); see `docs/RECOVERY.md`.
//! * [`extensions`] — topic-aware, location-aware and conformity-aware SIM
//!   (Appendix A).
//!
//! ## Quick start
//!
//! ```
//! use rtim_core::{SimConfig, SimEngine};
//! use rtim_stream::Action;
//!
//! // k = 2 seeds over a window of the 8 most recent actions, sliding by 2.
//! let config = SimConfig::new(2, 0.2, 8, 2);
//! let mut engine = SimEngine::new_sic(config);
//!
//! let actions = vec![
//!     Action::root(1u64, 1u32),
//!     Action::reply(2u64, 2u32, 1u64),
//!     Action::root(3u64, 3u32),
//!     Action::reply(4u64, 3u32, 1u64),
//! ];
//! for slide in actions.chunks(2) {
//!     engine.process_slide(slide);
//!     let solution = engine.query();
//!     assert!(solution.seeds.len() <= 2);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint_set;
pub mod config;
pub mod engine;
pub mod extensions;
pub mod framework;
pub mod handle;
pub mod ic;
pub mod intern;
pub mod metrics;
pub mod parallel;
pub mod pool;
pub mod sic;
pub mod snapshot;
pub mod ssm;
pub mod trace;

pub use checkpoint_set::CheckpointSet;
pub use config::SimConfig;
pub use engine::{FeedBreakdown, RunReport, SimEngine, SlideReport};
pub use framework::{Framework, FrameworkKind, ResolvedAction, Solution};
pub use handle::{
    AsyncRequestError, Completion, CompletionPayload, CompletionSink, DurabilityState,
    EngineHandle, EngineReport, EngineStats, FsyncPolicy, HandleClosed, HandleOptions,
    IngestError, IngestSender, PersistOptions, SenderSpawner, SnapshotInfo, SnapshotRequestError,
    JOURNAL_FILE, RECENT_SLIDES, SNAPSHOT_FILE,
};
pub use ic::IcFramework;
pub use intern::UserInterner;
pub use metrics::{
    EngineMetrics, Histogram, SlidingHistogram, HISTOGRAM_BUCKETS, METRICS_WINDOW_SLIDES,
};
pub use pool::{AdaptiveConfig, CheckpointStat, PoolStats, ShardPool, WorkerFeedReport};
pub use sic::SicFramework;
pub use snapshot::{
    load_snapshot, load_snapshot_with, recover_engine, recover_engine_with, write_snapshot_atomic,
    write_snapshot_atomic_with, write_snapshot_bytes_atomic, CheckpointSetState, CheckpointState,
    EngineSnapshot, FrameworkState, RecoveryOutcome, SnapshotError,
};
pub use ssm::Checkpoint;
pub use trace::{FlightRecorder, SpanCtx, TraceConfig, TraceWriter, MAX_LANES};
