//! Set-Stream Mapping (SSM) and the checkpoint oracle (§4.2–§4.3).
//!
//! A [`Checkpoint`] `Λ_t[i]` maintains an `ε`-approximate SIM solution over
//! the append-only sub-stream of actions that arrived after its creation.
//! It is built from two pieces:
//!
//! 1. an [`InfluenceAccumulator`] holding the per-user influence sets
//!    *restricted to the actions this checkpoint has observed* (they only
//!    ever grow — no expiry), and
//! 2. any streaming-submodular oracle implementing
//!    [`rtim_submodular::SsoOracle`] (SieveStreaming by default).
//!
//! The SSM steps on the arrival of action `a_t` by user `v` with ancestor
//! users `u_1..u_d` are exactly those listed in §4.2:
//!
//! 1. identify the users whose influence set changes (`v` and the `u_i`
//!    whose sets actually grew),
//! 2. form the mapped set-stream element for each such user — its updated
//!    influence set within the checkpoint, and
//! 3. feed each element to the oracle.
//!
//! Theorem 2 shows the mapped oracle keeps its approximation ratio.
//!
//! ## Delta-aware feeding
//!
//! Each grown set grew by **exactly one user** — the actor — so step 3 uses
//! [`SsoOracle::process_grow`], letting the oracle absorb the one new user
//! in O(1) on its existing-seed branches instead of re-unioning the whole
//! set.  The users-that-grew list is collected into a reused scratch buffer
//! (no allocation per action).
//!
//! Element weights are passed per feed as a [`DenseWeights`] view: the
//! checkpoint layer owns the dense table (indexed by interned user id), the
//! checkpoint itself stays weight-agnostic.

use crate::framework::{ResolvedAction, Solution};
use rtim_stream::{InfluenceAccumulator, WordArena};
use rtim_submodular::{DenseWeights, OracleConfig, OracleKind, SsoOracle};

/// A checkpoint: an SSO oracle adapted to the action stream through SSM.
pub struct Checkpoint {
    /// Stream position of the first action this checkpoint covers (its
    /// creation boundary): it observes every action with `id >= start`.
    start: u64,
    /// Append-only influence sets over the observed actions.
    accumulator: InfluenceAccumulator,
    /// The wrapped streaming-submodular oracle.
    oracle: Box<dyn SsoOracle>,
    /// Number of oracle element updates performed by this checkpoint.
    updates: u64,
    /// Reused users-that-grew buffer (cleared per action).
    scratch: Vec<rtim_stream::UserId>,
}

impl std::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("start", &self.start)
            .field("value", &self.value())
            .field("updates", &self.updates)
            .finish()
    }
}

impl Checkpoint {
    /// Creates a checkpoint that will cover all actions with `id >= start`,
    /// backed by the given oracle kind.
    pub fn new(start: u64, kind: OracleKind, config: OracleConfig) -> Self {
        Self::with_oracle(start, kind.build(config))
    }

    /// Creates a checkpoint around an already-constructed oracle (used by
    /// tests that need to inspect specific oracle behaviours).
    pub fn with_oracle(start: u64, oracle: Box<dyn SsoOracle>) -> Self {
        Checkpoint {
            start,
            accumulator: InfluenceAccumulator::new(),
            oracle,
            updates: 0,
            scratch: Vec::new(),
        }
    }

    /// The first action id covered by this checkpoint.
    #[inline]
    pub fn start(&self) -> u64 {
        self.start
    }

    /// `true` once the checkpoint covers more than the current window, i.e.
    /// its first covered action is older than the window start.
    #[inline]
    pub fn is_expired(&self, window_start: u64) -> bool {
        self.start < window_start
    }

    /// Applies one resolved action (the three SSM steps) under the given
    /// element weights.
    pub fn process(&mut self, action: &ResolvedAction, weights: &DenseWeights) {
        debug_assert!(action.id >= self.start, "checkpoint fed an older action");
        self.scratch.clear();
        self.accumulator
            .apply_into(action.actor, &action.ancestors, &mut self.scratch);
        for &user in &self.scratch {
            let set = self
                .accumulator
                .influence_set(user)
                .expect("grown set exists");
            // Every grown set grew by exactly one user: the actor.
            self.oracle.process_grow(user, action.actor, set, weights);
            self.updates += 1;
        }
    }

    /// [`Self::process`] with slide-time bitmap allocation routed through a
    /// per-worker [`WordArena`] — the path the slide loops
    /// (`CheckpointSet`/`ShardPool` workers) take.  Bit-identical to
    /// `process`: the arena only changes where bitmap backing stores come
    /// from, never their contents (property-tested in
    /// `rtim-stream/tests/kernel_props.rs` and `tests/determinism.rs`).
    pub fn process_in(
        &mut self,
        action: &ResolvedAction,
        weights: &DenseWeights,
        arena: &mut WordArena,
    ) {
        debug_assert!(action.id >= self.start, "checkpoint fed an older action");
        self.scratch.clear();
        self.accumulator
            .apply_into_arena(action.actor, &action.ancestors, &mut self.scratch, arena);
        for &user in &self.scratch {
            let set = self
                .accumulator
                .influence_set(user)
                .expect("grown set exists");
            // Every grown set grew by exactly one user: the actor.
            self.oracle
                .process_grow_in(user, action.actor, set, weights, arena);
            self.updates += 1;
        }
    }

    /// Tears the checkpoint down, recycling its accumulator's bitmap
    /// backing stores into `arena` so the next slide's set promotions skip
    /// the global allocator (the expiry path of the slide loops).
    pub fn recycle_into(self, arena: &mut WordArena) {
        self.accumulator.recycle_into(arena);
    }

    /// The influence value of the checkpoint's current candidate solution
    /// (the overloaded `Λ_t[i]` of the paper).
    #[inline]
    pub fn value(&self) -> f64 {
        self.oracle.value()
    }

    /// The checkpoint's current solution.
    pub fn solution(&self) -> Solution {
        Solution {
            seeds: self.oracle.seeds(),
            value: self.oracle.value(),
        }
    }

    /// Number of oracle element updates performed so far.
    #[inline]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Number of distinct users with a non-empty influence set inside this
    /// checkpoint (memory instrumentation).
    pub fn tracked_users(&self) -> usize {
        self.accumulator.sets().len()
    }

    /// Captures the checkpoint's serializable state, or `None` if the
    /// wrapped oracle is a custom implementation without snapshot support.
    pub fn snapshot(&self) -> Option<crate::snapshot::CheckpointState> {
        Some(crate::snapshot::CheckpointState {
            start: self.start,
            updates: self.updates,
            sets: self.accumulator.sets().clone(),
            oracle: self.oracle.snapshot_state()?,
        })
    }

    /// Rehydrates a checkpoint from persisted state under the given oracle
    /// configuration (the engine's `k`/`β`).
    pub fn from_state(state: crate::snapshot::CheckpointState, config: OracleConfig) -> Self {
        Checkpoint {
            start: state.start,
            accumulator: rtim_stream::InfluenceAccumulator::from_sets(state.sets),
            oracle: state.oracle.restore(config),
            updates: state.updates,
            scratch: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtim_stream::UserId;

    const UNIT: DenseWeights<'static> = DenseWeights::Unit;

    fn resolved(id: u64, actor: u32, ancestors: &[u32]) -> ResolvedAction {
        ResolvedAction {
            id,
            actor: UserId(actor),
            ancestors: ancestors.iter().map(|&u| UserId(u)).collect(),
        }
    }

    /// The Figure-1 stream as resolved actions.
    fn figure1_resolved() -> Vec<ResolvedAction> {
        vec![
            resolved(1, 1, &[]),
            resolved(2, 2, &[1]),
            resolved(3, 3, &[]),
            resolved(4, 3, &[1]),
            resolved(5, 4, &[3]),
            resolved(6, 1, &[3]),
            resolved(7, 5, &[3]),
            resolved(8, 4, &[5, 3]),
            resolved(9, 2, &[]),
            resolved(10, 6, &[2]),
        ]
    }

    fn checkpoint(start: u64, k: usize, beta: f64) -> Checkpoint {
        Checkpoint::new(start, OracleKind::SieveStreaming, OracleConfig::new(k, beta))
    }

    #[test]
    fn figure3_checkpoint_lambda_8_1() {
        // Λ_8[1] observes a1..a8 and, per Figure 2/3, reports value 5 with
        // seeds {u1, u3} for k = 2, β = 0.3.
        let mut cp = checkpoint(1, 2, 0.3);
        for a in figure1_resolved().into_iter().take(8) {
            cp.process(&a, &UNIT);
        }
        assert_eq!(cp.value(), 5.0);
        // Several seed pairs achieve the optimum value of 5 on this window
        // ({u1,u3} in the paper's run, {u1,u5} is equally optimal); we only
        // require an optimal-value pair of at most k seeds.
        let seeds = cp.solution().seeds;
        assert_eq!(seeds.len(), 2);
        assert_eq!(cp.start(), 1);
        assert!(cp.updates() > 0);
        assert_eq!(cp.tracked_users(), 5);
    }

    #[test]
    fn figure2_checkpoint_values_at_time_8() {
        // The IC row at t=8 in Figure 2: Λ_8[i] values 5,5,4,4,3,3,2,1 for
        // checkpoints starting at actions 1..8 (k = 2).
        let expected = [5.0, 5.0, 4.0, 4.0, 3.0, 3.0, 2.0, 1.0];
        let stream = figure1_resolved();
        for (i, want) in expected.iter().enumerate() {
            let start = (i + 1) as u64;
            let mut cp = checkpoint(start, 2, 0.3);
            for a in stream.iter().filter(|a| a.id >= start).take(8 - i) {
                cp.process(a, &UNIT);
            }
            assert_eq!(cp.value(), *want, "checkpoint starting at {start}");
        }
    }

    #[test]
    fn figure2_checkpoint_values_at_time_10() {
        // The IC row at t=10: Λ_10[i] for starts 3..10 = 6,6,5,5,4,3,2,1.
        let expected = [6.0, 6.0, 5.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        let stream = figure1_resolved();
        for (i, want) in expected.iter().enumerate() {
            let start = (i + 3) as u64;
            let mut cp = checkpoint(start, 2, 0.3);
            for a in stream.iter().filter(|a| a.id >= start) {
                cp.process(a, &UNIT);
            }
            assert_eq!(cp.value(), *want, "checkpoint starting at {start}");
        }
    }

    #[test]
    fn expiry_is_relative_to_window_start() {
        let cp = checkpoint(5, 2, 0.1);
        assert!(!cp.is_expired(5));
        assert!(!cp.is_expired(3));
        assert!(cp.is_expired(6));
    }

    #[test]
    fn value_is_monotone_as_actions_arrive() {
        let mut cp = checkpoint(1, 2, 0.2);
        let mut last = 0.0;
        for a in figure1_resolved() {
            cp.process(&a, &UNIT);
            assert!(cp.value() + 1e-9 >= last);
            last = cp.value();
        }
    }

    #[test]
    fn independently_fed_checkpoints_agree() {
        let mut cps = [checkpoint(1, 2, 0.2), checkpoint(1, 2, 0.2)];
        let stream = figure1_resolved();
        for action in &stream[..4] {
            for cp in cps.iter_mut() {
                cp.process(action, &UNIT);
            }
        }
        assert_eq!(cps[0].value(), cps[1].value());
        assert!(cps[0].value() > 0.0);
    }

    #[test]
    fn weighted_checkpoint_uses_the_dense_table() {
        // Users are (already) dense 1..=6 here; weight user 4 at 10.0.
        let mut table = vec![1.0; 7];
        table[4] = 10.0;
        let w = DenseWeights::Table(&table);
        let mut cp = checkpoint(1, 2, 0.3);
        for a in figure1_resolved().into_iter().take(8) {
            cp.process(&a, &w);
        }
        // Optimal coverage {u1,u3} covers users {1,2,3,4,5} = 4·1 + 10 = 14;
        // SieveStreaming guarantees (1/2 − β) of it and in practice lands on
        // at least I(3)'s 13 here.  The point: user 4's table weight counts.
        assert!(cp.value() >= 13.0 && cp.value() <= 14.0, "{}", cp.value());
    }
}
